"""Legacy setup shim — metadata lives in pyproject.toml.

Kept so `pip install -e . --no-use-pep517` works on machines without the
`wheel` package (e.g. offline environments).
"""
from setuptools import setup

setup()
