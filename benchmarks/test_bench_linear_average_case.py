"""Section 2.3.2's average-case claim: with K/w_max bounded, q is
bounded on average and the algorithm runs in linear time.

Reproduced shape: at a fixed ratio, measured abstract operations fit
``a*n + b`` essentially perfectly, and q stays flat as n grows 16x.

Regenerate the series with ``python -m repro linear``.
"""

import pytest

from benchmarks.conftest import make_chain
from repro.analysis.complexity import linear_average_case
from repro.core.bandwidth import bandwidth_min

NS = [2000, 4000, 8000, 16000, 32000]
RATIO = 3.0


@pytest.mark.parametrize("n", NS)
def test_runtime_at_fixed_ratio(benchmark, n):
    chain, bound = make_chain(n, RATIO)
    result = benchmark(bandwidth_min, chain, bound)
    assert result.is_feasible(bound)


def test_operations_fit_linear_model(benchmark):
    def run():
        return linear_average_case(
            NS, ratio=RATIO, repetitions=2, measure_time=False
        )

    points, linear_fit, _nlogn_fit = benchmark.pedantic(run, rounds=1, iterations=1)
    assert linear_fit.r_squared > 0.999
    qs = [pt.q for pt in points]
    assert max(qs) / min(qs) < 1.3, f"q not bounded at fixed ratio: {qs}"


def test_ops_per_task_flat(benchmark):
    def run():
        points, _lin, _nl = linear_average_case(
            [4000, 32000], ratio=RATIO, repetitions=2, measure_time=False
        )
        return [pt.operations / pt.n for pt in points]

    per_task = benchmark.pedantic(run, rounds=1, iterations=1)
    assert per_task[1] == pytest.approx(per_task[0], rel=0.15)
