"""Engine fast paths vs the pure-Python seed implementation.

Claims reproduced / asserted:

- a 100-bound sweep over a 10k-task chain runs >= 3x faster through the
  warmed ``PartitionEngine`` (NumPy kernels + prime-structure cache)
  than through the seed ``bandwidth_min`` loop, with identical results;
- the same sweep through a **compiled plan** (one ``compile_chain`` +
  one ``solve_bounds`` call) beats the seed loop >= 4x even cold, and a
  warmed plan answers the whole 100-bound vector >= 10x faster than the
  seed loop — the headline compile-once/query-many claim;
- a single cold query through the NumPy backend is no slower than the
  pure-Python path at this size;
- repeat-bound queries are served from the cache at far below the cost
  of recomputation;
- ``solve_many`` keeps its per-query results identical to the serial
  reference regardless of worker count;
- threading the observability ``tracer=`` parameter through the hot
  path costs < 5% when tracing is disabled (the ``NULL_TRACER``
  zero-overhead claim), measured against an inline replica of the
  pre-instrumentation pipeline;
- the live telemetry hub costs < 5% both disabled (``NULL_HUB``) and
  enabled with no subscribers, measured against the direct
  prime-structure-cache path;
- the ``@shared_state`` locks added to the cache layer cost < 5% on a
  single-threaded cold solve vs a lock-free inline replica of the same
  pipeline, and the disabled telemetry paths (``NULL_HUB`` guard,
  null-hub publishes, locked ``Counter.inc``) stay allocation-free.

All tests also run (and still assert correctness) under
``--benchmark-disable``, so this file doubles as an engine smoke test.

Perf ratchet: with ``REPRO_BENCH_SNAPSHOT=<path>`` in the environment
the module writes a JSON snapshot of the measured speedups (and median
wall times, informational) on teardown.  The committed
``BENCH_engine.json`` is the baseline; ``repro ratchet`` fails CI when
a fresh snapshot's speedups regress by more than the tolerance.
"""

import json
import os
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from benchmarks.conftest import make_chain
from repro.core.bandwidth import bandwidth_min
from repro.engine import PartitionEngine, PartitionQuery, compile_chain

N_TASKS = 10_000
NUM_BOUNDS = 100
SPEEDUP_FLOOR = 3.0
#: Warmed compiled-plan sweep vs the seed loop — the tentpole claim.
PLAN_SPEEDUP_FLOOR = 10.0
#: Cold compile + first ``solve_bounds`` vs the seed loop.  Margin ratio
#: mirrors the seed test's (floor 3.0 for a measured ~4.6x): worst
#: observed cold ratio on this box is ~6x.
PLAN_COLD_FLOOR = 4.0

#: Ratchet snapshot accumulated by the tests in this module; written on
#: module teardown when REPRO_BENCH_SNAPSHOT names a target file.
_SNAPSHOT: dict = {"version": 1, "benchmarks": {}}


def _snapshot_record(name, median_s, **ratios):
    entry = {"median_ns": int(median_s * 1e9)}
    entry.update({key: round(value, 2) for key, value in ratios.items()})
    _SNAPSHOT["benchmarks"][name] = entry


@pytest.fixture(scope="module", autouse=True)
def _write_snapshot():
    yield
    target = os.environ.get("REPRO_BENCH_SNAPSHOT")
    if target and _SNAPSHOT["benchmarks"]:
        Path(target).write_text(
            json.dumps(_SNAPSHOT, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def sweep_bounds(chain, num=NUM_BOUNDS):
    """Log-spaced bounds over ratios 1.2..300, ascending (cache-friendly
    order; the seed loop is order-insensitive so this favors nobody
    unfairly on the comparison)."""
    wmax = chain.max_vertex_weight()
    lo, hi = 1.2, 300.0
    return [wmax * lo * (hi / lo) ** (i / (num - 1)) for i in range(num)]


@pytest.fixture(scope="module")
def sweep_instance():
    chain, _ = make_chain(N_TASKS, 4.0)
    return chain, sweep_bounds(chain)


def test_sweep_100_bounds_speedup(sweep_instance, benchmark):
    """The ISSUE acceptance criterion: >= 3x on the 100-bound sweep."""
    chain, bounds = sweep_instance

    def seed_sweep():
        return [bandwidth_min(chain, b).weight for b in bounds]

    def engine_sweep(engine):
        return [engine.solve(chain, b).weight for b in bounds]

    engine = PartitionEngine()
    engine.solve(chain, bounds[0])  # warm NumPy + module imports
    engine.cache.clear()

    t0 = time.perf_counter()
    seed_weights = seed_sweep()
    seed_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    engine_weights = engine_sweep(engine)
    engine_s = time.perf_counter() - t0

    assert engine_weights == seed_weights
    speedup = seed_s / engine_s
    benchmark.extra_info["seed_s"] = round(seed_s, 3)
    benchmark.extra_info["engine_s"] = round(engine_s, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cache"] = engine.cache_stats()
    assert speedup >= SPEEDUP_FLOOR, (
        f"engine sweep only {speedup:.2f}x faster "
        f"(seed {seed_s:.3f}s vs engine {engine_s:.3f}s)"
    )
    _snapshot_record("engine_sweep_100_bounds", engine_s, speedup=speedup)
    # Keep the benchmark column populated with the engine-side cost.
    benchmark(lambda: engine.solve(chain, bounds[-1]))


def test_compiled_plan_sweep_speedup(sweep_instance, benchmark):
    """The tentpole criterion: >= 10x through a warmed compiled plan.

    Cold = ``compile_chain`` + the first ``solve_bounds`` over all 100
    bounds (every stability interval built from scratch); warm = the
    same call again, served from the plan's structure memo.  Both are
    floored, both land in the ratchet snapshot, and the answers must be
    bit-identical to the seed loop's.
    """
    chain, bounds = sweep_instance

    engine = PartitionEngine()
    engine.solve(chain, bounds[0])  # warm NumPy + module imports

    t0 = time.perf_counter()
    seed_weights = [bandwidth_min(chain, b).weight for b in bounds]
    seed_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    plan = compile_chain(chain)
    cold_weights = plan.solve_bounds(bounds)
    cold_s = time.perf_counter() - t0

    warm_s = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        warm_weights = plan.solve_bounds(bounds)
        warm_s = min(warm_s, time.perf_counter() - t0)

    assert cold_weights.tolist() == seed_weights
    assert warm_weights.tolist() == seed_weights
    cold_speedup = seed_s / cold_s
    warm_speedup = seed_s / warm_s
    benchmark.extra_info["seed_s"] = round(seed_s, 3)
    benchmark.extra_info["plan_cold_s"] = round(cold_s, 3)
    benchmark.extra_info["plan_warm_s"] = round(warm_s, 6)
    benchmark.extra_info["cold_speedup"] = round(cold_speedup, 2)
    benchmark.extra_info["warm_speedup"] = round(warm_speedup, 2)
    assert warm_speedup >= PLAN_SPEEDUP_FLOOR, (
        f"warmed plan sweep only {warm_speedup:.2f}x faster "
        f"(seed {seed_s:.3f}s vs plan {warm_s:.6f}s)"
    )
    assert cold_speedup >= PLAN_COLD_FLOOR, (
        f"cold plan sweep only {cold_speedup:.2f}x faster "
        f"(seed {seed_s:.3f}s vs compile+sweep {cold_s:.3f}s)"
    )
    _snapshot_record(
        "plan_sweep_100_bounds_cold", cold_s, speedup=cold_speedup
    )
    _snapshot_record(
        "plan_sweep_100_bounds_warm", warm_s, speedup=warm_speedup
    )
    benchmark(lambda: plan.solve_bounds(bounds))


def test_beta_sweep_throughput(benchmark):
    """β-perturbation studies: batched rows vs per-call solves."""
    from repro.graphs.chain import Chain

    chain, bound = make_chain(2_000, 4.0)
    rng = np.random.default_rng(20260706)
    betas = np.asarray(chain.beta) * rng.uniform(0.25, 4.0, (50, chain.num_edges))

    plan = compile_chain(chain)
    plan.solve_beta_sweep(betas[:1], bound)  # warm imports + windows

    t0 = time.perf_counter()
    per_call = [
        bandwidth_min(Chain(chain.alpha, row.tolist()), bound).weight
        for row in betas
    ]
    per_call_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = plan.solve_beta_sweep(betas, bound)
    batched_s = time.perf_counter() - t0

    assert batched.tolist() == per_call
    speedup = per_call_s / batched_s
    benchmark.extra_info["per_call_s"] = round(per_call_s, 3)
    benchmark.extra_info["batched_s"] = round(batched_s, 4)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched beta sweep only {speedup:.2f}x faster "
        f"(per-call {per_call_s:.3f}s vs batched {batched_s:.4f}s)"
    )
    _snapshot_record("plan_beta_sweep_50_rows", batched_s, speedup=speedup)
    benchmark(lambda: plan.solve_beta_sweep(betas, bound))


@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_single_query(benchmark, backend):
    chain, bound = make_chain(N_TASKS, 4.0)
    reference = bandwidth_min(chain, bound).weight
    result = benchmark(bandwidth_min, chain, bound, backend=backend)
    assert result.weight == reference


def test_cached_repeat_bound(benchmark, sweep_instance):
    chain, bounds = sweep_instance
    engine = PartitionEngine()
    engine.solve(chain, bounds[0])  # prime the cache
    result = benchmark(engine.solve, chain, bounds[0])
    assert result.weight == bandwidth_min(chain, bounds[0]).weight
    assert engine.cache.stats.hits >= 1


def test_tracing_disabled_overhead(benchmark):
    """ISSUE acceptance criterion: < 5% overhead with tracing disabled.

    The instrumented public ``bandwidth_min`` (which now threads
    ``tracer=``/span branches through validate → prime structure →
    sweep) races an inline replica of the uninstrumented pipeline on a
    cold 10k-task solve.  Min-of-reps timing so scheduler noise doesn't
    fail the build.
    """
    from repro.core.bandwidth import ChainCutResult
    from repro.core.feasibility import validate_bound
    from repro.engine.kernels import bandwidth_sweep, compute_prime_structure_numpy
    from repro.observability import NULL_TRACER

    chain, bound = make_chain(N_TASKS, 4.0)

    def instrumented():
        return bandwidth_min(chain, bound, backend="numpy", tracer=NULL_TRACER)

    def replica():
        validate_bound(chain.alpha, bound)
        structure = compute_prime_structure_numpy(chain, bound)
        cut, weight = bandwidth_sweep(structure)
        return ChainCutResult(chain, cut, weight)

    assert instrumented().weight == replica().weight  # and warm imports

    def trial(reps=11):
        """Interleaved min-of-reps ratio for one measurement block."""
        instrumented_s = replica_s = float("inf")
        for rep in range(reps):
            # Alternate order so frequency-scaling drift favors neither.
            pair = (instrumented, replica) if rep % 2 else (replica, instrumented)
            for fn in pair:
                elapsed = _timed(fn)
                if fn is instrumented:
                    instrumented_s = min(instrumented_s, elapsed)
                else:
                    replica_s = min(replica_s, elapsed)
        return instrumented_s, replica_s

    # Machine noise only ever *inflates* a ratio, so the min across
    # trials is the sound estimator of the real instrumentation cost.
    trials = [trial() for _ in range(3)]
    instrumented_s, replica_s = min(trials, key=lambda t: t[0] / t[1])
    overhead = instrumented_s / replica_s - 1.0
    benchmark.extra_info["instrumented_ms"] = round(instrumented_s * 1e3, 3)
    benchmark.extra_info["replica_ms"] = round(replica_s * 1e3, 3)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    assert overhead < 0.05, (
        f"disabled tracing costs {overhead * 100:.1f}% "
        f"({instrumented_s * 1e3:.2f}ms vs {replica_s * 1e3:.2f}ms)"
    )
    benchmark(instrumented)


def test_hub_overhead(benchmark):
    """ISSUE acceptance criterion: live-hub plumbing < 5% overhead.

    Two claims, both against a replica that calls the prime-structure
    cache directly (the pre-hub engine hot path):

    - **disabled** — the default ``NULL_HUB`` engine's ``solve`` fast
      path costs nothing beyond two ``.enabled`` attribute checks;
    - **enabled, no subscribers** — a live ``TelemetryHub([])`` pays for
      building the event dicts and fanning out to nobody, which must
      still disappear next to a 10k-task solve.

    Cache cleared inside every timed function (identically on all three
    legs) so each rep is a real cold solve, and interleaved min-of-reps
    timing as in :func:`test_tracing_disabled_overhead`.
    """
    from repro.observability import TelemetryHub

    chain, bound = make_chain(N_TASKS, 4.0)

    null_engine = PartitionEngine()
    live_engine = PartitionEngine(hub=TelemetryHub([]))
    replica_engine = PartitionEngine()

    def disabled():
        null_engine.cache.clear()
        return null_engine.solve(chain, bound)

    def enabled_no_subscribers():
        live_engine.cache.clear()
        return live_engine.solve(chain, bound)

    def replica():
        replica_engine.cache.clear()
        return replica_engine.cache.solve(chain, bound)

    # Warm imports + assert the three legs agree before timing.
    assert disabled().weight == enabled_no_subscribers().weight == replica().weight

    def trial(reps=11):
        legs = [disabled, enabled_no_subscribers, replica]
        best = {fn: float("inf") for fn in legs}
        for rep in range(reps):
            # Rotate order so frequency-scaling drift favors no leg.
            order = legs[rep % 3:] + legs[:rep % 3]
            for fn in order:
                best[fn] = min(best[fn], _timed(fn))
        return best[disabled], best[enabled_no_subscribers], best[replica]

    # Noise only inflates overhead; min across trials is the sound
    # estimator of the real plumbing cost.
    trials = [trial() for _ in range(3)]
    disabled_s, enabled_s, replica_s = min(
        trials, key=lambda t: (t[0] + t[1]) / t[2]
    )
    disabled_overhead = disabled_s / replica_s - 1.0
    enabled_overhead = enabled_s / replica_s - 1.0
    benchmark.extra_info["replica_ms"] = round(replica_s * 1e3, 3)
    benchmark.extra_info["disabled_pct"] = round(disabled_overhead * 100, 2)
    benchmark.extra_info["enabled_pct"] = round(enabled_overhead * 100, 2)
    assert disabled_overhead < 0.05, (
        f"NULL_HUB engine costs {disabled_overhead * 100:.1f}% over the "
        f"direct cache path ({disabled_s * 1e3:.2f}ms vs {replica_s * 1e3:.2f}ms)"
    )
    assert enabled_overhead < 0.05, (
        f"subscriber-less hub costs {enabled_overhead * 100:.1f}% "
        f"({enabled_s * 1e3:.2f}ms vs {replica_s * 1e3:.2f}ms)"
    )
    # Ratcheted as replica/x ratios (~1.0): if hub plumbing ever grows
    # past ~25% overhead the ratio dips under the 20%-tolerance floor.
    _snapshot_record(
        "engine_hub_overhead",
        enabled_s,
        disabled_ratio=replica_s / disabled_s,
        enabled_ratio=replica_s / enabled_s,
    )
    benchmark(enabled_no_subscribers)


def test_lock_overhead(benchmark):
    """ISSUE acceptance criterion: shared-state locks < 5% single-threaded.

    ``PrimeStructureCache.solve`` now runs its miss path under the
    object's ``@shared_state`` RLock.  Raced against a lock-free inline
    replica of the same cold pipeline (validate → NumPy prime structure
    → sweep — the exact work a miss performs), the lock acquisition must
    disappear next to a 10k-task solve.  Interleaved min-of-reps timing
    as in :func:`test_tracing_disabled_overhead`.
    """
    from repro.core.bandwidth import ChainCutResult
    from repro.core.feasibility import validate_bound
    from repro.engine.cache import PrimeStructureCache
    from repro.engine.kernels import bandwidth_sweep, compute_prime_structure_numpy

    chain, bound = make_chain(N_TASKS, 4.0)
    cache = PrimeStructureCache()

    def locked():
        cache.clear()
        return cache.solve(chain, bound)

    def replica():
        validate_bound(chain.alpha, bound)
        structure = compute_prime_structure_numpy(chain, bound)
        cut, weight = bandwidth_sweep(structure)
        return ChainCutResult(chain, cut, weight)

    assert locked().weight == replica().weight  # and warm imports

    def trial(reps=11):
        locked_s = replica_s = float("inf")
        for rep in range(reps):
            pair = (locked, replica) if rep % 2 else (replica, locked)
            for fn in pair:
                elapsed = _timed(fn)
                if fn is locked:
                    locked_s = min(locked_s, elapsed)
                else:
                    replica_s = min(replica_s, elapsed)
        return locked_s, replica_s

    # Noise only inflates the ratio; min across trials is the sound
    # estimator of the real locking cost.
    trials = [trial() for _ in range(3)]
    locked_s, replica_s = min(trials, key=lambda t: t[0] / t[1])
    overhead = locked_s / replica_s - 1.0
    benchmark.extra_info["locked_ms"] = round(locked_s * 1e3, 3)
    benchmark.extra_info["replica_ms"] = round(replica_s * 1e3, 3)
    benchmark.extra_info["overhead_pct"] = round(overhead * 100, 2)
    assert overhead < 0.05, (
        f"shared-state locks cost {overhead * 100:.1f}% single-threaded "
        f"({locked_s * 1e3:.2f}ms vs {replica_s * 1e3:.2f}ms)"
    )
    # Ratcheted as a replica/locked ratio (~1.0), like the hub entry.
    _snapshot_record(
        "engine_lock_overhead", locked_s, lock_ratio=replica_s / locked_s
    )
    benchmark(locked)


def test_disabled_paths_allocation_free(benchmark):
    """The zero-overhead claims survive the locks at the allocator level.

    ``sys.getallocatedblocks()`` deltas over warm loops must stay at
    noise level for: the REPRO012 guard pattern (``if hub.enabled:``) on
    :data:`~repro.observability.live.NULL_HUB`, the null hub's publish
    no-ops on a prebuilt event, and a locked ``Counter.inc`` (the RLock
    context manager allocates nothing).
    """
    import gc
    import sys as _sys

    from repro.observability.live import NULL_HUB
    from repro.observability.metrics import Counter

    event = {"kind": "event", "event": "bench"}
    counter = Counter("bench.lock")

    def guard_loop(n=20_000):
        for _ in range(n):
            if NULL_HUB.enabled:
                NULL_HUB.publish({"kind": "event"})

    def publish_loop(n=20_000):
        for _ in range(n):
            NULL_HUB.publish(event)
            NULL_HUB.publish_metric("bench", "counter", 1.0)

    def inc_loop(n=20_000):
        for _ in range(n):
            counter.inc(1.0)

    for name, loop in (
        ("NULL_HUB guard", guard_loop),
        ("null publish", publish_loop),
        ("locked Counter.inc", inc_loop),
    ):
        loop(1_000)  # warm caches/free-lists before measuring
        gc.collect()
        before = _sys.getallocatedblocks()
        loop()
        gc.collect()
        delta = _sys.getallocatedblocks() - before
        assert delta <= 8, (
            f"{name} leaked {delta} allocator blocks over 20k iterations"
        )
    benchmark(lambda: guard_loop(1_000))


#: Allocation budgets certified by :mod:`repro.verify.allocs`.  Roughly
#: 2-3x the worst observed footprint, so allocator drift across
#: interpreter versions stays inside the budget (ratio exactly 1.0) and
#: only a real per-iteration allocation regression trips the 20%
#: ratchet tolerance.
ALLOC_BUDGETS = {
    "disabled_guard": {"net_blocks": 8},
    "disabled_publish": {"net_blocks": 8},
    "disabled_counter_inc": {"net_blocks": 8},
    "warm_plan_sweep": {"net_blocks": 8, "peak_bytes": 32_768},
    "prime_structure": {"net_blocks": 8, "peak_bytes": 65_536},
}


def test_allocation_budgets(benchmark):
    """Hot paths stay within the committed allocation budgets.

    The static pass (``repro analyze --hotpath``, REPRO016-019) claims
    the hot loops are allocation-hygienic; ``repro.verify.allocs``
    certifies it: the disabled-telemetry paths must retain zero net
    allocator blocks, and warm plan sweeps plus
    ``compute_prime_structure`` must stay within committed peak-byte
    budgets.  Ratcheted via :func:`ratchet_ratio` — 1.0 while within
    budget, decaying past the 20% tolerance once a path allocates more
    than 1.25x its budget.
    """
    from repro.verify.allocs import (
        AllocationHarness,
        certify_budgets,
        measure_disabled_telemetry,
        measure_prime_structure,
        measure_warm_plan_sweep,
        ratchet_ratio,
    )

    telemetry = AllocationHarness(warmup=1_000, iterations=20_000, repeats=3)
    workload = AllocationHarness(warmup=4, iterations=32, repeats=2)

    t0 = time.perf_counter()
    disabled = measure_disabled_telemetry(telemetry)
    telemetry_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = measure_warm_plan_sweep(workload, tasks=256, queries=16)
    warm_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    prime = measure_prime_structure(workload, tasks=128)
    prime_s = time.perf_counter() - t0

    measured = {
        "disabled_guard": disabled["guard"],
        "disabled_publish": disabled["publish"],
        "disabled_counter_inc": disabled["counter_inc"],
        "warm_plan_sweep": warm,
        "prime_structure": prime,
    }
    certify_budgets(measured, ALLOC_BUDGETS)
    for scenario, footprint in measured.items():
        benchmark.extra_info[scenario] = footprint

    blocks = ALLOC_BUDGETS["disabled_guard"]["net_blocks"]
    _snapshot_record(
        "engine_alloc_disabled",
        telemetry_s,
        guard_ratio=ratchet_ratio(disabled["guard"]["net_blocks"], blocks),
        publish_ratio=ratchet_ratio(
            disabled["publish"]["net_blocks"], blocks
        ),
        counter_inc_ratio=ratchet_ratio(
            disabled["counter_inc"]["net_blocks"], blocks
        ),
    )
    _snapshot_record(
        "engine_alloc_warm_sweep",
        warm_s,
        blocks_ratio=ratchet_ratio(
            warm["net_blocks"], ALLOC_BUDGETS["warm_plan_sweep"]["net_blocks"]
        ),
        peak_ratio=ratchet_ratio(
            warm["peak_bytes"], ALLOC_BUDGETS["warm_plan_sweep"]["peak_bytes"]
        ),
    )
    _snapshot_record(
        "engine_alloc_prime_structure",
        prime_s,
        blocks_ratio=ratchet_ratio(
            prime["net_blocks"],
            ALLOC_BUDGETS["prime_structure"]["net_blocks"],
        ),
        peak_ratio=ratchet_ratio(
            prime["peak_bytes"],
            ALLOC_BUDGETS["prime_structure"]["peak_bytes"],
        ),
    )

    quick = AllocationHarness(warmup=10, iterations=100, repeats=1)
    benchmark(lambda: measure_disabled_telemetry(quick))


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_batch_throughput(benchmark):
    queries = []
    for i in range(24):
        chain, bound = make_chain(2_000, 1.5 + (i % 6), rep=i)
        queries.append(PartitionQuery.from_chain(chain, bound, tag=str(i)))
    engine = PartitionEngine(max_workers=2)
    serial = PartitionEngine().solve_many(queries, max_workers=0)

    results = benchmark(engine.solve_many, queries)
    assert [r.tag for r in results] == [q.tag for q in queries]
    assert [(r.cut_indices, r.weight) for r in results] == [
        (r.cut_indices, r.weight) for r in serial
    ]
    benchmark.extra_info["queries"] = len(queries)
