"""Machine-level effect of partition quality (Section 3, condition 2/3).

Runs the pipelined executor on a communication-bound shared-memory
machine and compares partitions from each algorithm.  Reproduced shape:
on a serializing bus, the bandwidth-minimal partition carries the least
traffic and sustains at least the throughput of weight-oblivious
partitions with the same stage count; on a crossbar the bottleneck
(heaviest single link) matters more.
"""

import pytest

from benchmarks.conftest import make_chain
from repro.baselines.greedy import equal_blocks_cut, first_fit_cut
from repro.core.bandwidth import bandwidth_min
from repro.core.pipeline import partition_chain
from repro.machine.executor import simulate_pipeline
from repro.machine.interconnect import Crossbar, SharedBus
from repro.machine.machine import SharedMemoryMachine

N = 300
RATIO = 6.0
ITEMS = 60


@pytest.fixture(scope="module")
def instance():
    return make_chain(N, RATIO)


@pytest.fixture(scope="module")
def bus_machine():
    return SharedMemoryMachine(64, interconnect=SharedBus(bandwidth=4.0))


def test_execute_bandwidth_partition(benchmark, instance, bus_machine):
    chain, bound = instance
    cut = bandwidth_min(chain, bound)
    ex = benchmark(
        simulate_pipeline, chain, cut.cut_indices, bus_machine, ITEMS
    )
    assert ex.num_items == ITEMS


def test_execute_firstfit_partition(benchmark, instance, bus_machine):
    chain, bound = instance
    cut = first_fit_cut(chain, bound)
    ex = benchmark(
        simulate_pipeline, chain, cut.cut_indices, bus_machine, ITEMS
    )
    assert ex.num_items == ITEMS


def test_bandwidth_wins_on_bus(benchmark, instance, bus_machine):
    chain, bound = instance

    def compare():
        smart = bandwidth_min(chain, bound)
        naive = equal_blocks_cut(chain, smart.num_components)
        ex_smart = simulate_pipeline(
            chain, smart.cut_indices, bus_machine, ITEMS
        )
        ex_naive = simulate_pipeline(
            chain, naive.cut_indices, bus_machine, ITEMS
        )
        return ex_smart, ex_naive

    ex_smart, ex_naive = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert ex_smart.total_traffic < ex_naive.total_traffic
    assert ex_smart.throughput >= 0.9 * ex_naive.throughput


def test_bottleneck_partition_on_crossbar(benchmark, instance):
    chain, bound = instance
    machine = SharedMemoryMachine(64, interconnect=Crossbar(bandwidth=4.0))

    def compare():
        bn = partition_chain(chain, bound, "bottleneck+processors")
        bw = partition_chain(chain, bound, "bandwidth")
        ex_bn = simulate_pipeline(chain, bn.cut_indices, machine, ITEMS)
        ex_bw = simulate_pipeline(chain, bw.cut_indices, machine, ITEMS)
        max_edge_bn = max(
            (chain.edge_weight(i) for i in bn.cut_indices), default=0.0
        )
        max_edge_bw = max(
            (chain.edge_weight(i) for i in bw.cut_indices), default=0.0
        )
        return ex_bn, ex_bw, max_edge_bn, max_edge_bw

    _ex_bn, _ex_bw, max_bn, max_bw = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    # Bottleneck objective really does bound the heaviest link tighter.
    assert max_bn <= max_bw + 1e-9
