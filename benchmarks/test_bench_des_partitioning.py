"""Section 3 distributed-simulation study.

Reproduced shape: on circular/linearizable circuits, the paper's
bandwidth-minimal partition of the (activity-weighted) linear supergraph
crosses fewer processor boundaries than round-robin or random gate
placement with the same processor count, while keeping load balanced —
exactly the "load on all processors balanced and number of messages
minimized" property the section argues for.
"""

import random

import pytest

from repro.core.bandwidth import bandwidth_min
from repro.desim.distributed import simulate_partitioned
from repro.desim.linearize import circuit_supergraph
from repro.desim.netlists import adder_pipeline, ring_counter
from repro.desim.simulator import LogicSimulator

END_TIME = 1200.0


@pytest.fixture(scope="module")
def ring_study():
    circuit = ring_counter(64)
    profile = LogicSimulator(circuit).run(END_TIME)
    supergraph = circuit_supergraph(circuit, activity=profile.activity())
    bound = 6.0 * supergraph.chain.max_vertex_weight()
    cut = bandwidth_min(supergraph.chain, bound)
    assignment = supergraph.assignment_from_cut(cut.cut_indices)
    return circuit, assignment, cut.num_components


def test_sequential_simulation_cost(benchmark):
    circuit = ring_counter(64)
    sim = LogicSimulator(circuit)
    result = benchmark(sim.run, END_TIME)
    assert result.events_processed > 0


def test_partitioned_simulation_cost(benchmark, ring_study):
    circuit, assignment, _k = ring_study
    run = benchmark(simulate_partitioned, circuit, assignment, END_TIME)
    assert run.cross_messages >= 0


def test_smart_beats_round_robin_and_random(benchmark, ring_study):
    circuit, smart_assignment, k = ring_study

    def compare():
        smart = simulate_partitioned(circuit, smart_assignment, END_TIME)
        round_robin = simulate_partitioned(
            circuit, [g % k for g in range(circuit.num_gates)], END_TIME
        )
        rng = random.Random(4)
        shuffled = simulate_partitioned(
            circuit,
            [rng.randrange(k) for _ in range(circuit.num_gates)],
            END_TIME,
        )
        return smart, round_robin, shuffled

    smart, round_robin, shuffled = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert smart.cross_messages < round_robin.cross_messages
    assert smart.cross_messages < shuffled.cross_messages
    # Load stays balanced within the K bound's slack.
    assert smart.load_imbalance < 2.0


def test_linearizable_pipeline_circuit(benchmark):
    circuit, _stages = adder_pipeline(10, bits=4)
    stim = [
        (float(t), g, (t // 40 + g) % 2 == 0)
        for t in range(0, 800, 40)
        for g in circuit.primary_inputs()
    ]

    def study():
        profile = LogicSimulator(circuit).run(1000.0, stimuli=stim)
        supergraph = circuit_supergraph(circuit, activity=profile.activity())
        bound = max(
            supergraph.chain.total_weight() / 4,
            supergraph.chain.max_vertex_weight(),
        )
        cut = bandwidth_min(supergraph.chain, bound)
        assignment = supergraph.assignment_from_cut(cut.cut_indices)
        smart = simulate_partitioned(circuit, assignment, 1000.0, stimuli=stim)
        k = cut.num_components
        round_robin = simulate_partitioned(
            circuit,
            [g % k for g in range(circuit.num_gates)],
            1000.0,
            stimuli=stim,
        )
        return smart, round_robin

    smart, round_robin = benchmark.pedantic(study, rounds=1, iterations=1)
    assert smart.num_processors >= 2
    # The dense adder stages force many cut boundaries (only ~10 BFS
    # layers exist), so the meaningful claim is relative: the partition
    # keeps far more traffic local than placement ignoring structure.
    assert smart.cross_messages < 0.8 * round_robin.cross_messages
