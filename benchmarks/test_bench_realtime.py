"""Section 3 real-time study (Figure 3 pipeline).

Reproduced shape: planning meets the deadline whenever the instance is
schedulable; the bandwidth objective yields the lowest total network
demand while bottleneck+processors yields the lowest per-link maximum;
planning cost is dominated by the O(n + p log q) partitioner.
"""

import pytest

from benchmarks.conftest import MASTER_SEED
from repro.graphs.generators import random_chain
from repro.instrumentation.rng import spawn_rng
from repro.machine.interconnect import SharedBus
from repro.machine.machine import SharedMemoryMachine
from repro.realtime.planner import compare_objectives, plan_realtime_task
from repro.realtime.spec import RealTimeTask


def make_task(n: int, deadline_ratio: float = 4.0) -> RealTimeTask:
    rng = spawn_rng(MASTER_SEED, "rt", n)
    chain = random_chain(n, rng, vertex_range=(1, 10), edge_range=(1, 100))
    return RealTimeTask(
        f"rt-{n}", chain.alpha, chain.beta,
        deadline=deadline_ratio * max(chain.alpha),
    )


@pytest.fixture(scope="module")
def machine():
    # Large enough that even the n=10k task's partition maps trivially
    # (Section 3 assumes processors >= partitions).
    return SharedMemoryMachine(4096, interconnect=SharedBus(bandwidth=10.0))


@pytest.mark.parametrize("n", [100, 1000, 10_000])
def test_planning_cost(benchmark, n, machine):
    task = make_task(n)
    plan = benchmark(plan_realtime_task, task, machine)
    assert plan.meets_deadline


def test_objective_tradeoffs(benchmark, machine):
    task = make_task(2000)
    plans = benchmark.pedantic(
        compare_objectives, args=(task, machine), rounds=1, iterations=1
    )
    by_objective = {p.objective: p for p in plans}
    bandwidth = by_objective["bandwidth"]
    processors = by_objective["processors"]
    assert all(p.meets_deadline for p in plans)
    assert bandwidth.traffic.total_demand <= processors.traffic.total_demand
    assert processors.processors_used <= bandwidth.processors_used


def test_tight_deadline_uses_more_processors(benchmark, machine):
    def run():
        loose = plan_realtime_task(make_task(1000, 8.0), machine)
        tight = plan_realtime_task(make_task(1000, 1.5), machine)
        return loose, tight

    loose, tight = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tight.processors_used > loose.processors_used
    assert tight.meets_deadline and loose.meets_deadline
