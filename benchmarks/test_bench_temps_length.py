"""Appendix B: expected TEMP_S queue length is O(log q_i).

Reproduced shape: the measured mean queue length stays within a small
constant of log2(q) across two orders of magnitude of q, far below the
trivial bound q itself — hence the claimed O(p log log q) average.

Regenerate the series with ``python -m repro temps``.
"""

import math

import pytest

from benchmarks.conftest import make_chain
from repro.analysis.complexity import temp_s_length_experiment
from repro.core.bandwidth import bandwidth_stats

N = 4000
RATIOS = [2.0, 8.0, 32.0, 128.0, 512.0]


@pytest.mark.parametrize("ratio", RATIOS)
def test_instrumented_run_cost(benchmark, ratio):
    chain, bound = make_chain(N, ratio)
    stats = benchmark(bandwidth_stats, chain, bound)
    if stats.q > 2.0:
        assert stats.mean_temp_s_len <= 4.0 * math.log2(stats.q) + 2.0
        assert stats.mean_temp_s_len < stats.q
    benchmark.extra_info.update(
        {
            "q": round(stats.q, 2),
            "log2_q": round(math.log2(max(stats.q, 1.001)), 2),
            "mean_temp_s": round(stats.mean_temp_s_len, 2),
            "max_temp_s": stats.max_temp_s_len,
        }
    )


def test_mean_length_tracks_log_q(benchmark):
    def run():
        return temp_s_length_experiment([N], RATIOS, repetitions=2)

    points = benchmark.pedantic(run, rounds=1, iterations=1)
    for point in points:
        if point.q > 4.0:
            # Within a constant of log2 q; far from linear in q.
            assert point.mean_temp_s_len <= 3.0 * point.log2_q + 2.0
            assert point.mean_temp_s_len <= point.q / 3.0


def test_max_length_far_below_q(benchmark):
    chain, bound = make_chain(N, 512.0)
    stats = benchmark(bandwidth_stats, chain, bound)
    assert stats.q > 50
    assert stats.max_temp_s_len < stats.q / 3.0
