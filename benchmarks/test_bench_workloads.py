"""Domain workloads from the paper's Section 1 motivations.

Reproduced shape: on workloads with *structured* communication profiles
— a software-radio chain whose volumes halve at decimation stages, an
image pipeline whose intermediate volumes shrink, an adaptively refined
PDE grid — the bandwidth objective's advantage over weight-oblivious
partitioning is far larger than on uniform noise, because the optimal
cuts snap to the cheap edges the structure creates.
"""

import random

import pytest

from repro.baselines.greedy import equal_blocks_cut, first_fit_cut
from repro.core.bandwidth import bandwidth_min
from repro.graphs.workloads import (
    image_pipeline_chain,
    iterative_solver_ring,
    pde_strip_chain,
    signal_chain,
)
from repro.core.ring import ring_bandwidth_min


@pytest.fixture(scope="module")
def radio_chain():
    return signal_chain(128, decimation_every=8, rng=random.Random(1))


def test_signal_chain_partitioning_cost(benchmark, radio_chain):
    bound = 12.0 * radio_chain.max_vertex_weight()
    result = benchmark(bandwidth_min, radio_chain, bound)
    assert result.is_feasible(bound)


def test_signal_chain_cuts_snap_to_decimations(benchmark, radio_chain):
    bound = 12.0 * radio_chain.max_vertex_weight()

    def study():
        smart = bandwidth_min(radio_chain, bound)
        naive = first_fit_cut(radio_chain, bound)
        return smart, naive

    smart, naive = benchmark.pedantic(study, rounds=1, iterations=1)
    # Strictly better than position-greedy (the load bound still forces
    # some cuts into the heavy pre-decimation region, so the gap is
    # structural, not dramatic — recorded in extra_info).
    assert smart.weight < naive.weight
    # The optimum exploits the decimation structure: several chosen cuts
    # are near-free late-stage edges.
    near_free = sum(
        1 for i in smart.cut_indices if radio_chain.edge_weight(i) < 1.0
    )
    assert near_free >= 3
    benchmark.extra_info.update(
        {
            "smart": round(smart.weight, 1),
            "first_fit": round(naive.weight, 1),
        }
    )


def test_image_pipeline_prefers_late_cuts(benchmark):
    chain = image_pipeline_chain()
    bound = 0.6 * chain.total_weight()

    def study():
        return bandwidth_min(chain, bound)

    result = benchmark(study)
    assert result.cut_indices
    # Volumes shrink towards the classifier: optimal cuts sit late.
    assert min(result.cut_indices) >= chain.num_edges // 3


def test_pde_hotspot_partitioning(benchmark):
    chain = pde_strip_chain(256, 40, rng=random.Random(2), hotspot=0.3)
    bound = 2.0 * chain.max_vertex_weight()

    def study():
        smart = bandwidth_min(chain, bound)
        naive = equal_blocks_cut(chain, smart.num_components)
        return smart, naive

    smart, naive = benchmark.pedantic(study, rounds=1, iterations=1)
    assert smart.is_feasible(bound)
    # Equal-count blocks blow the bound around the refinement hotspot;
    # the algorithm's blocks respect it (traffic recorded for the
    # report — the objectives are incomparable once naive is infeasible).
    assert max(naive.component_weights()) > bound
    benchmark.extra_info.update(
        {
            "smart_traffic": round(smart.weight, 1),
            "naive_traffic": round(naive.weight, 1),
            "naive_overload": round(max(naive.component_weights()) / bound, 2),
        }
    )


def test_periodic_solver_ring(benchmark):
    ring = iterative_solver_ring(512, rng=random.Random(3))
    bound = 4.0 * ring.max_vertex_weight()
    result = benchmark(ring_bandwidth_min, ring, bound)
    assert result.is_feasible(bound)
    assert len(result.cut_indices) >= 2
