"""Shared helpers for the benchmark harness.

Each benchmark file regenerates one row of DESIGN.md's experiment index.
Conventions:

- instances are built deterministically via ``spawn_rng`` so numbers are
  comparable across runs;
- every benchmark also *asserts* the qualitative claim it reproduces
  (who wins, which shape), so ``pytest benchmarks/ --benchmark-only``
  doubles as a reproduction check;
- the paper-style series (the actual Figure-2 rows) are attached as
  ``benchmark.extra_info`` and printed by ``python -m repro fig2`` etc.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import bound_for_ratio, figure2_chain
from repro.instrumentation.rng import spawn_rng

MASTER_SEED = 20260706


def make_chain(n: int, ratio: float, w_max: float = 100.0, rep: int = 0):
    """The Figure-2 instance family, deterministic per (n, ratio, rep)."""
    rng = spawn_rng(MASTER_SEED, "bench", n, ratio, rep)
    chain = figure2_chain(n, w_max, rng)
    return chain, bound_for_ratio(chain, ratio)


@pytest.fixture
def fig2_chain():
    return make_chain
