"""Ablations of the design choices DESIGN.md calls out.

- Non-redundant edge reduction on/off (the r <= 2p-1 trick): the
  reduction must never change the optimum, and it prunes the edge
  stream substantially when prime subpaths are long (large K).
- Binary search vs monotone-deque pops on TEMP_S: identical outputs;
  the binary variant bounds the worst single step, the linear one is
  amortized O(1).
- Naive recurrence vs TEMP_S: the O(sum |P_i|) evaluation falls behind
  as q grows (its cost is ~ p*q, TEMP_S is ~ p log q).
"""

import time

import pytest

from benchmarks.conftest import make_chain
from repro.core.bandwidth import bandwidth_min
from repro.core.prime_subpaths import PrimeStructure
from repro.core.recurrence import bandwidth_min_naive

N = 20_000


@pytest.mark.parametrize("apply_reduction", [True, False])
def test_reduction_ablation(benchmark, apply_reduction):
    chain, bound = make_chain(N, 64.0)
    result = benchmark(
        bandwidth_min, chain, bound, apply_reduction=apply_reduction
    )
    reference = bandwidth_min(chain, bound).weight
    assert result.weight == pytest.approx(reference)


def test_reduction_prunes_edges(benchmark):
    chain, bound = make_chain(N, 64.0)

    def measure():
        reduced = PrimeStructure.compute(chain, bound, apply_reduction=True)
        full = PrimeStructure.compute(chain, bound, apply_reduction=False)
        return reduced.r, full.r

    reduced_r, full_r = benchmark(measure)
    assert reduced_r <= full_r
    # With long prime subpaths (K = 64 w_max) most edges collapse into
    # membership classes... actually every edge has distinct membership
    # unless primes coincide; the guarantee is the 2p-1 bound:
    structure = PrimeStructure.compute(chain, bound)
    assert reduced_r <= 2 * structure.p - 1


@pytest.mark.parametrize("search", ["binary", "linear"])
def test_search_strategy_ablation(benchmark, search):
    chain, bound = make_chain(N, 16.0)
    result = benchmark(bandwidth_min, chain, bound, search=search)
    assert result.is_feasible(bound)


def test_temp_s_beats_naive_recurrence_at_large_q(benchmark):
    chain, bound = make_chain(N, 256.0)  # long primes -> large q

    def both():
        t0 = time.perf_counter()
        fast = bandwidth_min(chain, bound)
        t1 = time.perf_counter()
        naive = bandwidth_min_naive(chain, bound)
        t2 = time.perf_counter()
        assert fast.weight == pytest.approx(naive.weight)
        return t1 - t0, t2 - t1

    fast_t, naive_t = benchmark.pedantic(both, rounds=1, iterations=1)
    assert fast_t < naive_t, (
        f"TEMP_S ({fast_t:.4f}s) should beat the naive recurrence "
        f"({naive_t:.4f}s) when q is large"
    )
