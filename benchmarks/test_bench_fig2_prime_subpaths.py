"""Figure 2 (panels a/b): prime-subpath statistics p and q vs K.

Paper claim: "for given n, p log q may be very low in many cases
(particularly for high and low K)"; p is bounded by n-1 and falls as K
approaches the total weight; q grows with K but the number of
non-redundant edges r stays <= min(n-1, 2p-1).

Regenerate the full series with ``python -m repro fig2``.
"""

import pytest

from benchmarks.conftest import make_chain
from repro.core.prime_subpaths import PrimeStructure

N = 4000
RATIOS = [1.2, 4.0, 16.0, 64.0]


@pytest.mark.parametrize("ratio", RATIOS)
def test_prime_structure_cost(benchmark, ratio):
    chain, bound = make_chain(N, ratio)
    structure = benchmark(PrimeStructure.compute, chain, bound)
    # Structural bounds from Section 2.3.
    assert structure.p <= N - 1
    assert structure.r <= min(N - 1, 2 * structure.p - 1)
    benchmark.extra_info.update(
        {"p": structure.p, "q": round(structure.q, 3), "r": structure.r}
    )


def test_q_grows_with_k_and_p_shrinks(benchmark):
    def measure():
        rows = []
        for ratio in RATIOS:
            chain, bound = make_chain(N, ratio)
            s = PrimeStructure.compute(chain, bound)
            rows.append((ratio, s.p, s.q))
        return rows

    rows = benchmark(measure)
    qs = [q for _r, _p, q in rows]
    assert qs == sorted(qs), "q must grow with K"
    # p at the largest swept K is below p at the smallest.
    assert rows[-1][1] < rows[0][1]


def test_p_drops_to_zero_at_huge_k(benchmark):
    chain, _ = make_chain(N, 2.0)
    bound = chain.total_weight()

    structure = benchmark(PrimeStructure.compute, chain, bound)
    assert structure.p == 0


def test_mean_prime_length_matches_paper_bound(benchmark):
    """Section 2.3.2: with weights uniform on [w1, w2], average prime
    subpath length is about 2K/(w1+w2)."""
    ratio = 8.0
    chain, bound = make_chain(N, ratio)

    structure = benchmark(PrimeStructure.compute, chain, bound)
    w1, w2 = 1.0, 100.0
    predicted = 2 * bound / (w1 + w2)
    measured = structure.mean_prime_length()
    assert measured == pytest.approx(predicted, rel=0.15)
    benchmark.extra_info.update(
        {"measured_len": round(measured, 2), "paper_bound": round(predicted, 2)}
    )
