"""Figure 2 (panel d): effect of the maximum module execution weight.

The paper's simulations relate p, q and p log q to the "maximum vertex
weight (maximum module execution time)".  At a fixed K/w_max ratio,
widening the weight range leaves the *relative* structure stable (prime
lengths are governed by 2K/(w1+w2)); at a fixed absolute K, a larger
w_max shortens prime subpaths and lowers q.

Regenerate the series with ``python -m repro fig2w``.
"""

import pytest

from benchmarks.conftest import MASTER_SEED
from repro.analysis.figure2 import figure2_weight_sweep
from repro.core.prime_subpaths import PrimeStructure
from repro.graphs.generators import figure2_chain
from repro.instrumentation.rng import spawn_rng

N = 2000


def test_weight_sweep_cost(benchmark):
    points = benchmark(figure2_weight_sweep, N, [5.0, 100.0], 4.0, 1)
    assert len(points) == 2
    assert all(p.p > 0 for p in points)


def test_fixed_ratio_keeps_prime_length_scaled(benchmark):
    def run():
        return figure2_weight_sweep(N, [10.0, 30.0, 100.0], ratio=6.0,
                                    repetitions=2)

    points = benchmark(run)
    # Mean prime length tracks 2K/(w1+w2) for each w_max.
    for point in points:
        predicted = 2 * point.bound / (1.0 + point.w_max)
        assert point.mean_prime_length == pytest.approx(predicted, rel=0.2)


def test_fixed_absolute_k_larger_weights_lower_q(benchmark):
    def run():
        absolute_k = 400.0
        rows = []
        for w_max in (20.0, 50.0, 100.0, 200.0):
            rng = spawn_rng(MASTER_SEED, "fig2w-abs", w_max)
            chain = figure2_chain(N, w_max, rng)
            structure = PrimeStructure.compute(chain, absolute_k)
            rows.append((w_max, structure.q))
        return rows

    rows = benchmark(run)
    qs = [q for _w, q in rows]
    assert qs == sorted(qs, reverse=True), (
        f"q should fall as module weights grow at fixed K: {rows}"
    )
