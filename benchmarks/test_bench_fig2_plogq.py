"""Figure 2 (panel c): p log q vs n log n.

Paper claims: "the maximum value of p log q is much less than n log n.
Therefore, we expect a constant time improvement even in the worst
case", and p log q is "very low in many cases (particularly for high
and low K)".

Regenerate the series with ``python -m repro fig2``.
"""

import pytest

from repro.analysis.figure2 import figure2_sweep, headline_claims

NS = [1000, 4000]
RATIOS = [1.2, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0]


@pytest.fixture(scope="module")
def sweep_points():
    return figure2_sweep(NS, RATIOS, repetitions=2)


def test_sweep_cost(benchmark):
    points = benchmark(figure2_sweep, [1000], [4.0, 64.0], 1)
    assert len(points) == 2


def test_max_plogq_much_less_than_nlogn(benchmark, sweep_points):
    claims = benchmark(headline_claims, sweep_points)
    for n in NS:
        claim = claims[n]
        assert claim["max_p_log_q"] < 0.5 * claim["n_log_n"], (
            f"n={n}: max p log q = {claim['max_p_log_q']:.0f} not well "
            f"below n log n = {claim['n_log_n']:.0f}"
        )


def test_low_at_extreme_k(sweep_points, benchmark):
    benchmark(lambda: None)
    claims = headline_claims(sweep_points)
    for n in NS:
        assert claims[n]["low_at_extremes"], (
            f"n={n}: p log q not low at extreme K values"
        )


def test_plogq_scales_sublinearly_with_nlogn(sweep_points, benchmark):
    benchmark(lambda: None)
    by_n = {}
    for point in sweep_points:
        by_n.setdefault(point.n, []).append(point)
    ratios = {
        n: max(p.p_log_q for p in pts) / pts[0].n_log_n
        for n, pts in by_n.items()
    }
    # The advantage does not evaporate as n grows (ratio roughly stable).
    values = [ratios[n] for n in NS]
    assert max(values) / min(values) < 1.5
