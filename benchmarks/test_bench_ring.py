"""Extension experiment: exact circular partitioning vs the
break-then-linearize heuristic (Section 3's "circular type" systems).

Reproduced shape: the exact ring partitioner pays only a small factor
over one chain solve (its candidate count is bounded by the prime-arc
length ~ 2K/(w1+w2)) and never returns a heavier cut than the
break-at-lightest-edge heuristic the linearization path uses.
"""

import pytest

from benchmarks.conftest import MASTER_SEED
from repro.core.bandwidth import bandwidth_min
from repro.core.ring import ring_bandwidth_min
from repro.graphs.ring import Ring
from repro.instrumentation.rng import spawn_rng


def make_ring(n: int, ratio: float):
    rng = spawn_rng(MASTER_SEED, "ringbench", n, ratio)
    alpha = [rng.uniform(1, 10) for _ in range(n)]
    beta = [rng.uniform(1, 100) for _ in range(n)]
    ring = Ring(alpha, beta)
    return ring, ratio * max(alpha)


@pytest.mark.parametrize("n", [1000, 10_000])
def test_ring_exact_cost(benchmark, n):
    ring, bound = make_ring(n, 4.0)
    result = benchmark(ring_bandwidth_min, ring, bound)
    assert result.is_feasible(bound)
    benchmark.extra_info["candidates"] = result.candidates_tried


def test_candidates_bounded_by_prime_arc(benchmark):
    ring, bound = make_ring(10_000, 4.0)
    result = benchmark(ring_bandwidth_min, ring, bound)
    # ~ 2K/(w1+w2) = 2*40/11 ≈ 7.3; generous:
    assert result.candidates_tried <= 16


def test_exact_never_worse_than_heuristic(benchmark):
    ring, bound = make_ring(5000, 6.0)

    def both():
        exact = ring_bandwidth_min(ring, bound)
        lightest = min(range(ring.num_edges), key=lambda i: ring.beta[i])
        chain = ring.open_at(lightest)
        heuristic = ring.edge_weight(lightest) + bandwidth_min(
            chain, bound
        ).weight
        return exact.weight, heuristic

    exact_w, heuristic_w = benchmark.pedantic(both, rounds=1, iterations=1)
    assert exact_w <= heuristic_w + 1e-9
