"""Parallel-simulation payoff of partition quality (Section 3 study,
executed on the conservative engine).

Reproduced shape: running the *same* conservative windowed simulation
under different gate placements, the Algorithm-4.1 partition of the
activity-weighted supergraph yields (a) fewer cross-LP messages and
(b) a higher estimated parallel speedup on a bus-based shared-memory
machine than round-robin placement with the same LP count — the
end-to-end version of the paper's "load balanced and number of messages
passed among processors minimized" argument.
"""

import pytest

from repro.core.bandwidth import bandwidth_min
from repro.desim.linearize import circuit_supergraph
from repro.desim.netlists import ring_counter
from repro.desim.parallel import ParallelLogicSimulator
from repro.desim.simulator import LogicSimulator
from repro.machine.interconnect import SharedBus
from repro.machine.machine import SharedMemoryMachine

END_TIME = 1500.0


@pytest.fixture(scope="module")
def study():
    circuit = ring_counter(64)
    profile = LogicSimulator(circuit).run(END_TIME)
    supergraph = circuit_supergraph(circuit, activity=profile.activity())
    bound = 6.0 * supergraph.chain.max_vertex_weight()
    cut = bandwidth_min(supergraph.chain, bound)
    smart = supergraph.assignment_from_cut(cut.cut_indices)
    k = cut.num_components
    naive = [g % k for g in range(circuit.num_gates)]
    return circuit, smart, naive, k


def test_parallel_run_smart_partition(benchmark, study):
    circuit, smart, _naive, _k = study
    sim = ParallelLogicSimulator(circuit, smart)
    run = benchmark(sim.run, END_TIME)
    assert run.cross_messages >= 0


def test_parallel_run_round_robin(benchmark, study):
    circuit, _smart, naive, _k = study
    sim = ParallelLogicSimulator(circuit, naive)
    run = benchmark(sim.run, END_TIME)
    assert run.cross_messages >= 0


def test_partition_quality_drives_speedup(benchmark, study):
    circuit, smart, naive, k = study
    machine = SharedMemoryMachine(k, interconnect=SharedBus(bandwidth=50.0))

    def both():
        a = ParallelLogicSimulator(circuit, smart).run(END_TIME)
        b = ParallelLogicSimulator(circuit, naive).run(END_TIME)
        return a, b

    smart_run, naive_run = benchmark.pedantic(both, rounds=1, iterations=1)
    # Identical simulations (conservative engine guarantee) ...
    assert smart_run.final_values == naive_run.final_values
    assert smart_run.total_messages == naive_run.total_messages
    # ... but cheaper communication and better speedup for the
    # algorithm's partition.
    assert smart_run.cross_messages < naive_run.cross_messages
    speedup_smart = smart_run.estimated_speedup(machine, barrier_time=0.05)
    speedup_naive = naive_run.estimated_speedup(machine, barrier_time=0.05)
    assert speedup_smart > speedup_naive


def test_speedup_grows_with_processors(benchmark, study):
    circuit, _smart, _naive, _k = study
    machine8 = SharedMemoryMachine(8, interconnect=SharedBus(bandwidth=1e9))

    def run_all():
        results = {}
        for k in (1, 2, 4, 8):
            block = max(1, (circuit.num_gates + k - 1) // k)
            assignment = [min(g // block, k - 1) for g in range(circuit.num_gates)]
            results[k] = ParallelLogicSimulator(circuit, assignment).run(
                END_TIME
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    speedups = [
        results[k].estimated_speedup(machine8) for k in (1, 2, 4, 8)
    ]
    assert speedups[0] == pytest.approx(1.0)
    assert speedups == sorted(speedups)
