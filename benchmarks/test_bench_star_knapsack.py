"""Theorem 1: the NP-complete star case and its knapsack solver.

Reproduced shape: the exact star solver's cost scales with leaf count
times capacity (pseudo-polynomial), while the *chain* problem of the
same size stays trivially fast — the polynomial/NP-complete divide the
paper draws between linear and tree task graphs.
"""

import time

import pytest

from benchmarks.conftest import MASTER_SEED, make_chain
from repro.baselines.star_knapsack import knapsack_01, star_bandwidth_min
from repro.core.bandwidth import bandwidth_min
from repro.graphs.tree import Tree
from repro.instrumentation.rng import spawn_rng


def make_star(num_leaves: int, capacity_ratio: float = 0.5):
    rng = spawn_rng(MASTER_SEED, "star", num_leaves)
    leaves = [float(rng.randint(1, 50)) for _ in range(num_leaves)]
    profits = [float(rng.randint(1, 100)) for _ in range(num_leaves)]
    star = Tree.star(0.0, leaves, profits)
    bound = max(max(leaves), capacity_ratio * sum(leaves))
    return star, float(int(bound))


@pytest.mark.parametrize("leaves", [50, 200, 800])
def test_star_solver_scaling(benchmark, leaves):
    star, bound = make_star(leaves)
    cut, weight = benchmark(star_bandwidth_min, star, bound)
    assert weight >= 0
    kept_weight = sum(
        star.vertex_weight(v)
        for v in range(1, star.num_vertices)
        if not any(v in edge for edge in cut)
    )
    assert kept_weight <= bound


def test_knapsack_dp_cost(benchmark):
    rng = spawn_rng(MASTER_SEED, "knap")
    weights = [rng.randint(1, 60) for _ in range(300)]
    profits = [rng.randint(1, 99) for _ in range(300)]
    solution = benchmark(knapsack_01, weights, profits, 2000)
    assert solution.profit > 0


def test_chain_vs_star_divide(benchmark):
    """Same vertex count: the chain optimum is orders of magnitude
    cheaper to compute than the star's pseudo-polynomial DP."""

    def both():
        star, star_bound = make_star(500, capacity_ratio=0.5)
        t0 = time.perf_counter()
        star_bandwidth_min(star, star_bound)
        t1 = time.perf_counter()
        chain, chain_bound = make_chain(501, 4.0)
        t2 = time.perf_counter()
        bandwidth_min(chain, chain_bound)
        t3 = time.perf_counter()
        return t1 - t0, t3 - t2

    star_t, chain_t = benchmark(both)
    assert chain_t < star_t
