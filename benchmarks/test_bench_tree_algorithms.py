"""Tree algorithm complexity (Sections 2.1 and 2.2).

- Algorithm 2.1: the paper's O(n^2) re-scan formulation vs the
  output-identical union-find formulation (run at a size where the
  quadratic cost is visible but not painful);
- Algorithm 2.2: O(n log n) processor minimization, plus the combined
  bottleneck -> processor-min pipeline (Section 2.2's super-node step).
"""

import pytest

from benchmarks.conftest import MASTER_SEED
from repro.baselines.kundu_misra import processor_min_bottom_up
from repro.core.bottleneck import bottleneck_min, bottleneck_min_naive
from repro.core.pipeline import partition_tree
from repro.core.processor_min import processor_min
from repro.graphs.generators import random_tree
from repro.instrumentation.rng import spawn_rng


def make_tree(n: int, attachment: str = "uniform"):
    rng = spawn_rng(MASTER_SEED, "tree", n, attachment)
    tree = random_tree(n, rng, vertex_range=(1, 10), edge_range=(1, 100),
                       attachment=attachment)
    return tree, 4.0 * tree.max_vertex_weight()


@pytest.fixture(scope="module")
def big_tree():
    return make_tree(20_000)


def test_bottleneck_union_find(benchmark, big_tree):
    tree, bound = big_tree
    result = benchmark(bottleneck_min, tree, bound)
    assert result.is_feasible(bound)


def test_bottleneck_naive_paper_version(benchmark):
    tree, bound = make_tree(800)  # O(n^2): keep it modest
    result = benchmark(bottleneck_min_naive, tree, bound)
    assert result.cut_edges == bottleneck_min(tree, bound).cut_edges


def test_optimized_beats_naive(benchmark):
    import time

    tree, bound = make_tree(800)

    def both():
        t0 = time.perf_counter()
        fast = bottleneck_min(tree, bound)
        t1 = time.perf_counter()
        slow = bottleneck_min_naive(tree, bound)
        t2 = time.perf_counter()
        assert fast.cut_edges == slow.cut_edges
        return t1 - t0, t2 - t1

    fast_t, slow_t = benchmark(both)
    assert fast_t < slow_t


@pytest.mark.parametrize("n", [2000, 20000])
def test_processor_min_scaling(benchmark, n):
    tree, bound = make_tree(n)
    result = benchmark(processor_min, tree, bound)
    assert result.is_feasible(bound)


def test_processor_min_star_heavy(benchmark):
    tree, bound = make_tree(5000, attachment="preferential")
    result = benchmark(processor_min, tree, bound)
    assert result.num_components == processor_min_bottom_up(
        tree, bound
    ).num_components


def test_full_pipeline(benchmark, big_tree):
    tree, bound = big_tree
    plan = benchmark(partition_tree, tree, bound)
    assert plan.final_cut <= plan.bottleneck_cut
    assert plan.num_processors <= len(plan.bottleneck_cut) + 1
