"""Conservative vs optimistic synchronization under partition quality.

The two classic distributed-simulation protocols (paper §3's citation
[10]) pay for parallelism differently: the conservative engine pays
barrier windows, Time Warp pays rolled-back work and anti-messages.
Both commit the identical simulation (asserted), so the comparison
isolates pure synchronization cost — and both costs respond to the
partition: keeping traffic local (Algorithm 4.1 on the activity-
weighted supergraph) can only help.
"""

import pytest

from repro.core.bandwidth import bandwidth_min
from repro.desim.linearize import circuit_supergraph
from repro.desim.netlists import ring_counter
from repro.desim.parallel import ParallelLogicSimulator
from repro.desim.simulator import LogicSimulator
from repro.desim.timewarp import TimeWarpSimulator

END_TIME = 1000.0


@pytest.fixture(scope="module")
def study():
    circuit = ring_counter(48)
    profile = LogicSimulator(circuit).run(END_TIME)
    supergraph = circuit_supergraph(circuit, activity=profile.activity())
    cut = bandwidth_min(
        supergraph.chain, 6.0 * supergraph.chain.max_vertex_weight()
    )
    smart = supergraph.assignment_from_cut(cut.cut_indices)
    return circuit, smart, cut.num_components


def test_conservative_engine_cost(benchmark, study):
    circuit, smart, _k = study
    sim = ParallelLogicSimulator(circuit, smart)
    run = benchmark(sim.run, END_TIME)
    assert run.windows > 0


def test_timewarp_engine_cost(benchmark, study):
    circuit, smart, _k = study
    sim = TimeWarpSimulator(circuit, smart)
    run = benchmark(sim.run, END_TIME)
    assert run.events_executed > 0


def test_both_commit_identical_simulation(benchmark, study):
    circuit, smart, _k = study

    def both():
        conservative = ParallelLogicSimulator(circuit, smart).run(END_TIME)
        optimistic = TimeWarpSimulator(circuit, smart).run(END_TIME)
        return conservative, optimistic

    conservative, optimistic = benchmark.pedantic(both, rounds=1, iterations=1)
    assert optimistic.final_values == conservative.final_values
    assert optimistic.evaluations == conservative.evaluations
    assert optimistic.deliveries == conservative.deliveries
    benchmark.extra_info.update(
        {
            "conservative_windows": conservative.windows,
            "timewarp_rollbacks": optimistic.rollbacks,
            "timewarp_wasted": round(optimistic.wasted_fraction, 3),
        }
    )


def test_smart_partition_cuts_cross_traffic_in_both(benchmark, study):
    circuit, smart, k = study
    naive = [g % k for g in range(circuit.num_gates)]

    def all_four():
        return (
            ParallelLogicSimulator(circuit, smart).run(END_TIME),
            ParallelLogicSimulator(circuit, naive).run(END_TIME),
            TimeWarpSimulator(circuit, smart).run(END_TIME),
            TimeWarpSimulator(circuit, naive).run(END_TIME),
        )

    cons_smart, cons_naive, tw_smart, tw_naive = benchmark.pedantic(
        all_four, rounds=1, iterations=1
    )
    assert cons_smart.cross_messages < cons_naive.cross_messages
    assert tw_smart.cross_messages < tw_naive.cross_messages
    # Committed traffic identical across engines and partitions.
    assert cons_smart.total_messages == tw_smart.total_messages
