"""Algorithm comparison (Section 2.3.2): the paper's O(n + p log q)
algorithm vs the O(n log n) baseline [11], the naive recurrence, the
O(n^2) DP and the modern O(n) deque.

Shape claims reproduced:

- all algorithms return the same optimum (asserted);
- the paper algorithm "retains the worst case performance at least as
  good as the best known current algorithm" — at every size it is
  within a small constant of the O(n log n) baseline and typically
  faster for moderate K;
- the quadratic DP falls hopelessly behind (run at a smaller n).
"""

import pytest

from benchmarks.conftest import make_chain
from repro.baselines.exact_dp import bandwidth_min_dp
from repro.baselines.nicol import bandwidth_min_nlogn
from repro.baselines.sliding_window import bandwidth_min_deque
from repro.core.bandwidth import bandwidth_min
from repro.core.recurrence import bandwidth_min_naive

N_LARGE = 30_000
N_SMALL = 2_000
RATIO = 4.0

ALGORITHMS = {
    "paper": bandwidth_min,
    "nicol_nlogn": bandwidth_min_nlogn,
    "deque_linear": bandwidth_min_deque,
    "naive_recurrence": bandwidth_min_naive,
}


@pytest.fixture(scope="module")
def large_instance():
    return make_chain(N_LARGE, RATIO)


@pytest.fixture(scope="module")
def reference_weight(large_instance):
    chain, bound = large_instance
    return bandwidth_min_deque(chain, bound).weight


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_large_chain(benchmark, name, large_instance, reference_weight):
    chain, bound = large_instance
    result = benchmark(ALGORITHMS[name], chain, bound)
    assert result.weight == pytest.approx(reference_weight)


def test_quadratic_dp_small(benchmark):
    chain, bound = make_chain(N_SMALL, RATIO)
    result = benchmark(bandwidth_min_dp, chain, bound)
    assert result.weight == pytest.approx(bandwidth_min(chain, bound).weight)


@pytest.mark.parametrize("ratio", [1.5, 16.0, 128.0])
def test_paper_algorithm_across_k(benchmark, ratio):
    chain, bound = make_chain(N_LARGE, ratio)
    result = benchmark(bandwidth_min, chain, bound)
    assert result.is_feasible(bound)


def test_paper_never_loses_asymptotically(benchmark):
    """The paper's claim is about abstract operations: its sweep does
    ``O(n + p log q)`` comparisons against the baseline's
    ``O(n log n)``.  Assert that on operation counts, with a loose
    wall-clock guard on top (in CPython the baseline's inner loop is
    C-accelerated ``heapq``, so wall time alone under-credits the
    asymptotics — see EXPERIMENTS.md)."""
    import math
    import time

    from repro.core.bandwidth import bandwidth_stats

    chain, bound = make_chain(N_LARGE, RATIO)

    def both():
        t0 = time.perf_counter()
        a = bandwidth_min(chain, bound)
        t1 = time.perf_counter()
        b = bandwidth_min_nlogn(chain, bound)
        t2 = time.perf_counter()
        return (t1 - t0, t2 - t1, a.weight, b.weight)

    paper_t, nicol_t, wa, wb = benchmark(both)
    assert wa == pytest.approx(wb)
    stats = bandwidth_stats(chain, bound)
    paper_ops = stats.n + stats.r + stats.search_steps
    nlogn_ops = stats.n_log_n
    assert paper_ops < nlogn_ops, (
        f"paper should win on operations: {paper_ops} vs {nlogn_ops:.0f}"
    )
    # Wall-clock guard: pure-Python constants cost a small factor, but
    # the paper algorithm must stay in the same league.
    assert paper_t < 8.0 * nicol_t
