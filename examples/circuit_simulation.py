#!/usr/bin/env python3
"""Section-3 distributed discrete-event simulation study.

Builds a circular logic circuit (a 64-stage ring counter), profiles it
with the event-driven simulator, linearizes it into a supergraph
weighted by measured activity, partitions that chain with Algorithm 4.1
and compares the resulting gate placement against round-robin and
random placements on cross-processor message counts and load balance —
the exact experiment Section 3 sketches for "circular type logic
circuits" on shared-memory machines.

Run:  python examples/circuit_simulation.py
"""

import random

from repro.analysis.tables import render_table
from repro.core import bandwidth_min
from repro.desim import (
    LogicSimulator,
    WaveformRecorder,
    circuit_supergraph,
    simulate_partitioned,
)
from repro.desim.netlists import ring_counter

END_TIME = 2000.0


def main() -> None:
    circuit = ring_counter(64)
    print(f"circuit: {circuit!r}")

    # 1. Profile: one sequential run measures per-gate activity and
    #    per-wire message counts.
    profile = LogicSimulator(circuit).run(END_TIME)
    print(f"profile run: {profile.events_processed} events, "
          f"{profile.total_messages} messages\n")

    # 2. Linearize: the ring becomes an exact chain (broken at the
    #    lightest wire), weighted by measured activity.
    supergraph = circuit_supergraph(circuit, activity=profile.activity())
    chain = supergraph.chain
    print(f"linear supergraph: {chain!r} (exact={supergraph.exact})")

    # 3. Partition with the paper's bandwidth-minimization algorithm.
    bound = 6.0 * chain.max_vertex_weight()
    cut = bandwidth_min(chain, bound)
    k = cut.num_components
    smart = supergraph.assignment_from_cut(cut.cut_indices)
    print(f"Algorithm 4.1: K = {bound:.1f} -> {k} processors, "
          f"cut weight {cut.weight:.1f}\n")

    # 4. Compare placements with the same processor count.
    rng = random.Random(11)
    placements = {
        "algorithm 4.1": smart,
        "round robin": [g % k for g in range(circuit.num_gates)],
        "random": [rng.randrange(k) for _ in range(circuit.num_gates)],
    }
    rows = []
    for name, assignment in placements.items():
        run = simulate_partitioned(circuit, assignment, END_TIME)
        rows.append([
            name,
            run.cross_messages,
            run.local_messages,
            f"{100 * run.cross_fraction:.1f}%",
            round(run.load_imbalance, 2),
        ])
    print(render_table(
        ["placement", "cross msgs", "local msgs", "cross %", "imbalance"],
        rows,
        f"Distributed simulation on {k} processors",
    ))

    # Bonus: what the circuit is actually doing (first 4 stages).
    recorder = WaveformRecorder(circuit, watch=[0, 1, 2, 3])
    recorder.run(400.0)
    print("\nwaveforms (t = 0 .. 400):")
    print(recorder.ascii_waves(width=64))


if __name__ == "__main__":
    main()
