#!/usr/bin/env python3
"""Section-3 real-time computing study (the Figure-3 pipeline).

A real-time task with a hard deadline is maximally divided into a chain
of subtasks; the planner partitions it so every component finishes
within the deadline while minimizing network demand, then maps it
trivially onto the shared-memory machine (uniform latency).  The script
compares all three objectives and prints the per-stage schedule of the
bandwidth-optimal plan.

Run:  python examples/realtime_pipeline.py
"""

import random

from repro.analysis.tables import render_table
from repro.machine import SharedBus, SharedMemoryMachine
from repro.realtime import RealTimeTask, build_schedule, plan_realtime_task
from repro.realtime.planner import compare_objectives
from repro.realtime.schedule import pipeline_period


def make_task(num_subtasks: int = 60, seed: int = 7) -> RealTimeTask:
    """A synthetic sensor-processing pipeline: per-subtask compute cost
    plus data-dependency weights mixing volume and sensitivity."""
    rng = random.Random(seed)
    costs = [rng.uniform(1.0, 10.0) for _ in range(num_subtasks)]
    deps = [rng.uniform(1.0, 100.0) for _ in range(num_subtasks - 1)]
    return RealTimeTask("sensor-fusion", costs, deps, deadline=4.0 * max(costs))


def main() -> None:
    task = make_task()
    machine = SharedMemoryMachine(32, interconnect=SharedBus(bandwidth=10.0))
    print(f"task: {task.num_subtasks} subtasks, total work "
          f"{sum(task.subtask_costs):.1f}, deadline k = {task.deadline:.2f}")
    print(f"machine: {machine!r}")
    print(f"work lower bound: {task.utilization_bound():.1f} processors\n")

    rows = []
    for plan in compare_objectives(task, machine):
        rows.append([
            plan.objective,
            plan.processors_used,
            round(plan.worst_component_time, 2),
            "yes" if plan.meets_deadline else "NO",
            round(plan.traffic.total_demand, 1),
            round(plan.traffic.max_link_demand, 1),
            round(plan.traffic.max_processor_demand, 1),
        ])
    print(render_table(
        ["objective", "procs", "worst stage", "deadline?",
         "total traffic", "max link", "max proc traffic"],
        rows,
        "Objective comparison",
    ))

    plan = plan_realtime_task(task, machine, "bandwidth")
    schedules = build_schedule(plan, machine)
    print(f"\nbandwidth-optimal schedule "
          f"(pipeline period {pipeline_period(schedules):.2f}):")
    stage_rows = [
        [s.processor, f"{s.first_subtask}..{s.last_subtask}",
         round(s.compute_time, 2), round(s.slack, 2),
         round(s.send_volume, 1)]
        for s in schedules
    ]
    print(render_table(
        ["proc", "subtasks", "compute", "slack", "sends"],
        stage_rows,
    ))


if __name__ == "__main__":
    main()
