#!/usr/bin/env python3
"""Quickstart: partition a linear task graph on shared memory.

Covers the three objectives of the paper on one small pipeline:

1. bandwidth minimization (Algorithm 4.1) — least network traffic;
2. bottleneck minimization (Algorithm 2.1) — lightest heaviest link;
3. processor minimization (Algorithm 2.2) — fewest processors;

then maps the bandwidth-optimal partition onto a shared-memory machine
and simulates a pipelined run.

Run:  python examples/quickstart.py
"""

from repro import Chain, bandwidth_min, partition_chain
from repro.analysis.partition_view import render_chain_partition
from repro.graphs.partition import blocks_as_ranges
from repro.machine import SharedBus, SharedMemoryMachine, simulate_pipeline
from repro.machine.gantt import render_gantt


def main() -> None:
    # A 10-stage pipeline: per-stage execution cost and per-edge message
    # volume.  The execution-time bound K caps every block's total cost.
    chain = Chain(
        alpha=[4, 3, 5, 2, 6, 3, 4, 5, 2, 4],
        beta=[7, 1, 9, 2, 8, 1, 6, 2, 5],
    )
    bound = 12.0
    print(f"chain of {chain.num_tasks} tasks, total work {chain.total_weight():g}, "
          f"bound K = {bound:g}\n")

    for objective in ("bandwidth", "bottleneck", "processors"):
        result = partition_chain(chain, bound, objective=objective)
        cut_weights = [chain.edge_weight(i) for i in result.cut_indices]
        print(f"[{objective:>10}] blocks {blocks_as_ranges(result.blocks())}")
        print(f"             cut edges {result.cut_indices} "
              f"(weights {cut_weights})")
        print(f"             bandwidth = {result.weight:g}, "
              f"components = {result.num_components}, "
              f"max block = {max(result.component_weights()):g}\n")

    # Execute the bandwidth-optimal partition on a bus-based machine.
    best = bandwidth_min(chain, bound)
    print(render_chain_partition(chain, best.cut_indices, bound) + "\n")
    machine = SharedMemoryMachine(8, interconnect=SharedBus(bandwidth=5.0))
    execution = simulate_pipeline(chain, best.cut_indices, machine, num_items=100)
    print(f"pipelined run of 100 items on {machine!r}:")
    print(f"  makespan    = {execution.makespan:.1f}")
    print(f"  throughput  = {execution.throughput:.4f} items/unit")
    print(f"  latency     = {execution.first_item_latency:.1f}")
    print(f"  bus traffic = {execution.total_traffic:g}")

    # Zoom into the first few items with a traced run.
    traced = simulate_pipeline(
        chain, best.cut_indices, machine, num_items=6, record_trace=True
    )
    print("\npipeline fill (first 6 items; digits = item, '>' = transfer):")
    print(render_gantt(traced, width=70))


if __name__ == "__main__":
    main()
