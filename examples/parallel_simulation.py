#!/usr/bin/env python3
"""Conservative parallel simulation of a partitioned circuit.

Completes the Section-3 distributed-simulation story end to end: the
windowed conservative engine (:mod:`repro.desim.parallel`) actually
*executes* the gate-level simulation across logical processes — with
the guarantee that any partition yields the identical simulation — and
reports the cost terms partitioning controls: cross-LP messages,
per-window load balance (the parallel critical path) and the resulting
estimated speedup on a bus-based shared-memory machine.

Run:  python examples/parallel_simulation.py
"""

import random

from repro.analysis.tables import render_table
from repro.core import bandwidth_min
from repro.desim import (
    LogicSimulator,
    ParallelLogicSimulator,
    circuit_supergraph,
)
from repro.desim.netlists import ring_counter
from repro.machine import SharedBus, SharedMemoryMachine

END_TIME = 2000.0


def main() -> None:
    circuit = ring_counter(96)
    print(f"circuit: {circuit!r}")

    # Profile + linearize + partition with Algorithm 4.1.
    profile = LogicSimulator(circuit).run(END_TIME)
    supergraph = circuit_supergraph(circuit, activity=profile.activity())
    bound = 8.0 * supergraph.chain.max_vertex_weight()
    cut = bandwidth_min(supergraph.chain, bound)
    k = cut.num_components
    smart = supergraph.assignment_from_cut(cut.cut_indices)
    print(f"Algorithm 4.1 partition: {k} logical processes, "
          f"cut weight {cut.weight:.1f}\n")

    # A deliberately modest bus: cross-LP messages are what separates
    # the placements, so give them a visible price.
    machine = SharedMemoryMachine(k, interconnect=SharedBus(bandwidth=0.25))
    rng = random.Random(5)
    placements = {
        "algorithm 4.1": smart,
        "round robin": [g % k for g in range(circuit.num_gates)],
        "random": [rng.randrange(k) for _ in range(circuit.num_gates)],
    }
    rows = []
    reference = None
    for name, assignment in placements.items():
        run = ParallelLogicSimulator(circuit, assignment).run(END_TIME)
        if reference is None:
            reference = run
        # The conservative engine's guarantee: identical simulation.
        assert run.final_values == reference.final_values
        assert run.total_messages == reference.total_messages
        rows.append([
            name,
            run.cross_messages,
            round(run.critical_path_work, 0),
            run.windows,
            round(run.estimated_speedup(machine, barrier_time=0.05), 2),
        ])
    print(render_table(
        ["placement", "cross msgs", "critical path", "sync windows",
         "est. speedup"],
        rows,
        f"Conservative parallel simulation on {k} LPs "
        f"(identical results, different costs)",
    ))
    print(f"\nsequential work: {reference.sequential_work:.0f} "
          f"(lookahead {reference.lookahead:g})")


if __name__ == "__main__":
    main()
