#!/usr/bin/env python3
"""Figure-1 walkthrough: processor minimization on a tree, step by step.

Reconstructs the paper's Figure-1 style worked example for
Algorithm 2.2 (the printed figure's numbers are not machine-readable in
the source text, so the tree here is an equivalent hand-checkable one)
and narrates every greedy decision, then cross-checks optimality with
the exact DP oracle and runs the full Section-2.2 pipeline
(bottleneck minimization -> super-node contraction -> processor
minimization).

Run:  python examples/figure1_walkthrough.py
"""

from repro.baselines.tree_dp import min_cuts_exact
from repro.core import bottleneck_min, partition_tree, processor_min
from repro.graphs.tree import Tree


def main() -> None:
    #         0 (w=2)
    #       / | | \
    #      2  3 4  1 (w=3)      leaves 2,3,4 weigh 3,4,5
    #              / \
    #             5   6         leaves 5,6 weigh 6,2
    tree = Tree(
        [2, 3, 3, 4, 5, 6, 2],
        [(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (1, 6)],
        [4, 1, 2, 7, 9, 3],
    )
    bound = 10.0
    print(f"tree with weights {tree.vertex_weights}, total "
          f"{tree.total_vertex_weight():g}, bound K = {bound:g}\n")

    print("Algorithm 2.2 walk-through:")
    print("  pre-leaf 1: W = 3 + 6 + 2 = 11 > 10")
    print("    -> prune heaviest leaf 5 (w=6); cut (1,5); residual 5")
    print("  pre-leaf 0: W = 2 + 5 + 3 + 4 + 5 = 19 > 10")
    print("    -> prune leaf 4 (w=5): 14 > 10; prune super-leaf 1 (w=5): 9 <= 10")
    print("    -> cuts (0,4), (0,1)\n")

    result = processor_min(tree, bound)
    print(f"computed cut: {sorted(result.cut_edges)}")
    partition = result.partition()
    print(f"components ({partition.num_processors}): "
          f"{[sorted(c) for c in partition.components]}")
    print(f"component weights: {partition.component_weights}")

    exact = min_cuts_exact(tree, bound)
    print(f"\nexact DP oracle: minimum cuts = {exact} "
          f"({'MATCHES' if exact == len(result.cut_edges) else 'DIFFERS'})")

    print("\nFull Section-2.2 pipeline (bottleneck first, then merge):")
    raw = bottleneck_min(tree, bound)
    plan = partition_tree(tree, bound)
    print(f"  bottleneck cut: {sorted(raw.cut_edges)} "
          f"(bottleneck {raw.bottleneck:g}, {raw.num_components} components)")
    print(f"  after processor minimization on super-nodes: "
          f"{sorted(plan.final_cut)}")
    print(f"  {plan.summary()}")


if __name__ == "__main__":
    main()
