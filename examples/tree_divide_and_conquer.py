#!/usr/bin/env python3
"""Tree task graphs from divide-and-conquer computations.

Section 1 motivates tree task graphs with divide-and-conquer
algorithms.  This example builds a balanced binary "conquer tree"
(each node = a merge step whose cost grows with its level), partitions
it with the combined Section-2 pipeline under several execution-time
bounds, and shows the bottleneck / processor-count trade-off as K
tightens — including the super-node defragmentation step of
Section 2.2.

Run:  python examples/tree_divide_and_conquer.py
"""

from repro.analysis.tables import render_table
from repro.core import bottleneck_min, partition_tree
from repro.graphs.tree import Tree


def conquer_tree(depth: int) -> Tree:
    """Complete binary tree; node weight doubles per level up (merge
    cost), edge weight = size of the partial result passed upward."""
    n = 2 ** (depth + 1) - 1
    weights = []
    for v in range(n):
        level = v.bit_length() if v else 0  # 0 at root
        import math

        level = int(math.floor(math.log2(v + 1)))
        weights.append(float(2 ** (depth - level)))
    edges = [((v - 1) // 2, v) for v in range(1, n)]
    edge_weights = [weights[v] for v in range(1, n)]  # child result size
    return Tree(weights, edges, edge_weights)


def main() -> None:
    depth = 7
    tree = conquer_tree(depth)
    print(f"conquer tree: depth {depth}, {tree.num_vertices} nodes, "
          f"total work {tree.total_vertex_weight():g}\n")

    rows = []
    w_max = tree.max_vertex_weight()
    for ratio in (1.0, 1.5, 2.5, 4.0, 8.0):
        bound = ratio * w_max
        raw = bottleneck_min(tree, bound)
        plan = partition_tree(tree, bound)
        rows.append([
            round(bound, 1),
            round(plan.bottleneck, 1),
            raw.num_components,
            plan.num_processors,
            round(max(tree.component_weights(plan.final_cut)), 1),
        ])
    print(render_table(
        ["K", "bottleneck", "raw components", "processors (after 2.2)",
         "max component"],
        rows,
        "Bottleneck -> processor-minimization pipeline vs bound K",
    ))
    print("\nAs K grows the optimal bottleneck falls and Section 2.2's")
    print("super-node pass merges the fragments the greedy bottleneck cut")
    print("left behind — fewer processors at the same bottleneck value.")


if __name__ == "__main__":
    main()
