#!/usr/bin/env python3
"""Head-to-head comparison of all bandwidth-minimization algorithms.

Reproduces the Section-2.3.2 comparison on growing instances: the
paper's O(n + p log q) algorithm, the Nicol & O'Hallaron-style
O(n log n) baseline, the naive recurrence, the modern O(n) deque and
(at small n) the quadratic DP oracle.  All must agree on the optimum;
the table shows wall time and the instance statistics (p, q, p log q)
driving the paper's complexity argument.

Run:  python examples/algorithm_comparison.py
"""

import time

from repro.analysis.tables import render_table
from repro.baselines import (
    bandwidth_min_deque,
    bandwidth_min_dp,
    bandwidth_min_nlogn,
)
from repro.core import bandwidth_min, bandwidth_min_naive, bandwidth_stats
from repro.graphs.generators import bound_for_ratio, figure2_chain
from repro.instrumentation.rng import spawn_rng

ALGORITHMS = {
    "paper O(n+p log q)": bandwidth_min,
    "nicol O(n log n)": bandwidth_min_nlogn,
    "deque O(n)": bandwidth_min_deque,
    "naive recurrence": bandwidth_min_naive,
    "dp O(n^2)": bandwidth_min_dp,
}
QUADRATIC_LIMIT = 4000  # skip the DP beyond this size


def main() -> None:
    ratio = 4.0
    rows = []
    for n in (1000, 4000, 16000, 64000):
        rng = spawn_rng(0, "compare", n)
        chain = figure2_chain(n, 100.0, rng)
        bound = bound_for_ratio(chain, ratio)
        stats = bandwidth_stats(chain, bound)
        row = [n, stats.p, round(stats.q, 1), round(stats.p_log_q, 0)]
        optima = []
        for name, algo in ALGORITHMS.items():
            if name.startswith("dp") and n > QUADRATIC_LIMIT:
                row.append("-")
                continue
            start = time.perf_counter()
            result = algo(chain, bound)
            elapsed = time.perf_counter() - start
            optima.append(round(result.weight, 6))
            row.append(f"{1000 * elapsed:.1f}ms")
        assert len(set(optima)) == 1, f"algorithms disagree at n={n}"
        rows.append(row)

    headers = ["n", "p", "q", "p log q"] + list(ALGORITHMS)
    print(render_table(headers, rows,
                       f"Bandwidth minimization, K = {ratio} * w_max "
                       "(all algorithms agree on the optimum)"))
    print("\nNote: absolute times are machine-specific; the shape claim is")
    print("that the paper algorithm tracks the O(n log n) baseline and both")
    print("dominate the quadratic DP, while the naive recurrence degrades")
    print("as q grows (try a larger K ratio).")


if __name__ == "__main__":
    main()
