#!/usr/bin/env python3
"""PDE strip decomposition with a refinement hotspot (Section 1).

The paper's Section 1 motivates linear task graphs with PDE solvers
that "decompose the problem into strips of grid points of simple
iterative calculations where each strip needs data from neighbouring
strips".  Uniform strips are trivial to place; *adaptively refined*
grids are not: a hotspot multiplies the work of nearby strips.  This
example shows how the paper's algorithms handle it:

1. generate strips with a 4x refinement bump,
2. sweep the processor budget and report the tightest achievable
   iteration bound (the inverse problem) and its communication price,
3. inject a slowdown on the hotspot's processor and watch the executor
   move the bottleneck.

Run:  python examples/pde_hotspot.py
"""

import random

from repro.analysis.tables import render_table
from repro.core import bandwidth_min
from repro.core.inverse import partition_chain_for_processors
from repro.graphs.workloads import pde_strip_chain
from repro.machine import SharedBus, SharedMemoryMachine, simulate_pipeline


def main() -> None:
    chain = pde_strip_chain(
        64, grid_rows=40, rng=random.Random(3), hotspot=0.35
    )
    print(f"adaptive PDE grid: {chain.num_tasks} strips, total work "
          f"{chain.total_weight():.0f}, heaviest strip "
          f"{chain.max_vertex_weight():.0f} (refinement hotspot at 35%)\n")

    rows = []
    for budget in (2, 4, 8, 16, 32):
        plan = partition_chain_for_processors(chain, budget)
        rows.append([
            budget,
            round(plan.bound, 1),
            plan.num_components,
            round(plan.bandwidth_cut.weight, 1),
        ])
    print(render_table(
        ["processor budget", "best bound K", "blocks used",
         "comm volume"],
        rows,
        "Inverse problem: tightest iteration bound per budget",
    ))

    # Partition for 8 processors and execute 50 iterations.
    plan = partition_chain_for_processors(chain, 8)
    cut = bandwidth_min(chain, plan.bound)
    machine = SharedMemoryMachine(32, interconnect=SharedBus(bandwidth=30.0))
    healthy = simulate_pipeline(chain, cut.cut_indices, machine, 50)
    k = cut.num_components
    hotspot_stage = max(
        range(k),
        key=lambda s: healthy.stage_compute_times[s],
    )
    factors = [1.0] * k
    factors[hotspot_stage] = 0.5  # the hotspot's processor degrades
    degraded = simulate_pipeline(
        chain, cut.cut_indices, machine, 50, stage_speed_factors=factors
    )
    print(f"\nexecution of 50 iterations on {k} stages:")
    print(f"  healthy : makespan {healthy.makespan:7.1f}, bottleneck "
          f"stage {healthy.bottleneck_stage}")
    print(f"  degraded: makespan {degraded.makespan:7.1f} "
          f"(stage {hotspot_stage} at half speed), bottleneck "
          f"stage {degraded.bottleneck_stage}")
    slowdown = degraded.makespan / healthy.makespan
    print(f"  slowdown factor {slowdown:.2f} — the deadline-aware planner "
          "would re-partition with the inverse API above.")


if __name__ == "__main__":
    main()
