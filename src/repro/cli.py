"""Command-line entry points: ``python -m repro <experiment>``.

Each subcommand regenerates one of the paper's evaluation artifacts as
an ASCII table (see DESIGN.md's experiment index):

- ``fig2``      — the Figure-2 sweep (p, q, p log q vs K and n);
- ``fig2w``     — Figure-2 weight-range sweep (vs max module weight);
- ``compare``   — wall-clock comparison of the bandwidth algorithms;
- ``linear``    — the bounded-K/w linear-average-case experiment;
- ``temps``     — the Appendix-B TEMP_S queue-length measurement;
- ``tree``      — bottleneck + processor minimization demo on a tree;
- ``realtime``  — the Section-3 real-time planning demo;
- ``circuit``   — the Section-3 distributed-simulation demo.

Production entry points:

- ``batch``     — solve a JSONL stream of independent ``(chain, bound,
  objective)`` queries through the cached, vectorized
  :class:`repro.engine.PartitionEngine`, optionally fanned across a
  process pool; results come back in input order.
- ``run``       — solve one generated workload under the observability
  tracer and print the per-phase breakdown (spans, op-counts, the
  paper's ``p``/``q``/``p log q``); ``--trace FILE`` exports the spans
  and metrics as JSONL.
- ``report --trace FILE`` — re-render a previously captured trace
  (from ``run --trace`` or ``batch --trace``) without re-running
  anything.
- ``top --trace FILE`` — live dashboard over a streaming trace
  (``batch --stream``): throughput, windowed latency percentiles,
  cache/plan gauges.  ``--once`` prints a single frame.
- ``metrics export --trace FILE`` — Prometheus text-format rendering
  of a trace's instruments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.exitcodes import (
    EXIT_FAILURE,
    EXIT_OK,
    EXIT_USAGE,
    EXIT_VERIFICATION,
)


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.analysis.figure2 import figure2_sweep, headline_claims
    from repro.analysis.tables import render_table

    ns = [int(x) for x in args.n]
    ratios = [float(x) for x in args.ratio]
    points = figure2_sweep(ns, ratios, repetitions=args.reps)
    rows = [
        [p.n, p.ratio, p.p, p.q, p.p_log_q, p.n_log_n,
         p.plogq_over_nlogn, p.mean_prime_length, p.mean_temp_s_len]
        for p in points
    ]
    print(
        render_table(
            ["n", "K/wmax", "p", "q", "p log q", "n log n",
             "ratio", "prime len", "mean |TEMP_S|"],
            rows,
            "Figure 2 — prime-subpath statistics vs K",
        )
    )
    print()
    for n, claim in headline_claims(points).items():
        print(
            f"n={n}: max p log q = {claim['max_p_log_q']:.0f} "
            f"({100 * claim['max_ratio_of_nlogn']:.0f}% of n log n), "
            f"low at extreme K: {claim['low_at_extremes']}"
        )
    return EXIT_OK


def _cmd_fig2w(args: argparse.Namespace) -> int:
    from repro.analysis.figure2 import figure2_weight_sweep
    from repro.analysis.tables import render_table

    points = figure2_weight_sweep(
        args.n, [float(w) for w in args.wmax], ratio=args.k_ratio,
        repetitions=args.reps,
    )
    rows = [
        [p.w_max, p.bound, p.p, p.q, p.p_log_q, p.mean_prime_length]
        for p in points
    ]
    print(
        render_table(
            ["w_max", "K", "p", "q", "p log q", "prime len"],
            rows,
            f"Figure 2 — effect of max module weight (n={args.n})",
        )
    )
    return EXIT_OK


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.analysis.complexity import runtime_comparison
    from repro.analysis.tables import render_table
    from repro.baselines import (
        bandwidth_min_deque,
        bandwidth_min_dp,
        bandwidth_min_nlogn,
    )
    from repro.core import bandwidth_min
    from repro.core.recurrence import bandwidth_min_naive

    algorithms = {
        "paper O(n+p log q)": bandwidth_min,
        "nicol O(n log n)": bandwidth_min_nlogn,
        "deque O(n)": bandwidth_min_deque,
        "naive recurrence": bandwidth_min_naive,
    }
    if args.include_quadratic:
        algorithms["dp O(n^2)"] = bandwidth_min_dp
    ns = [int(x) for x in args.n]
    rows = runtime_comparison(algorithms, ns, ratio=args.k_ratio,
                              repetitions=args.reps)
    headers = ["n"] + list(algorithms) + ["optimum"]
    print(
        render_table(
            headers,
            [[row[h] for h in headers] for row in rows],
            f"Bandwidth minimization wall time (s), K = {args.k_ratio} * wmax",
        )
    )
    return EXIT_OK


def _cmd_linear(args: argparse.Namespace) -> int:
    from repro.analysis.complexity import linear_average_case
    from repro.analysis.tables import render_table

    ns = [int(x) for x in args.n]
    points, linear_fit, nlogn_fit = linear_average_case(
        ns, ratio=args.k_ratio, repetitions=args.reps
    )
    rows = [[p.n, p.operations, p.wall_time, p.p, p.q] for p in points]
    print(
        render_table(
            ["n", "operations", "seconds", "p", "q"],
            rows,
            f"Linear-average-case experiment, K/wmax = {args.k_ratio}",
        )
    )
    print()
    print(f"linear fit : ops ~ {linear_fit.a:.3f} n + {linear_fit.b:.1f} "
          f"(R^2 = {linear_fit.r_squared:.5f})")
    print(f"nlogn fit  : ops ~ {nlogn_fit.a:.3f} n log n + {nlogn_fit.b:.1f} "
          f"(R^2 = {nlogn_fit.r_squared:.5f})")
    return EXIT_OK


def _cmd_temps(args: argparse.Namespace) -> int:
    from repro.analysis.complexity import temp_s_length_experiment
    from repro.analysis.tables import render_table

    points = temp_s_length_experiment(
        [int(x) for x in args.n],
        [float(x) for x in args.ratio],
        repetitions=args.reps,
    )
    rows = [
        [p.n, p.ratio, p.q, p.log2_q, p.mean_temp_s_len, p.max_temp_s_len]
        for p in points
    ]
    print(
        render_table(
            ["n", "K/wmax", "q", "log2 q", "mean |TEMP_S|", "max |TEMP_S|"],
            rows,
            "Appendix B — TEMP_S queue length vs log q",
        )
    )
    return EXIT_OK


def _cmd_tree(args: argparse.Namespace) -> int:
    from repro.core import partition_tree
    from repro.graphs.generators import random_tree

    tree = random_tree(args.n, rng=args.seed, integer_weights=True)
    bound = args.k_ratio * tree.max_vertex_weight()
    plan = partition_tree(tree, bound)
    print(f"tree: n={tree.num_vertices}, total weight {tree.total_vertex_weight():g}")
    print(plan.summary())
    partition = plan.partition()
    print(f"component weights: {[round(w, 1) for w in partition.component_weights]}")
    return EXIT_OK


def _cmd_realtime(args: argparse.Namespace) -> int:
    from repro.graphs.generators import random_chain
    from repro.machine import SharedBus, SharedMemoryMachine
    from repro.realtime import RealTimeTask, build_schedule, plan_realtime_task
    from repro.realtime.planner import compare_objectives

    rng_chain = random_chain(args.n, rng=args.seed,
                             vertex_range=(1, 10), edge_range=(1, 100))
    task = RealTimeTask(
        "demo", rng_chain.alpha, rng_chain.beta,
        deadline=args.k_ratio * max(rng_chain.alpha),
    )
    machine = SharedMemoryMachine(64, interconnect=SharedBus(bandwidth=10.0))
    for plan in compare_objectives(task, machine):
        print(f"[{plan.objective}] {plan.summary()}")
    plan = plan_realtime_task(task, machine)
    schedules = build_schedule(plan, machine)
    print(f"stages: {len(schedules)}, worst slack "
          f"{min(s.slack for s in schedules):.2f}")
    return EXIT_OK


def _cmd_circuit(args: argparse.Namespace) -> int:
    from repro.core import bandwidth_min
    from repro.desim import LogicSimulator, circuit_supergraph, simulate_partitioned
    from repro.desim.netlists import ring_counter

    circuit = ring_counter(args.n)
    profile = LogicSimulator(circuit).run(args.end_time)
    supergraph = circuit_supergraph(circuit, activity=profile.activity())
    bound = args.k_ratio * supergraph.chain.max_vertex_weight()
    cut = bandwidth_min(supergraph.chain, bound)
    assignment = supergraph.assignment_from_cut(cut.cut_indices)
    run = simulate_partitioned(circuit, assignment, args.end_time)
    print(f"circuit: {circuit!r}")
    print(f"partition: {run.num_processors} processors, "
          f"{run.cross_messages} cross / {run.local_messages} local messages, "
          f"imbalance {run.load_imbalance:.2f}")
    return EXIT_OK


def _cmd_ring(args: argparse.Namespace) -> int:
    from repro.core.bandwidth import bandwidth_min
    from repro.core.ring import ring_bandwidth_min
    from repro.graphs.ring import Ring
    from repro.instrumentation.rng import spawn_rng

    rng = spawn_rng(args.seed, "ring", args.n)
    alpha = [rng.uniform(1, 10) for _ in range(args.n)]
    beta = [rng.uniform(1, 100) for _ in range(args.n)]
    ring = Ring(alpha, beta)
    bound = args.k_ratio * ring.max_vertex_weight()
    exact = ring_bandwidth_min(ring, bound)
    # Heuristic: break at the lightest edge first, then solve the chain.
    lightest = min(range(ring.num_edges), key=lambda i: ring.beta[i])
    chain = ring.open_at(lightest)
    heuristic_weight = ring.edge_weight(lightest) + bandwidth_min(
        chain, bound
    ).weight
    print(f"ring: n={ring.num_tasks}, K={bound:.1f}")
    print(f"exact circular partition : weight {exact.weight:.2f} "
          f"({len(exact.cut_indices)} cuts, "
          f"{exact.candidates_tried} candidates tried)")
    print(f"break-lightest heuristic : weight {heuristic_weight:.2f}")
    gap = heuristic_weight / exact.weight if exact.weight else 1.0
    print(f"heuristic/exact ratio    : {gap:.4f}")
    return EXIT_OK


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.core.inverse import tree_pareto_frontier
    from repro.graphs.generators import random_tree

    tree = random_tree(args.n, rng=args.seed, integer_weights=True)
    rows = tree_pareto_frontier(tree, args.max_processors)
    print(
        render_table(
            ["processors", "best bound K", "components", "bottleneck",
             "bandwidth"],
            [[r["processors"], r["bound"], r["components"], r["bottleneck"],
              r["bandwidth"]] for r in rows],
            f"Processor/bound Pareto frontier (tree n={args.n}, "
            f"total {tree.total_vertex_weight():g})",
        )
    )
    return EXIT_OK


def _cmd_sync(args: argparse.Namespace) -> int:
    from repro.analysis.tables import render_table
    from repro.core.bandwidth import bandwidth_min
    from repro.desim import (
        LogicSimulator,
        ParallelLogicSimulator,
        TimeWarpSimulator,
        circuit_supergraph,
    )
    from repro.desim.netlists import ring_counter

    circuit = ring_counter(args.n)
    profile = LogicSimulator(circuit).run(args.end_time)
    supergraph = circuit_supergraph(circuit, activity=profile.activity())
    cut = bandwidth_min(
        supergraph.chain, args.k_ratio * supergraph.chain.max_vertex_weight()
    )
    k = cut.num_components
    placements = {
        "algorithm 4.1": supergraph.assignment_from_cut(cut.cut_indices),
        "round robin": [g % k for g in range(circuit.num_gates)],
    }
    rows = []
    for name, assignment in placements.items():
        conservative = ParallelLogicSimulator(circuit, assignment).run(
            args.end_time
        )
        optimistic = TimeWarpSimulator(circuit, assignment).run(args.end_time)
        assert optimistic.final_values == conservative.final_values
        rows.append([
            name,
            conservative.cross_messages,
            conservative.windows,
            optimistic.rollbacks,
            optimistic.events_rolled_back,
            f"{100 * optimistic.wasted_fraction:.1f}%",
            optimistic.anti_messages,
        ])
    print(render_table(
        ["placement", "cross msgs", "cons. windows", "TW rollbacks",
         "TW rolled-back", "TW wasted", "TW anti-msgs"],
        rows,
        f"Synchronization cost on {k} LPs (identical committed results)",
    ))
    return EXIT_OK


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.trace_report import render_trace_report
    from repro.core.bandwidth import bandwidth_min
    from repro.graphs.generators import random_chain
    from repro.observability import Tracer, trace_records, write_trace

    if args.verify:
        from repro.verify.runtime import enable_verification

        enable_verification()
    chain = random_chain(args.n, rng=args.seed)
    bound = args.k_ratio * chain.max_vertex_weight()
    tracer = Tracer()
    sampler = None
    if args.profile:
        from repro.observability import ProfileSampler

        sampler = ProfileSampler()
        sampler.start()
    try:
        result = bandwidth_min(
            chain, bound, backend=args.backend, search=args.search,
            tracer=tracer,
        )
    finally:
        if sampler is not None:
            sampler.stop()
    if args.verify:
        from repro.verify import VerificationError
        from repro.verify.runtime import verify_cache_solve

        try:
            verify_cache_solve(chain, bound, result)
        except VerificationError as exc:
            print(f"verification FAILED:\n{exc}", file=sys.stderr)
            return EXIT_VERIFICATION
        print("verification: certificate + backend cross-check OK")
    if args.baseline:
        from repro.baselines.nicol import bandwidth_min_nlogn

        baseline = bandwidth_min_nlogn(chain, bound, tracer=tracer)
        assert baseline.weight == result.weight
    meta = {
        "workload": "random_chain",
        "n": args.n,
        "k_ratio": args.k_ratio,
        "seed": args.seed,
        "backend": args.backend,
        "search": args.search,
    }
    print(
        f"bandwidth_min: n={args.n}, K={bound:.2f} -> "
        f"weight {result.weight:.4f}, {result.num_components} components"
    )
    print()
    print(render_trace_report(trace_records(tracer, meta=meta)))
    if args.trace:
        count = write_trace(args.trace, tracer=tracer, meta=meta)
        print(f"\nwrote {count} trace records to {args.trace}", file=sys.stderr)
    if sampler is not None:
        stacks = sampler.write_collapsed(args.profile)
        print(
            f"wrote {stacks} collapsed stacks ({sampler.samples} samples) "
            f"to {args.profile}",
            file=sys.stderr,
        )
    return EXIT_OK


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.engine import PartitionEngine

    if args.verify:
        # Sets REPRO_VERIFY=1 for this process; process-pool workers
        # inherit it, so every query self-certifies in the worker that
        # solved it and failures land in per-query 'error' fields.
        from repro.verify.runtime import enable_verification

        enable_verification()
    hub = sink = None
    if args.stream:
        from repro.observability import StreamingJsonlSink, TelemetryHub

        try:
            sink = StreamingJsonlSink(
                args.stream,
                meta={"workload": "batch", "input": args.input},
            )
        except OSError as exc:
            print(f"batch: cannot stream to {args.stream}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
        hub = TelemetryHub([sink])
    if args.trace:
        from repro.observability import Tracer

        engine = PartitionEngine(backend=args.backend, tracer=Tracer(),
                                 hub=hub)
    else:
        engine = PartitionEngine(backend=args.backend, hub=hub)
    try:
        if args.input == "-":
            lines = sys.stdin.readlines()
        else:
            with open(args.input, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
    except OSError as exc:
        print(f"batch: cannot read {args.input}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    # --sweep forces serial dispatch so same-fingerprint bandwidth
    # queries are answered through one compiled-plan sweep per chain
    # (the pool would re-pickle each query into a worker instead).
    workers = 0 if args.sweep else args.workers
    try:
        results = engine.solve_jsonl(
            lines, max_workers=workers, chunksize=args.chunksize
        )
    except ValueError as exc:
        print(f"batch: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if hub is not None and sink is not None:
            hub.close()
            print(
                f"batch: streamed {sink.lines_written} events to "
                f"{args.stream}",
                file=sys.stderr,
            )
    payload = "\n".join(r.to_json() for r in results)
    if args.output == "-":
        if payload:
            print(payload)
    else:
        with open(args.output, "w", encoding="utf-8") as handle:
            if payload:
                handle.write(payload + "\n")
    if args.trace:
        from repro.observability import write_trace

        batch = engine.last_batch_stats
        count = write_trace(
            args.trace,
            tracer=engine.tracer,
            metrics=engine.snapshot_metrics(),
            meta={"workload": "batch", "input": args.input,
                  "batch": batch.as_dict() if batch else None},
            extra_spans=batch.trace_records if batch else None,
        )
        print(f"batch: wrote {count} trace records to {args.trace}",
              file=sys.stderr)
    failed = sum(1 for r in results if not r.ok)
    if failed:
        print(
            f"batch: {failed}/{len(results)} queries failed "
            "(see 'error' fields)",
            file=sys.stderr,
        )
    return EXIT_OK if not failed else EXIT_FAILURE


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trace:
        from repro.analysis.trace_report import render_trace_report
        from repro.observability import read_trace

        try:
            records = read_trace(args.trace)
        except OSError as exc:
            print(f"report: cannot read {args.trace}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ValueError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return EXIT_USAGE
        print(render_trace_report(records))
        return EXIT_OK
    from repro.analysis.report import render_report, run_report

    claims = run_report(quick=not args.full)
    print(render_report(claims))
    return EXIT_OK if all(c.passed for c in claims) else EXIT_FAILURE


def _cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a streaming trace (or one frame with --once)."""
    import json
    import time

    from repro.analysis.top import (
        DashboardState,
        follow_trace,
        render_dashboard,
    )

    state = DashboardState(window_s=args.window)
    if args.once:
        from repro.observability import read_trace

        try:
            records = read_trace(args.trace)
        except OSError as exc:
            print(f"top: cannot read {args.trace}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ValueError as exc:
            print(f"top: {exc}", file=sys.stderr)
            return EXIT_USAGE
        state.ingest_all(records)
        print(render_dashboard(state))
        return EXIT_OK
    try:
        handle = open(args.trace, "r", encoding="utf-8")
    except OSError as exc:
        print(f"top: cannot read {args.trace}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    next_draw = 0.0
    try:
        with handle:
            for line in follow_trace(
                handle,
                poll_s=min(args.interval, 0.5),
                idle_limit=args.idle_limit,
            ):
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    state.ingest(record)
                now = time.monotonic()
                if now >= next_draw:
                    # ANSI clear + home, then the fresh frame.
                    print("\x1b[2J\x1b[H" + render_dashboard(state),
                          flush=True)
                    next_draw = now + args.interval
    except KeyboardInterrupt:
        pass
    print(render_dashboard(state))
    return EXIT_OK


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Render a trace's instruments in Prometheus text format."""
    from repro.observability import (
        MetricsRegistry,
        event_records,
        metric_records,
        read_trace,
        render_prometheus_records,
    )

    try:
        records = read_trace(args.trace)
    except OSError as exc:
        print(f"metrics: cannot read {args.trace}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"metrics: {exc}", file=sys.stderr)
        return EXIT_USAGE
    # Post-hoc traces carry rendered "metric" records; streamed traces
    # carry per-observation metric *events*.  Fold the events back into
    # instruments and render both, preferring the post-hoc record when
    # a name appears in each.
    registry = MetricsRegistry()
    for event in event_records(records):
        if event.get("event") != "metric":
            continue
        name, value = event.get("name"), event.get("value")
        if not isinstance(name, str) or not isinstance(value, (int, float)):
            continue
        if event.get("metric") == "observe":
            registry.histogram(name).observe(float(value))
        elif event.get("metric") == "inc":
            registry.counter(name).inc(float(value))
        elif event.get("metric") == "set":
            registry.gauge(name).set(float(value))
    rendered = metric_records(records)
    seen = {record["name"] for record in rendered}
    rendered += [r for r in registry.records() if r["name"] not in seen]
    if not rendered:
        print(f"metrics: no metric records in {args.trace}", file=sys.stderr)
        return EXIT_FAILURE
    sys.stdout.write(render_prometheus_records(rendered))
    return EXIT_OK


def _cmd_fig2plot(args: argparse.Namespace) -> int:
    from repro.analysis.ascii_plot import ascii_plot
    from repro.analysis.figure2 import figure2_sweep

    ns = [int(x) for x in args.n]
    ratios = [float(x) for x in args.ratio]
    points = figure2_sweep(ns, ratios, repetitions=args.reps)
    series = {}
    for n in ns:
        series[f"p log q (n={n})"] = [
            (p.ratio, max(p.p_log_q, 0.1)) for p in points if p.n == n
        ]
        series[f"n log n (n={n})"] = [
            (p.ratio, p.n_log_n) for p in points if p.n == n
        ]
    print(
        ascii_plot(
            series,
            log_x=True,
            log_y=True,
            title="Figure 2: p log q vs n log n over K/wmax (log-log)",
        )
    )
    return EXIT_OK


def _cmd_analyze(args: argparse.Namespace) -> int:
    """Static + empirical analyzer gate (contracts, flow, concurrency,
    hotpath, faults; ``--all`` adds the empirical complexity gate)."""
    import json
    from pathlib import Path

    from repro.verify.concurrency import check_concurrency
    from repro.verify.contracts import check_contracts
    from repro.verify.faultflow import check_faultflow
    from repro.verify.flow import check_flow
    from repro.verify.hotpath import check_hotpath

    if args.paths:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            for p in missing:
                print(f"analyze: no such path: {p}", file=sys.stderr)
            return EXIT_USAGE
    else:
        import repro

        paths = [Path(repro.__file__).resolve().parent]

    # No explicit selection runs the static passes; --complexity adds
    # (or, alone, restricts to) the empirical gate; --all merges every
    # pass into one report so CI runs one step instead of three.
    explicit_static = (
        args.contracts or args.flow or args.concurrency or args.hotpath
        or args.faults
    )
    run_all_static = args.all or not (explicit_static or args.complexity)
    run_contracts = args.contracts or run_all_static
    run_flow = args.flow or run_all_static
    run_concurrency = args.concurrency or run_all_static
    run_hotpath = args.hotpath or run_all_static
    run_faults = args.faults or run_all_static
    run_complexity = args.complexity or args.all
    # Schema version of the --json payload; bump on breaking changes so
    # downstream tooling (CI gates, dashboards) can evolve safely.
    report: dict = {"version": 1}
    findings = []
    try:
        if run_contracts:
            contract_findings, checked = check_contracts(paths)
            findings.extend(contract_findings)
            report["contracts"] = {
                "files": checked,
                "findings": [f.render() for f in contract_findings],
            }
        if run_flow:
            flow_findings, checked = check_flow(paths)
            findings.extend(flow_findings)
            report["flow"] = {
                "files": checked,
                "findings": [f.render() for f in flow_findings],
            }
        if run_concurrency:
            conc_findings, checked = check_concurrency(paths)
            findings.extend(conc_findings)
            report["concurrency"] = {
                "files": checked,
                "findings": [f.render() for f in conc_findings],
            }
        if run_hotpath:
            hot_findings, checked = check_hotpath(paths)
            findings.extend(hot_findings)
            report["hotpath"] = {
                "files": checked,
                "findings": [f.render() for f in hot_findings],
            }
        if run_faults:
            fault_findings, checked = check_faultflow(paths)
            findings.extend(fault_findings)
            report["faults"] = {
                "files": checked,
                "findings": [f.render() for f in fault_findings],
            }
    except SyntaxError as exc:
        print(
            f"analyze: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    gate = None
    if run_complexity:
        from repro.verify.empirical import run_complexity_gate

        gate = run_complexity_gate(
            scales=[int(s) for s in args.scales.split(",")],
            reps=args.reps,
            tolerance=args.tol,
            seed=args.seed,
        )
        report["complexity"] = gate.as_dict()

    failed = bool(findings) or (gate is not None and not gate.passed)
    report["passed"] = not failed
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if gate is not None:
            print(gate.render())
        if not failed:
            parts = [
                k
                for k in (
                    "contracts",
                    "flow",
                    "concurrency",
                    "hotpath",
                    "faults",
                    "complexity",
                )
                if k in report
            ]
            print(f"analyze: clean ({', '.join(parts)})", file=sys.stderr)
    return EXIT_FAILURE if failed else EXIT_OK


def _cmd_mutate(args: argparse.Namespace) -> int:
    """Mutation-analysis gate: seed solver bugs, demand the stack kills them."""
    import json
    from pathlib import Path

    from repro.verify.mutate import (
        MutationSetupError,
        UnknownModuleError,
        compare_to_baseline,
        render_report,
        run_mutation_analysis,
    )

    baseline = None
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, ValueError) as exc:
            print(f"mutate: cannot read baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE

    progress = None if args.quiet else (
        lambda message: print(message, file=sys.stderr)
    )
    try:
        report = run_mutation_analysis(
            modules=args.modules,
            budget=args.budget,
            seed=args.seed,
            progress=progress,
        )
    except UnknownModuleError as exc:
        print(f"mutate: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except MutationSetupError as exc:
        print(f"mutate: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if baseline is not None:
        regressions = compare_to_baseline(report, baseline)
        if regressions:
            report["failures"].extend(regressions)
            report["passed"] = False

    if args.json:
        print(json.dumps(report, indent=2))
        for failure in report["failures"]:
            print(f"mutate: FAIL: {failure}", file=sys.stderr)
    else:
        print(render_report(report))
    return EXIT_OK if report["passed"] else EXIT_FAILURE


def _cmd_ratchet(args: argparse.Namespace) -> int:
    """Benchmark-ratchet gate: fresh speedups must hold the baseline."""
    import json

    from repro.analysis.ratchet import compare_snapshots, render_comparison

    snapshots = []
    for label, path in (("baseline", args.baseline), ("fresh", args.fresh)):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                snapshots.append(json.load(handle))
        except OSError as exc:
            print(f"ratchet: cannot read {label} {path}: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ValueError as exc:
            print(f"ratchet: invalid JSON in {path}: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        rows, failures = compare_snapshots(
            snapshots[0], snapshots[1], tolerance=args.tolerance
        )
    except ValueError as exc:
        print(f"ratchet: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(
            json.dumps(
                {"rows": rows, "failures": failures, "passed": not failures},
                indent=2,
            )
        )
    else:
        print(render_comparison(rows, failures))
    return EXIT_FAILURE if failures else EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Ray & Jiang (ICDCS 1994) — experiment CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig2", help="Figure-2 sweep")
    p.add_argument("--n", nargs="+", default=["1000", "4000"])
    p.add_argument("--ratio", nargs="+",
                   default=["1.2", "2", "4", "8", "16", "40", "100", "300"])
    p.add_argument("--reps", type=int, default=3)
    p.set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig2w", help="Figure-2 weight-range sweep")
    p.add_argument("--n", type=int, default=2000)
    p.add_argument("--wmax", nargs="+", default=["2", "5", "10", "30", "100", "300"])
    p.add_argument("--k-ratio", type=float, default=4.0)
    p.add_argument("--reps", type=int, default=3)
    p.set_defaults(func=_cmd_fig2w)

    p = sub.add_parser("compare", help="algorithm wall-time comparison")
    p.add_argument("--n", nargs="+", default=["1000", "10000", "100000"])
    p.add_argument("--k-ratio", type=float, default=4.0)
    p.add_argument("--reps", type=int, default=3)
    p.add_argument("--include-quadratic", action="store_true")
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("linear", help="linear-average-case experiment")
    p.add_argument("--n", nargs="+",
                   default=["2000", "4000", "8000", "16000", "32000"])
    p.add_argument("--k-ratio", type=float, default=3.0)
    p.add_argument("--reps", type=int, default=3)
    p.set_defaults(func=_cmd_linear)

    p = sub.add_parser("temps", help="Appendix-B TEMP_S length experiment")
    p.add_argument("--n", nargs="+", default=["4000"])
    p.add_argument("--ratio", nargs="+",
                   default=["2", "8", "32", "128", "512"])
    p.add_argument("--reps", type=int, default=3)
    p.set_defaults(func=_cmd_temps)

    p = sub.add_parser("tree", help="tree partitioning demo")
    p.add_argument("--n", type=int, default=200)
    p.add_argument("--k-ratio", type=float, default=5.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_tree)

    p = sub.add_parser("realtime", help="real-time planning demo (Section 3)")
    p.add_argument("--n", type=int, default=100)
    p.add_argument("--k-ratio", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_realtime)

    p = sub.add_parser("circuit", help="distributed simulation demo (Section 3)")
    p.add_argument("--n", type=int, default=64)
    p.add_argument("--k-ratio", type=float, default=8.0)
    p.add_argument("--end-time", type=float, default=2000.0)
    p.set_defaults(func=_cmd_circuit)

    p = sub.add_parser("ring", help="circular task graph partitioning")
    p.add_argument("--n", type=int, default=500)
    p.add_argument("--k-ratio", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_ring)

    p = sub.add_parser("pareto", help="processor/bound trade-off for a tree")
    p.add_argument("--n", type=int, default=120)
    p.add_argument("--max-processors", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser(
        "sync", help="conservative vs Time Warp synchronization comparison"
    )
    p.add_argument("--n", type=int, default=64)
    p.add_argument("--k-ratio", type=float, default=6.0)
    p.add_argument("--end-time", type=float, default=1500.0)
    p.set_defaults(func=_cmd_sync)

    p = sub.add_parser(
        "run",
        help="solve one traced workload and print the per-phase breakdown",
        description=(
            "Generate a random chain, solve it with Algorithm 4.1 under "
            "the observability tracer, and print the per-phase span "
            "breakdown (wall-clock, search steps, TEMP_S lengths, p/q/"
            "p log q).  --trace exports the spans as JSONL for later "
            "'repro report --trace' inspection."
        ),
    )
    p.add_argument("--n", type=int, default=1000)
    p.add_argument("--k-ratio", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", choices=["python", "numpy"], default="python")
    p.add_argument("--search", choices=["binary", "linear"], default="binary")
    p.add_argument("--baseline", action="store_true",
                   help="also run the traced Nicol O(n log n) baseline")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write span/metric records to FILE as JSONL")
    p.add_argument("--verify", action="store_true",
                   help="self-certify the solve (REPRO_VERIFY=1): check "
                        "the paper-invariant certificate and cross-check "
                        "against the pure-Python reference")
    p.add_argument("--profile", default=None, metavar="FILE",
                   help="sample thread stacks during the solve and write "
                        "collapsed-stack flamegraph input to FILE")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "batch",
        help="solve a JSONL stream of partitioning queries via the engine",
        description=(
            "Each input line is a JSON object with 'alpha' (list), 'beta' "
            "(list, optional for n=1), 'bound' (number) and optional "
            "'objective' (default 'bandwidth') and 'tag'.  One JSON result "
            "per line is emitted in input order; infeasible queries carry "
            "an 'error' field instead of failing the batch."
        ),
    )
    p.add_argument("--input", default="-", help="query JSONL file, '-' = stdin")
    p.add_argument("--output", default="-", help="result JSONL file, '-' = stdout")
    p.add_argument("--workers", type=int, default=0,
                   help="process-pool width; 0 = serial in-process (default)")
    p.add_argument("--chunksize", type=int, default=None,
                   help="queries pickled per pool task (default: balanced)")
    p.add_argument("--sweep", action="store_true",
                   help="answer same-chain bandwidth queries through one "
                        "compiled-plan sweep per chain (forces serial "
                        "dispatch; plan routing is bypassed under --trace, "
                        "which needs per-query spans)")
    p.add_argument("--backend", choices=["numpy", "python"], default=None,
                   help="kernel backend (default: numpy when available)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="trace the batch and write span/metric JSONL to FILE")
    p.add_argument("--verify", action="store_true",
                   help="self-certify every query (sets REPRO_VERIFY=1; "
                        "failures land in per-query 'error' fields)")
    p.add_argument("--stream", default=None, metavar="FILE",
                   help="stream schema-v2 telemetry events to FILE as the "
                        "batch runs (watch live with 'repro top --trace')")
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "report",
        help="run every experiment and print PASS/FAIL verdicts, or "
             "render a trace file",
    )
    p.add_argument("--full", action="store_true",
                   help="larger instances (slower, closer to EXPERIMENTS.md)")
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="render the per-phase breakdown of a trace JSONL "
                        "instead of running experiments")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "top",
        help="live dashboard over a streaming trace file",
        description=(
            "Follow a (possibly still-growing) schema-v2 trace JSONL and "
            "render throughput, windowed latency percentiles, cache hit "
            "ratio, plan-cache occupancy and the optimality-gap gauge.  "
            "--once reads the file once and prints a single frame; the "
            "windowed percentiles use the same nearest-rank definition "
            "as 'repro report --trace', so the two agree on a finished "
            "run."
        ),
    )
    p.add_argument("--trace", required=True, metavar="FILE",
                   help="trace JSONL to follow (e.g. from batch --stream)")
    p.add_argument("--once", action="store_true",
                   help="render one frame from the current file and exit")
    p.add_argument("--interval", type=float, default=1.0,
                   help="seconds between redraws when following (default 1)")
    p.add_argument("--window", type=float, default=30.0,
                   help="sliding-window width in seconds (default 30)")
    p.add_argument("--idle-limit", type=float, default=None, metavar="S",
                   help="stop after S seconds without new data "
                        "(default: follow until interrupted)")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "metrics",
        help="export a trace's instruments (Prometheus text format)",
        description=(
            "Render the metric records of a trace JSONL — including "
            "per-observation metric events from a streamed trace — as "
            "Prometheus text exposition format on stdout."
        ),
    )
    p.add_argument("action", choices=["export"],
                   help="'export' renders Prometheus text format")
    p.add_argument("--trace", required=True, metavar="FILE",
                   help="trace JSONL (from run/batch --trace or --stream)")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser("fig2plot", help="ASCII plot of the Figure-2 curves")
    p.add_argument("--n", nargs="+", default=["2000"])
    p.add_argument("--ratio", nargs="+",
                   default=["1.2", "2", "4", "8", "16", "40", "100", "300"])
    p.add_argument("--reps", type=int, default=2)
    p.set_defaults(func=_cmd_fig2plot)

    p = sub.add_parser(
        "analyze",
        help="complexity-contract, concurrency-safety, hot-path and "
        "fault-surface analyzer (REPRO006-REPRO024)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/trees to analyze (default: the installed repro package)",
    )
    p.add_argument(
        "--contracts", action="store_true",
        help="run only the @complexity contract pass (REPRO010/REPRO011)",
    )
    p.add_argument(
        "--flow", action="store_true",
        help="run only the process-pool hygiene pass (REPRO006-REPRO008)",
    )
    p.add_argument(
        "--concurrency", action="store_true",
        help="run only the shared-state concurrency pass (REPRO013-REPRO015)",
    )
    p.add_argument(
        "--hotpath", action="store_true",
        help="run only the hot-path allocation/dispatch pass "
        "(REPRO016-REPRO019)",
    )
    p.add_argument(
        "--faults", action="store_true",
        help="run only the fault-surface pass (REPRO020-REPRO024)",
    )
    p.add_argument(
        "--complexity", action="store_true",
        help="run the empirical complexity gate (REPRO009)",
    )
    p.add_argument(
        "--all", action="store_true",
        help="run every pass (static + empirical complexity gate) in "
        "one merged report",
    )
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.add_argument(
        "--scales", default="512,1024,2048,4096,8192",
        help="comma-separated workload sizes for --complexity",
    )
    p.add_argument("--reps", type=int, default=2,
                   help="instances per scale for --complexity")
    p.add_argument("--tol", type=float, default=0.25,
                   help="allowed excess over the declared growth exponent")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed for --complexity")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "ratchet",
        help="benchmark-ratchet gate: compare a fresh BENCH snapshot "
             "against the committed baseline",
        description=(
            "Compare the speedup fields of a freshly measured benchmark "
            "snapshot (REPRO_BENCH_SNAPSHOT=fresh.json python -m pytest "
            "benchmarks -k engine) against the committed baseline and "
            "exit 1 when any speedup fell more than --tolerance below "
            "its baseline value.  Absolute medians are reported but "
            "never gated — only host-relative ratios ratchet."
        ),
    )
    p.add_argument("baseline", help="committed snapshot (BENCH_engine.json)")
    p.add_argument("fresh", help="freshly measured snapshot")
    p.add_argument("--tolerance", type=float, default=0.20,
                   help="allowed relative drop per speedup (default 0.20)")
    p.add_argument("--json", action="store_true", help="machine-readable report")
    p.set_defaults(func=_cmd_ratchet)

    p = sub.add_parser(
        "mutate",
        help="mutation-analysis gate: prove the verification stack kills "
             "seeded solver bugs",
        description=(
            "Seed semantic faults into the solver modules with domain-aware "
            "AST operators, run each mutant through the layered kill "
            "pipeline (targeted tests -> certificates -> NumPy-vs-python "
            "cross-check -> contract passes) in a fork sandbox, and report "
            "the kill matrix and per-package mutation scores.  Exit 1 when "
            "a score falls below its threshold or regresses against "
            "--baseline."
        ),
    )
    p.add_argument(
        "--modules", nargs="+", default=None, metavar="MOD",
        help="mutation targets (default: the full registry; see "
             "repro.verify.mutate.TARGETS)",
    )
    p.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="cap the total number of mutants via deterministic seeded "
             "sampling (default: all sites)",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="sampling seed (default 0)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report (schema-versioned)")
    p.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="committed earlier --json report; fail if any per-package "
             "score (or the overall score) regressed",
    )
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-mutant progress on stderr")
    p.set_defaults(func=_cmd_mutate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
