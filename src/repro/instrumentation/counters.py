"""Operation counters used to reproduce the paper's cost measurements.

Figure 2 and the Section 2.3.2 discussion reason about *abstract*
operation counts (``p log q`` search steps, TEMP_S queue lengths) rather
than wall-clock time, so the algorithms accept an optional
:class:`OpCounter` and report how much work they actually did.  Counting
is opt-in and costs nothing when disabled (the algorithms check for
``None`` once per phase, not per operation).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List


class OpCounter:
    """A named bag of monotone counters plus optional value traces.

    ``counter.add("comparisons", 3)`` bumps a counter;
    ``counter.trace("temp_s_len", 7)`` appends to a series (used for the
    Appendix-B queue-length measurements).

    Pass ``enabled=False`` (or use the shared :data:`NULL_COUNTER`) to
    get a no-op counter: ``add``/``trace`` return immediately and record
    nothing, so instrumented code can thread one counter object
    unconditionally without taxing production calls.
    """

    __slots__ = ("counts", "traces", "enabled")

    def __init__(self, enabled: bool = True) -> None:
        # Disabled counters get plain empty dicts: nothing ever writes
        # to them (every mutator checks ``enabled``), and a defaultdict
        # would let a stray ``counter.counts[k]`` insert keys into the
        # shared NULL_COUNTER.
        if enabled:
            self.counts: Dict[str, int] = defaultdict(int)
            self.traces: Dict[str, List[float]] = defaultdict(list)
        else:
            self.counts = {}
            self.traces = {}
        self.enabled = enabled

    def add(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        self.counts[name] += amount

    def trace(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.traces[name].append(value)

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def trace_mean(self, name: str) -> float:
        series = self.traces.get(name, [])
        return sum(series) / len(series) if series else 0.0

    def trace_max(self, name: str) -> float:
        series = self.traces.get(name, [])
        return max(series) if series else 0.0

    def merge(self, other: "OpCounter") -> None:
        if not self.enabled:
            # Merging into a disabled counter must be a no-op: NULL_COUNTER
            # is a module-level singleton, and recording into it would
            # leak state across every call site that shares it.
            return
        for name, value in other.counts.items():
            self.counts[name] += value
        for name, series in other.traces.items():
            self.traces[name].extend(series)

    def as_dict(self) -> Dict[str, int]:
        return dict(self.counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpCounter({inner})"


#: Shared disabled counter — safe to pass anywhere an ``OpCounter`` is
#: accepted; every recording call is a no-op.
NULL_COUNTER = OpCounter(enabled=False)


class AlgorithmStats:
    """Structured statistics reported by the bandwidth algorithm.

    Mirrors the quantities of Figure 2:

    - ``n`` — number of tasks;
    - ``p`` — number of prime subpaths;
    - ``r`` — number of non-redundant edges (``r <= min(n - 1, 2p - 1)``);
    - ``q_values`` — per-edge prime-subpath membership counts ``q_i``;
    - ``q`` — their mean (the paper's ``q = sum(q_i) / r``);
    - ``max_temp_s_len`` / ``mean_temp_s_len`` — TEMP_S queue lengths
      (Appendix B);
    - ``search_steps`` — binary-search comparisons performed.
    """

    __slots__ = (
        "n",
        "p",
        "r",
        "q_values",
        "max_temp_s_len",
        "mean_temp_s_len",
        "search_steps",
    )

    def __init__(self, n: int) -> None:
        self.n = n
        self.p = 0
        self.r = 0
        self.q_values: List[int] = []
        self.max_temp_s_len = 0
        self.mean_temp_s_len = 0.0
        self.search_steps = 0

    @property
    def q(self) -> float:
        """Average number of prime subpaths per non-redundant edge."""
        if not self.q_values:
            return 0.0
        return sum(self.q_values) / len(self.q_values)

    @property
    def p_log_q(self) -> float:
        """The paper's cost measure ``p * log2(q)`` (0 when q <= 1)."""
        import math

        q = self.q
        return self.p * math.log2(q) if q > 1.0 else 0.0

    @property
    def n_log_n(self) -> float:
        import math

        return self.n * math.log2(self.n) if self.n > 1 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "p": self.p,
            "r": self.r,
            "q": self.q,
            "p_log_q": self.p_log_q,
            "n_log_n": self.n_log_n,
            "max_temp_s_len": self.max_temp_s_len,
            "mean_temp_s_len": self.mean_temp_s_len,
            "search_steps": self.search_steps,
        }

    def __repr__(self) -> str:
        return (
            f"AlgorithmStats(n={self.n}, p={self.p}, r={self.r}, "
            f"q={self.q:.2f}, p_log_q={self.p_log_q:.1f})"
        )
