"""A tiny wall-clock stopwatch for the runtime-comparison experiments."""

from __future__ import annotations

import time
from typing import Optional


class Stopwatch:
    """Measure elapsed wall-clock seconds with lap support.

    >>> watch = Stopwatch()
    >>> watch.start()  # doctest: +SKIP
    >>> elapsed = watch.stop()  # doctest: +SKIP
    """

    __slots__ = ("_start", "total")

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.total = 0.0

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.total += lap
        return lap

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
