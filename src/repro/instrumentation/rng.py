"""Deterministic RNG spawning for experiments.

Every experiment derives child generators from a master seed so that a
sweep over (n, K, repetition) is reproducible run-to-run, and adding a
new sweep point does not perturb the instances of existing points.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Seedable = Union[int, str]


def spawn_rng(master_seed: int, *labels: Seedable) -> random.Random:
    """Derive an independent ``random.Random`` for a labelled sweep point.

    The child seed is a stable hash of ``(master_seed, *labels)``, so
    ``spawn_rng(7, "fig2", 1000, 0)`` always yields the same stream.
    """
    material = repr((master_seed,) + labels).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
