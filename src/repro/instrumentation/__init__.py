"""Operation counting, timing and RNG helpers for the experiments."""

from repro.instrumentation.counters import NULL_COUNTER, AlgorithmStats, OpCounter
from repro.instrumentation.rng import spawn_rng
from repro.instrumentation.stopwatch import Stopwatch

__all__ = ["AlgorithmStats", "NULL_COUNTER", "OpCounter", "Stopwatch", "spawn_rng"]
