"""Partitioned (distributed) simulation accounting.

Given a gate→processor assignment, replay the deterministic event-driven
simulation and attribute every delivered event to a processor pair.
What comes out is precisely the paper's partitioning objective for this
application: the number of messages crossing processors (which the
bandwidth-minimizing partition should shrink) and the per-processor
evaluation load (which the execution-time bound balances).

A simple analytic cost model converts the tallies into an estimated
parallel runtime: the heaviest processor's evaluation work plus the
serialized cost of cross-processor messages on the shared-memory
interconnect — the same two terms the paper's two conditions bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.desim.circuit import Circuit
from repro.desim.simulator import LogicSimulator, SimulationResult
from repro.machine.machine import SharedMemoryMachine


@dataclass
class DistributedRun:
    """Tallies of one partitioned simulation."""

    __slots__ = (
        "num_processors",
        "local_messages",
        "cross_messages",
        "processor_loads",
        "pair_messages",
        "result",
    )

    num_processors: int
    local_messages: int
    cross_messages: int
    processor_loads: List[float]  # weighted evaluation work
    pair_messages: Dict[Tuple[int, int], int]
    result: SimulationResult

    @property
    def cross_fraction(self) -> float:
        total = self.local_messages + self.cross_messages
        return self.cross_messages / total if total else 0.0

    @property
    def max_load(self) -> float:
        return max(self.processor_loads) if self.processor_loads else 0.0

    @property
    def load_imbalance(self) -> float:
        if not self.processor_loads:
            return 1.0
        mean = sum(self.processor_loads) / len(self.processor_loads)
        return self.max_load / mean if mean else 1.0

    def estimated_parallel_time(
        self,
        machine: SharedMemoryMachine,
        eval_cost: float = 1.0,
        message_volume: float = 1.0,
    ) -> float:
        """Analytic runtime: bottleneck compute + serialized bus traffic."""
        compute = self.max_load * eval_cost / machine.speed
        comm = machine.interconnect.transfer_time(
            self.cross_messages * message_volume
        )
        return compute + comm


def simulate_partitioned(
    circuit: Circuit,
    assignment: Sequence[int],
    end_time: float,
    stimuli: Optional[Sequence[Tuple[float, int, bool]]] = None,
    clock_period: float = 10.0,
) -> DistributedRun:
    """Run the simulation and attribute events to the given partition."""
    if len(assignment) != circuit.num_gates:
        raise ValueError("assignment must cover every gate")
    sim = LogicSimulator(circuit, clock_period=clock_period)
    result = sim.run(end_time, stimuli=stimuli)

    num_processors = max(assignment) + 1 if assignment else 1
    local = 0
    cross = 0
    pair_messages: Dict[Tuple[int, int], int] = {}
    for (src, dst), count in result.deliveries.items():
        p, q = assignment[src], assignment[dst]
        if p == q:
            local += count
        else:
            cross += count
            key = (p, q) if p < q else (q, p)
            pair_messages[key] = pair_messages.get(key, 0) + count

    loads = [0.0] * num_processors
    for gate in circuit.gates:
        loads[assignment[gate.ident]] += (
            result.evaluations[gate.ident] * gate.cost
        )
    return DistributedRun(
        num_processors=num_processors,
        local_messages=local,
        cross_messages=cross,
        processor_loads=loads,
        pair_messages=pair_messages,
        result=result,
    )
