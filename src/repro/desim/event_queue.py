"""A stable binary-heap event queue.

Events pop in timestamp order; ties break by insertion order, which
keeps runs deterministic (a requirement for comparing the sequential and
partitioned simulations message-for-message).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.desim.events import Event


class EventQueue:
    """Priority queue of :class:`~repro.desim.events.Event`."""

    __slots__ = ("_heap", "_seq", "pushed", "popped")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self.pushed = 0
        self.popped = 0

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, (event.time, self._seq, event))
        self._seq += 1
        self.pushed += 1

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        self.popped += 1
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
