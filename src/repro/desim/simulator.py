"""Event-driven gate-level logic simulator.

Classic selective-trace simulation: only gates whose inputs changed are
re-evaluated, and a gate schedules an output event only when its new
value differs from the value it is already driving (last-value
filtering), so activity — not circuit size — determines cost.  D
flip-flops are sampled by an implicit global clock; odd inverter rings
oscillate, which is what makes the "circular type logic circuit" of the
paper's Section 3 generate sustained traffic.

Besides waveforms, the simulator records exactly what the partitioning
study needs: per-gate evaluation counts (load) and per-wire delivered
event counts (message volume).  Those measured activities can be fed
back into :meth:`repro.desim.circuit.Circuit.to_task_graph` to weight
the task graph with real dynamics instead of static estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.desim.circuit import Circuit
from repro.desim.event_queue import EventQueue
from repro.desim.events import Event
from repro.desim.gates import evaluate_gate


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    __slots__ = (
        "end_time",
        "final_values",
        "evaluations",
        "deliveries",
        "events_processed",
    )

    end_time: float
    final_values: List[bool]
    evaluations: List[int]  # per-gate evaluation count
    deliveries: Dict[Tuple[int, int], int]  # (src, dst) -> events delivered
    events_processed: int

    @property
    def total_messages(self) -> int:
        return sum(self.deliveries.values())

    def activity(self) -> List[float]:
        """Per-gate activity factors for task-graph weighting (>= 1 so
        idle gates keep a nominal weight)."""
        return [max(1.0, float(e)) for e in self.evaluations]


class LogicSimulator:
    """Simulate a :class:`~repro.desim.circuit.Circuit`."""

    __slots__ = ("circuit", "clock_period")

    def __init__(self, circuit: Circuit, clock_period: float = 10.0) -> None:
        if clock_period <= 0:
            raise ValueError("clock period must be positive")
        self.circuit = circuit
        self.clock_period = clock_period

    def run(
        self,
        end_time: float,
        stimuli: Optional[Sequence[Tuple[float, int, bool]]] = None,
        initial_values: Optional[Sequence[bool]] = None,
        max_events: int = 2_000_000,
    ) -> SimulationResult:
        """Run until ``end_time`` (exclusive) under the given stimuli.

        ``stimuli`` is a list of ``(time, input_gate_id, value)``.
        Raises ``RuntimeError`` if ``max_events`` is exceeded (runaway
        oscillation guard).
        """
        circuit = self.circuit
        n = circuit.num_gates
        value: List[bool] = (
            list(initial_values) if initial_values is not None else [False] * n
        )
        if len(value) != n:
            raise ValueError("initial_values must cover every gate")
        pending: List[bool] = list(value)  # last value scheduled per gate
        evaluations = [0] * n
        deliveries: Dict[Tuple[int, int], int] = {}
        queue = EventQueue()

        inputs_set = set(circuit.primary_inputs())
        for time, gate_id, v in stimuli or ():
            if gate_id not in inputs_set:
                raise ValueError(f"gate {gate_id} is not a primary input")
            queue.push(Event(time, gate_id, v))

        # Power-on settling: evaluate every combinational gate against the
        # initial values and schedule the changes — this is what kicks
        # self-oscillating circuits (inverter rings, ring counters) alive.
        for gate in circuit.gates:
            if gate.gate_type in ("DFF", "INPUT"):
                continue
            out = evaluate_gate(gate.gate_type, [value[i] for i in gate.inputs])
            evaluations[gate.ident] += 1
            if out != pending[gate.ident]:
                pending[gate.ident] = out
                queue.push(Event(gate.delay, gate.ident, out))

        # Clock events sample every DFF at each tick.
        dffs = circuit.flip_flops()
        tick = self.clock_period
        clock_times: List[float] = []
        t = tick
        while t < end_time:
            clock_times.append(t)
            t += tick
        clock_idx = 0

        processed = 0
        while True:
            next_event = queue.peek_time()
            next_clock = (
                clock_times[clock_idx] if clock_idx < len(clock_times) else None
            )
            if next_event is None and next_clock is None:
                break
            take_clock = next_clock is not None and (
                next_event is None or next_clock <= next_event
            )
            if take_clock:
                now = next_clock
                clock_idx += 1
                for dff in dffs:
                    gate = circuit.gates[dff]
                    sampled = value[gate.inputs[0]] if gate.inputs else False
                    if sampled != pending[dff]:
                        pending[dff] = sampled
                        queue.push(Event(now + gate.delay, dff, sampled))
                    evaluations[dff] += 1
                continue

            event = queue.pop()
            if event.time >= end_time:
                break
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    f"exceeded {max_events} events — runaway oscillation?"
                )
            src = event.source
            if value[src] == event.value:
                continue  # glitch already absorbed
            value[src] = event.value
            for target_id in circuit.fanout[src]:
                key = (src, target_id)
                deliveries[key] = deliveries.get(key, 0) + 1
                target = circuit.gates[target_id]
                if target.gate_type in ("DFF", "INPUT"):
                    continue  # DFFs sample on the clock; inputs are driven
                evaluations[target_id] += 1
                out = evaluate_gate(
                    target.gate_type, [value[i] for i in target.inputs]
                )
                if out != pending[target_id]:
                    pending[target_id] = out
                    queue.push(Event(event.time + target.delay, target_id, out))

        return SimulationResult(
            end_time=end_time,
            final_values=value,
            evaluations=evaluations,
            deliveries=deliveries,
            events_processed=processed,
        )
