"""Optimistic (Time Warp) parallel logic simulation.

Complements the conservative engine (:mod:`repro.desim.parallel`):
where that engine *blocks* at lookahead windows, Time Warp lets every
logical process run ahead optimistically and repairs causality
violations after the fact — the other classic synchronization family
for the distributed simulation study of the paper's Section 3.

Mechanics (Jefferson's scheme, in-process):

* each LP processes its pending events in local order, up to a batch
  quantum per scheduling round (the quantum is what creates genuine
  optimism between LPs);
* every processed event leaves an *undo record*: the state cells it
  changed (values, pending-filter entries, mirrors, counters) and the
  messages it sent;
* a *straggler* (message older than the LP's local virtual time) or an
  *anti-message* rolls the LP back: undo records are unwound in reverse
  order past the straggler, sent messages are cancelled with
  anti-messages (cascading rollbacks recurse immediately since
  everything is in-process);
* when all queues drain below the end time, the surviving state is the
  committed run.

Because rollback restores *all* touched state including the statistics,
the committed outputs (final values, evaluation counts, per-wire
deliveries) are exactly those of the conservative/sequential engines —
asserted by the test suite — while the engine additionally reports the
optimism costs: rolled-back events, rollbacks and anti-messages, which
shrink as the partition keeps traffic local.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.desim.circuit import Circuit
from repro.desim.gates import evaluate_gate

_KIND_TICK = 0
_KIND_SIGNAL = 1

# Undo-log cell identifiers.
_CELL_VALUE = 0
_CELL_PENDING = 1
_CELL_MIRROR = 2
_CELL_EVAL = 3
_CELL_DELIVERY = 4
_CELL_LOCAL = 5
_CELL_CROSS = 6

Entry = Tuple[float, int, int, int, bool]  # (time, kind, source, seq, value)


@dataclass
class TimeWarpResult:  # repro-lint: disable=REPRO002 (field defaults block slots on py39)
    """Committed outputs plus optimism-cost counters."""

    num_lps: int
    end_time: float
    final_values: List[bool]
    evaluations: List[int]
    deliveries: Dict[Tuple[int, int], int]
    cross_messages: int
    local_messages: int
    events_executed: int
    events_rolled_back: int
    rollbacks: int
    anti_messages: int
    fossils_collected: int = 0
    max_live_records: int = 0

    @property
    def total_messages(self) -> int:
        return self.cross_messages + self.local_messages

    @property
    def committed_events(self) -> int:
        return self.events_executed - self.events_rolled_back

    @property
    def wasted_fraction(self) -> float:
        if self.events_executed == 0:
            return 0.0
        return self.events_rolled_back / self.events_executed


class _Record:
    """Undo record of one processed event."""

    __slots__ = ("entry", "undo", "sent")

    def __init__(self, entry: Entry) -> None:
        self.entry = entry
        self.undo: List[Tuple[int, int, object]] = []
        self.sent: List[Tuple[int, Entry]] = []  # (target lp, entry)


class _LP:
    """One logical process: queue, processed log, local clock."""

    __slots__ = ("ident", "pending", "processed", "next_tick", "tick_index")

    def __init__(self, ident: int, clock_period: float) -> None:
        self.ident = ident
        self.pending: List[Entry] = []
        self.processed: List[_Record] = []
        self.next_tick = clock_period
        self.tick_index = 1

    def lvt_key(self) -> Tuple:
        if not self.processed:
            return (-1.0,)
        return self.processed[-1].entry[:4]

    def horizon(self, has_dffs: bool) -> float:
        """Earliest time this LP could still execute (its GVT input)."""
        times = []
        if self.pending:
            times.append(self.pending[0][0])
        if has_dffs:
            times.append(self.next_tick)
        return min(times) if times else float("inf")


class TimeWarpSimulator:
    """Optimistic simulation of a partitioned circuit."""

    __slots__ = ("circuit", "assignment", "num_lps", "clock_period", "batch")

    def __init__(
        self,
        circuit: Circuit,
        assignment: Sequence[int],
        clock_period: float = 10.0,
        batch: int = 8,
    ) -> None:
        if len(assignment) != circuit.num_gates:
            raise ValueError("assignment must cover every gate")
        if clock_period <= 0:
            raise ValueError("clock period must be positive")
        if batch < 1:
            raise ValueError("batch quantum must be at least 1")
        if circuit.num_gates == 0:
            raise ValueError("empty circuit")
        self.circuit = circuit
        self.assignment = [int(a) for a in assignment]
        if min(self.assignment) < 0:
            raise ValueError("LP ids must be non-negative")
        self.num_lps = max(self.assignment) + 1
        self.clock_period = clock_period
        self.batch = batch

    # ------------------------------------------------------------------
    def run(
        self,
        end_time: float,
        stimuli: Optional[Sequence[Tuple[float, int, bool]]] = None,
        max_events: int = 2_000_000,
    ) -> TimeWarpResult:
        circuit = self.circuit
        assignment = self.assignment
        n = circuit.num_gates
        k = self.num_lps

        value = [False] * n
        pending_out = [False] * n
        mirrors: List[Dict[int, bool]] = [dict() for _ in range(k)]
        evaluations = [0] * n
        deliveries: Dict[Tuple[int, int], int] = {}
        counters = {"cross": 0, "local": 0}
        source_seq = [0] * n
        stats = {
            "executed": 0,
            "rolled_back": 0,
            "rollbacks": 0,
            "anti": 0,
        }

        lps = [_LP(lp, self.clock_period) for lp in range(k)]
        reader_lps: List[Tuple[int, ...]] = []
        for g in range(n):
            owner = assignment[g]
            reader_lps.append(
                tuple(sorted({assignment[t] for t in circuit.fanout[g]}
                             - {owner}))
            )

        # ---------------- state mutation with undo logging ------------
        def set_value(record: _Record, gate: int, new: bool) -> None:
            record.undo.append((_CELL_VALUE, gate, value[gate]))
            value[gate] = new

        def set_pending(record: _Record, gate: int, new: bool) -> None:
            record.undo.append((_CELL_PENDING, gate, pending_out[gate]))
            pending_out[gate] = new

        def set_mirror(record: _Record, lp: int, gate: int, new: bool):
            old = mirrors[lp].get(gate, False)
            record.undo.append((_CELL_MIRROR, lp * n + gate, old))
            mirrors[lp][gate] = new

        def bump_eval(record: _Record, gate: int) -> None:
            record.undo.append((_CELL_EVAL, gate, evaluations[gate]))
            evaluations[gate] += 1

        def bump_delivery(record: _Record, src: int, dst: int, cell: int):
            key = (src, dst)
            record.undo.append((_CELL_DELIVERY, src * n + dst,
                                deliveries.get(key, 0)))
            deliveries[key] = deliveries.get(key, 0) + 1
            name = "cross" if cell == _CELL_CROSS else "local"
            record.undo.append((cell, 0, counters[name]))
            counters[name] += 1

        def apply_undo(record: _Record) -> None:
            for cell, index, old in reversed(record.undo):
                if cell == _CELL_VALUE:
                    value[index] = old  # type: ignore[assignment]
                elif cell == _CELL_PENDING:
                    pending_out[index] = old  # type: ignore[assignment]
                elif cell == _CELL_MIRROR:
                    mirrors[index // n][index % n] = old  # type: ignore
                elif cell == _CELL_EVAL:
                    evaluations[index] = old  # type: ignore[assignment]
                elif cell == _CELL_DELIVERY:
                    key = (index // n, index % n)
                    if old == 0:
                        deliveries.pop(key, None)
                    else:
                        deliveries[key] = old  # type: ignore[assignment]
                elif cell == _CELL_LOCAL:
                    counters["local"] = old  # type: ignore[assignment]
                elif cell == _CELL_CROSS:
                    counters["cross"] = old  # type: ignore[assignment]

        # ---------------- messaging and rollback ----------------------
        def send(record: _Record, target_lp: int, entry: Entry) -> None:
            record.sent.append((target_lp, entry))
            deliver(target_lp, entry)

        def deliver(target_lp: int, entry: Entry) -> None:
            lp = lps[target_lp]
            if lp.processed and entry[:4] < lp.lvt_key():
                rollback(target_lp, entry[:4])
            heapq.heappush(lp.pending, entry)

        def cancel(target_lp: int, entry: Entry) -> None:
            """Anti-message: annihilate a previously sent entry."""
            stats["anti"] += 1
            lp = lps[target_lp]
            if lp.processed and entry[:4] <= lp.lvt_key():
                rollback(target_lp, entry[:4])
            # The entry is now unprocessed (or never was); remove it.
            try:
                lp.pending.remove(entry)
                heapq.heapify(lp.pending)
            except ValueError:
                # Already annihilated (duplicate cancel via cascades).
                pass

        def rollback(lp_id: int, to_key: Tuple) -> None:
            """Unwind processed records with key >= to_key."""
            lp = lps[lp_id]
            stats["rollbacks"] += 1
            while lp.processed and lp.processed[-1].entry[:4] >= to_key:
                record = lp.processed.pop()
                stats["rolled_back"] += 1
                apply_undo(record)
                for target_lp, entry in record.sent:
                    if target_lp == lp_id:
                        # Local message: remove from our own queue (it
                        # cannot be processed — its key exceeds ours).
                        try:
                            lp.pending.remove(entry)
                            heapq.heapify(lp.pending)
                        except ValueError:
                            pass
                    else:
                        cancel(target_lp, entry)
                if record.entry[1] == _KIND_TICK:
                    lp.next_tick = record.entry[0]
                    lp.tick_index = int(round(
                        record.entry[0] / self.clock_period
                    ))
                else:
                    # Re-insert the event itself for re-execution.
                    heapq.heappush(lp.pending, record.entry)

        # ---------------- event execution -----------------------------
        def read_input(lp_id: int, gate_id: int) -> bool:
            if assignment[gate_id] == lp_id:
                return value[gate_id]
            return mirrors[lp_id].get(gate_id, False)

        def schedule_change(
            record: _Record, fire_time: float, source: int, val: bool
        ) -> None:
            seq = source_seq[source]
            source_seq[source] += 1
            entry: Entry = (fire_time, _KIND_SIGNAL, source, seq, val)
            send(record, assignment[source], entry)
            for lp in reader_lps[source]:
                send(record, lp, entry)

        def evaluate_target(
            record: _Record, lp_id: int, target_id: int, time: float
        ) -> None:
            gate = circuit.gates[target_id]
            if gate.gate_type in ("DFF", "INPUT"):
                return
            bump_eval(record, target_id)
            out = evaluate_gate(
                gate.gate_type,
                [read_input(lp_id, i) for i in gate.inputs],
            )
            if out != pending_out[target_id]:
                set_pending(record, target_id, out)
                schedule_change(record, time + gate.delay, target_id, out)

        def execute(lp_id: int, entry: Entry) -> None:
            record = _Record(entry)
            time, kind, source, _seq, val = entry
            if kind == _KIND_TICK:
                for dff in dffs_of_lp[lp_id]:
                    gate = circuit.gates[dff]
                    sampled = (
                        read_input(lp_id, gate.inputs[0])
                        if gate.inputs
                        else False
                    )
                    bump_eval(record, dff)
                    if sampled != pending_out[dff]:
                        set_pending(record, dff, sampled)
                        schedule_change(
                            record, time + gate.delay, dff, sampled
                        )
            elif assignment[source] == lp_id:
                if value[source] != val:
                    set_value(record, source, val)
                    for target in circuit.fanout[source]:
                        cell = (
                            _CELL_LOCAL
                            if assignment[target] == lp_id
                            else _CELL_CROSS
                        )
                        bump_delivery(record, source, target, cell)
                        if assignment[target] == lp_id:
                            evaluate_target(record, lp_id, target, time)
            else:
                set_mirror(record, lp_id, source, val)
                for target in circuit.fanout[source]:
                    if assignment[target] == lp_id:
                        evaluate_target(record, lp_id, target, time)
            lps[lp_id].processed.append(record)

        # ---------------- initialization ------------------------------
        dffs_of_lp: List[List[int]] = [[] for _ in range(k)]
        for dff in circuit.flip_flops():
            dffs_of_lp[assignment[dff]].append(dff)

        boot = _Record((-1.0, _KIND_SIGNAL, -1, -1, False))
        inputs_set = set(circuit.primary_inputs())
        per_gate: Dict[int, List[Tuple[float, bool]]] = {}
        for time, gate_id, val in stimuli or ():
            if gate_id not in inputs_set:
                raise ValueError(f"gate {gate_id} is not a primary input")
            per_gate.setdefault(gate_id, []).append((time, val))
        for gate_id, events in per_gate.items():
            events.sort(key=lambda item: item[0])
            current = False
            for time, val in events:
                if val != current:
                    current = val
                    schedule_change(boot, time, gate_id, val)
        for gate in circuit.gates:
            if gate.gate_type in ("DFF", "INPUT"):
                continue
            out = evaluate_gate(
                gate.gate_type, [value[i] for i in gate.inputs]
            )
            evaluations[gate.ident] += 1
            if out != pending_out[gate.ident]:
                pending_out[gate.ident] = out
                schedule_change(boot, gate.delay, gate.ident, out)
        # Boot-time sends are never rolled back (they precede every key).

        # ---------------- main optimistic loop -------------------------
        def next_entry(lp: _LP) -> Optional[Entry]:
            tick_time = lp.next_tick if dffs_of_lp[lp.ident] else None
            head = lp.pending[0] if lp.pending else None
            if tick_time is not None and tick_time < end_time and (
                head is None or tick_time <= head[0]
            ):
                return (tick_time, _KIND_TICK, -1, lp.tick_index, False)
            if head is not None and head[0] < end_time:
                return head
            return None

        fossils = 0
        max_live = 0
        while True:
            progressed = False
            for lp in lps:
                for _ in range(self.batch):
                    entry = next_entry(lp)
                    if entry is None:
                        break
                    progressed = True
                    stats["executed"] += 1
                    if stats["executed"] > max_events:
                        raise RuntimeError(
                            f"exceeded {max_events} events — runaway "
                            "oscillation or thrashing rollback?"
                        )
                    if entry[1] == _KIND_TICK:
                        lp.next_tick += self.clock_period
                        lp.tick_index += 1
                    else:
                        heapq.heappop(lp.pending)
                    execute(lp.ident, entry)
            if not progressed:
                break
            # GVT + fossil collection: no straggler or anti-message can
            # ever target a record strictly below the global minimum of
            # the still-executable horizon, so its undo log is garbage.
            live = sum(len(lp.processed) for lp in lps)
            max_live = max(max_live, live)
            gvt = min(
                lp.horizon(bool(dffs_of_lp[lp.ident])) for lp in lps
            )
            for lp in lps:
                keep = 0
                processed = lp.processed
                while keep < len(processed) and processed[keep].entry[0] < gvt:
                    keep += 1
                if keep:
                    fossils += keep
                    del processed[:keep]

        return TimeWarpResult(
            num_lps=k,
            end_time=end_time,
            final_values=value,
            evaluations=evaluations,
            deliveries=deliveries,
            cross_messages=counters["cross"],
            local_messages=counters["local"],
            events_executed=stats["executed"],
            events_rolled_back=stats["rolled_back"],
            rollbacks=stats["rollbacks"],
            anti_messages=stats["anti"],
            fossils_collected=fossils,
            max_live_records=max_live,
        )
