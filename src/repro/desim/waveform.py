"""Waveform capture and VCD export for the logic simulator.

:class:`WaveformRecorder` re-executes a deterministic simulation with a
tap on every committed signal change of the watched gates, collecting
``(time, value)`` series.  Two renderers:

- :meth:`WaveformRecorder.to_vcd` — a standard Value Change Dump
  document (readable by GTKWave and other waveform viewers);
- :meth:`WaveformRecorder.ascii_waves` — quick terminal traces for
  examples and debugging.

The replay duplicates :class:`~repro.desim.simulator.LogicSimulator`'s
event loop rule-for-rule (the engines are deterministic, and the replay
asserts it converged to the same final values), so recording never
perturbs the simulation under test.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.desim.circuit import Circuit
from repro.desim.event_queue import EventQueue
from repro.desim.events import Event
from repro.desim.gates import evaluate_gate
from repro.desim.simulator import LogicSimulator, SimulationResult


class WaveformRecorder:
    """Record committed signal changes of selected gates during a run."""

    __slots__ = ("circuit", "watch", "changes", "end_time")

    def __init__(
        self, circuit: Circuit, watch: Optional[Sequence[int]] = None
    ) -> None:
        self.circuit = circuit
        if watch is None:
            watch = list(range(circuit.num_gates))
        for g in watch:
            if not 0 <= g < circuit.num_gates:
                raise ValueError(f"cannot watch unknown gate {g}")
        self.watch = list(dict.fromkeys(watch))  # dedupe, keep order
        self.changes: Dict[int, List[Tuple[float, bool]]] = defaultdict(list)
        self.end_time = 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        end_time: float,
        stimuli: Optional[Sequence[Tuple[float, int, bool]]] = None,
        clock_period: float = 10.0,
    ) -> SimulationResult:
        """Run the simulation, recording watched signals.

        Returns the ordinary :class:`SimulationResult`; the recorder's
        ``changes`` afterwards hold the watched waveforms.
        """
        result = LogicSimulator(self.circuit, clock_period=clock_period).run(
            end_time, stimuli=stimuli
        )
        self.changes = defaultdict(list)
        self.end_time = end_time
        self._replay_with_tap(end_time, stimuli, clock_period, result)
        return result

    def _replay_with_tap(
        self,
        end_time: float,
        stimuli: Optional[Sequence[Tuple[float, int, bool]]],
        clock_period: float,
        result: SimulationResult,
    ) -> None:
        circuit = self.circuit
        n = circuit.num_gates
        watch = set(self.watch)
        value = [False] * n
        pending = list(value)
        queue = EventQueue()

        inputs_set = set(circuit.primary_inputs())
        for time, gate_id, v in stimuli or ():
            if gate_id not in inputs_set:
                raise ValueError(f"gate {gate_id} is not a primary input")
            queue.push(Event(time, gate_id, v))
        for gate in circuit.gates:
            if gate.gate_type in ("DFF", "INPUT"):
                continue
            out = evaluate_gate(gate.gate_type, [value[i] for i in gate.inputs])
            if out != pending[gate.ident]:
                pending[gate.ident] = out
                queue.push(Event(gate.delay, gate.ident, out))

        dffs = circuit.flip_flops()
        clock_times: List[float] = []
        t = clock_period
        while t < end_time:
            clock_times.append(t)
            t += clock_period
        clock_idx = 0

        while True:
            next_event = queue.peek_time()
            next_clock = (
                clock_times[clock_idx] if clock_idx < len(clock_times) else None
            )
            if next_event is None and next_clock is None:
                break
            take_clock = next_clock is not None and (
                next_event is None or next_clock <= next_event
            )
            if take_clock:
                now = next_clock
                clock_idx += 1
                for dff in dffs:
                    gate = circuit.gates[dff]
                    sampled = value[gate.inputs[0]] if gate.inputs else False
                    if sampled != pending[dff]:
                        pending[dff] = sampled
                        queue.push(Event(now + gate.delay, dff, sampled))
                continue
            event = queue.pop()
            if event.time >= end_time:
                break
            src = event.source
            if value[src] == event.value:
                continue
            value[src] = event.value
            if src in watch:
                self.changes[src].append((event.time, event.value))
            for target_id in circuit.fanout[src]:
                target = circuit.gates[target_id]
                if target.gate_type in ("DFF", "INPUT"):
                    continue
                out = evaluate_gate(
                    target.gate_type, [value[i] for i in target.inputs]
                )
                if out != pending[target_id]:
                    pending[target_id] = out
                    queue.push(
                        Event(event.time + target.delay, target_id, out)
                    )
        assert value == result.final_values, "replay diverged from the run"

    # ------------------------------------------------------------------
    def to_vcd(self, timescale: str = "1ns", module: str = "repro") -> str:
        """Render the capture as a Value Change Dump document.

        Times are emitted in integer milli-units (time 12.5 → ``#12500``)
        so fractional gate delays survive the integer timestamp format.
        """
        lines = [
            "$date today $end",
            "$version repro logic simulator $end",
            f"$timescale {timescale} $end",
            f"$scope module {module} $end",
        ]
        ids = {}
        for i, gate in enumerate(self.watch):
            code = self._vcd_id(i)
            ids[gate] = code
            name = self.circuit.gates[gate].name or f"g{gate}"
            lines.append(f"$var wire 1 {code} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        lines.append("$dumpvars")
        for gate in self.watch:
            lines.append(f"0{ids[gate]}")
        lines.append("$end")

        merged: List[Tuple[float, int, bool]] = []
        for gate, series in self.changes.items():
            merged.extend((time, gate, v) for time, v in series)
        merged.sort(key=lambda item: (item[0], item[1]))
        current_time: Optional[float] = None
        for time, gate, v in merged:
            if time != current_time:
                lines.append(f"#{int(round(time * 1000))}")
                current_time = time
            lines.append(f"{int(v)}{ids[gate]}")
        lines.append(f"#{int(round(self.end_time * 1000))}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def _vcd_id(index: int) -> str:
        """Printable VCD identifier ('!' .. '~', base-94 bijective)."""
        chars = []
        index += 1
        while index:
            index, rem = divmod(index - 1, 94)
            chars.append(chr(33 + rem))
        return "".join(reversed(chars))

    def ascii_waves(self, width: int = 60) -> str:
        """Terminal rendering: one row per watched gate."""
        if self.end_time <= 0:
            raise ValueError("record a run first")
        label_width = max(
            len(self.circuit.gates[g].name or f"g{g}") for g in self.watch
        )
        rows = []
        for gate in self.watch:
            series = self.changes.get(gate, [])
            cells = []
            current = False
            idx = 0
            for col in range(width):
                t = (col + 0.5) * self.end_time / width
                while idx < len(series) and series[idx][0] <= t:
                    current = series[idx][1]
                    idx += 1
                cells.append("#" if current else "_")
            name = self.circuit.gates[gate].name or f"g{gate}"
            rows.append(f"{name.rjust(label_width)} {''.join(cells)}")
        return "\n".join(rows)
