"""Conservative parallel logic simulation (windowed / YAWNS style).

The paper's Section 3 motivates partitioning by *distributed* discrete
event simulation and cites Misra's survey [10] of conservative
synchronization.  This module implements a conservative engine of the
barrier-window family: with a global lookahead ``λ`` equal to the
smallest gate delay, any event processed in the window
``[t, t + λ)`` can only schedule effects at ``>= t + λ``, so every
logical process (LP = one processor's gates) may safely process its
window in isolation; cross-LP messages are exchanged at the barrier.

Determinism and equivalence
---------------------------

Events are ordered by the partition-invariant key ``(time, kind,
source gate, per-source sequence number)`` (clock ticks first on time
ties, matching :class:`~repro.desim.simulator.LogicSimulator`).  Within
a window, LPs cannot influence one another, so LP-by-LP processing is
equivalent to globally ordered processing — the test suite asserts that
a ``k``-LP run is *identical* (values, evaluation counts, messages) to
the 1-LP run of this engine for every partition.

Remote signal values are tracked per-LP in mirrors updated only by
arriving messages, exactly as a distributed implementation would; the
engine never peeks at another LP's live state.

Cost accounting
---------------

Besides the simulation outputs, the engine records what the Section-3
partitioning question needs: per-window per-LP evaluation work (the
critical path of a synchronous parallel execution), barrier count and
cross-LP message volume, from which
:meth:`ParallelRunResult.estimated_times` builds a simple but explicit
parallel-time model — better partitions shorten both the communication
term and (via load balance) the critical path.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.desim.circuit import Circuit
from repro.desim.gates import evaluate_gate
from repro.machine.machine import SharedMemoryMachine

# Event kinds: clock ticks sort before signal events at equal time.
_KIND_TICK = 0
_KIND_SIGNAL = 1


@dataclass
class ParallelRunResult:  # repro-lint: disable=REPRO002 (field defaults block slots on py39)
    """Outputs and cost accounting of one windowed parallel run."""

    num_lps: int
    end_time: float
    lookahead: float
    final_values: List[bool]
    evaluations: List[int]
    deliveries: Dict[Tuple[int, int], int]
    cross_messages: int
    local_messages: int
    windows: int
    window_lp_work: List[List[float]] = field(repr=False, default_factory=list)

    @property
    def total_messages(self) -> int:
        return self.cross_messages + self.local_messages

    @property
    def sequential_work(self) -> float:
        """Total weighted evaluation work (1-processor cost)."""
        return sum(sum(per_lp) for per_lp in self.window_lp_work)

    @property
    def critical_path_work(self) -> float:
        """Sum over windows of the busiest LP's work — the compute time
        of a perfectly synchronized parallel execution."""
        return sum(max(per_lp) for per_lp in self.window_lp_work if per_lp)

    def estimated_times(
        self,
        machine: SharedMemoryMachine,
        eval_time: float = 1.0,
        barrier_time: float = 0.0,
        message_volume: float = 1.0,
    ) -> Tuple[float, float]:
        """``(sequential, parallel)`` time estimates on the machine.

        Parallel = critical-path compute + one barrier per window +
        cross-message traffic through the interconnect.
        """
        speed = machine.speed
        sequential = self.sequential_work * eval_time / speed
        parallel = (
            self.critical_path_work * eval_time / speed
            + self.windows * barrier_time
            + machine.interconnect.transfer_time(
                self.cross_messages * message_volume
            )
        )
        return sequential, parallel

    def estimated_speedup(self, machine: SharedMemoryMachine, **kwargs) -> float:
        sequential, parallel = self.estimated_times(machine, **kwargs)
        return sequential / parallel if parallel > 0 else float("inf")


class ParallelLogicSimulator:
    """Conservative windowed simulation of a partitioned circuit."""

    __slots__ = ("circuit", "assignment", "num_lps", "clock_period", "lookahead")

    def __init__(
        self,
        circuit: Circuit,
        assignment: Sequence[int],
        clock_period: float = 10.0,
    ) -> None:
        if len(assignment) != circuit.num_gates:
            raise ValueError("assignment must cover every gate")
        if clock_period <= 0:
            raise ValueError("clock period must be positive")
        if circuit.num_gates == 0:
            raise ValueError("empty circuit")
        self.circuit = circuit
        self.assignment = [int(a) for a in assignment]
        if min(self.assignment) < 0:
            raise ValueError("LP ids must be non-negative")
        self.num_lps = max(self.assignment) + 1
        self.clock_period = clock_period
        delays = [
            gate.delay
            for gate in circuit.gates
            if gate.gate_type != "INPUT"
        ]
        positive = [d for d in delays if d > 0]
        if not positive:
            # Pure-input circuits: any window works; use the clock.
            self.lookahead = clock_period
        else:
            self.lookahead = min(positive)

    # ------------------------------------------------------------------
    def run(
        self,
        end_time: float,
        stimuli: Optional[Sequence[Tuple[float, int, bool]]] = None,
        max_events: int = 2_000_000,
    ) -> ParallelRunResult:
        circuit = self.circuit
        assignment = self.assignment
        n = circuit.num_gates
        k = self.num_lps
        lam = self.lookahead

        value = [False] * n  # owner's live value of each gate
        # mirrors[lp] maps a remote source gate -> last delivered value.
        mirrors: List[Dict[int, bool]] = [dict() for _ in range(k)]
        pending = [False] * n  # last value scheduled per gate (owner side)
        evaluations = [0] * n
        deliveries: Dict[Tuple[int, int], int] = {}
        cross = 0
        local = 0
        source_seq = [0] * n  # partition-invariant per-source sequence

        # Per-LP event heaps keyed by (time, kind, source, seq); the key
        # is identical no matter how gates are partitioned.
        queues: List[List[Tuple[float, int, int, int, bool]]] = [
            [] for _ in range(k)
        ]

        # reader_lps[g] = remote LPs that own a reader of gate g.  A
        # scheduled change is multicast to them *at scheduling time*:
        # its timestamp lies at least one lookahead in the future, so
        # the copy lands safely beyond every receiver's current window
        # (the conservative-simulation send rule — CMB sends on
        # schedule, not on fire).
        reader_lps: List[Tuple[int, ...]] = []
        for g in range(n):
            owner = assignment[g]
            remotes = sorted(
                {assignment[t] for t in circuit.fanout[g]} - {owner}
            )
            reader_lps.append(tuple(remotes))

        def schedule_change(fire_time: float, source: int, val: bool):
            """Enqueue a future change at the owner and every remote
            reader LP under one partition-invariant key."""
            seq = source_seq[source]
            source_seq[source] += 1
            entry = (fire_time, _KIND_SIGNAL, source, seq, val)
            heapq.heappush(queues[assignment[source]], entry)
            for lp in reader_lps[source]:
                heapq.heappush(queues[lp], entry)

        # Stimuli: pre-filter to actual changes (the sequential engine's
        # owner-side glitch skip, applied up front — testbench inputs
        # are fully known), then multicast like any other change.
        inputs_set = set(circuit.primary_inputs())
        per_gate: Dict[int, List[Tuple[float, bool]]] = {}
        for time, gate_id, val in stimuli or ():
            if gate_id not in inputs_set:
                raise ValueError(f"gate {gate_id} is not a primary input")
            per_gate.setdefault(gate_id, []).append((time, val))
        for gate_id, events in per_gate.items():
            events.sort(key=lambda item: item[0])  # stable for ties
            current = False
            for time, val in events:
                if val != current:
                    current = val
                    schedule_change(time, gate_id, val)

        # Power-on settling, identical to the sequential engine.  Its
        # work is charged to each owner LP in the first window.
        settle_work = [0.0] * k
        for gate in circuit.gates:
            if gate.gate_type in ("DFF", "INPUT"):
                continue
            out = evaluate_gate(
                gate.gate_type, [value[i] for i in gate.inputs]
            )
            evaluations[gate.ident] += 1
            settle_work[assignment[gate.ident]] += gate.cost
            if out != pending[gate.ident]:
                pending[gate.ident] = out
                schedule_change(gate.delay, gate.ident, out)

        # Clock ticks are local, deterministic events on every LP that
        # owns at least one DFF.
        dffs_of_lp: List[List[int]] = [[] for _ in range(k)]
        for dff in circuit.flip_flops():
            dffs_of_lp[assignment[dff]].append(dff)
        next_tick = [self.clock_period] * k

        def read_input(lp: int, gate_id: int) -> bool:
            if assignment[gate_id] == lp:
                return value[gate_id]
            return mirrors[lp].get(gate_id, False)

        window_lp_work: List[List[float]] = []
        processed = 0
        window_start = 0.0

        def emit_change(lp: int, source: int, new_value: bool, time: float):
            """Owner LP commits a value change and fans it out locally.

            Remote readers already hold the (future-stamped) copy from
            :func:`schedule_change`; the owner only accounts for the
            message traffic here, when the change actually fires."""
            nonlocal cross, local
            value[source] = new_value
            for target in circuit.fanout[source]:
                key = (source, target)
                deliveries[key] = deliveries.get(key, 0) + 1
                if assignment[target] == lp:
                    local += 1
                    _evaluate_target(lp, target, time)
                else:
                    cross += 1

        def _evaluate_target(lp: int, target_id: int, time: float):
            gate = circuit.gates[target_id]
            if gate.gate_type in ("DFF", "INPUT"):
                return
            evaluations[target_id] += 1
            work_row[lp] += gate.cost
            out = evaluate_gate(
                gate.gate_type,
                [read_input(lp, i) for i in gate.inputs],
            )
            if out != pending[target_id]:
                pending[target_id] = out
                schedule_change(time + gate.delay, target_id, out)

        def lp_has_work(lp: int, horizon: float) -> bool:
            if queues[lp] and queues[lp][0][0] < horizon:
                return True
            return bool(dffs_of_lp[lp]) and next_tick[lp] < horizon

        while True:
            window_end = window_start + lam
            horizon = min(window_end, end_time)
            any_work = False
            work_row = [0.0] * k
            if settle_work is not None:
                work_row = settle_work
                settle_work = None
            for lp in range(k):
                while lp_has_work(lp, horizon):
                    any_work = True
                    processed += 1
                    if processed > max_events:
                        raise RuntimeError(
                            f"exceeded {max_events} events — runaway "
                            "oscillation?"
                        )
                    tick = (
                        next_tick[lp]
                        if dffs_of_lp[lp] and next_tick[lp] < horizon
                        else math.inf
                    )
                    head = queues[lp][0][0] if queues[lp] else math.inf
                    if tick <= head:
                        now = tick
                        next_tick[lp] += self.clock_period
                        for dff in dffs_of_lp[lp]:
                            gate = circuit.gates[dff]
                            sampled = (
                                read_input(lp, gate.inputs[0])
                                if gate.inputs
                                else False
                            )
                            evaluations[dff] += 1
                            work_row[lp] += gate.cost
                            if sampled != pending[dff]:
                                pending[dff] = sampled
                                schedule_change(now + gate.delay, dff, sampled)
                        continue
                    time, _kind, source, _seq, val = heapq.heappop(queues[lp])
                    if assignment[source] == lp:
                        # Pre-filtered stimuli and the pending filter
                        # guarantee every owner event is a real change.
                        assert value[source] != val
                        emit_change(lp, source, val, time)
                    else:
                        # Remote message: refresh the mirror, re-evaluate
                        # the local readers of that signal.
                        mirrors[lp][source] = val
                        for target in circuit.fanout[source]:
                            if assignment[target] == lp:
                                _evaluate_target(lp, target, time)

            window_lp_work.append(work_row)
            # Barrier: LPs resynchronize before the next window (the
            # future-stamped messages are already in the queues).
            window_start = window_end
            if window_start >= end_time:
                remaining = any(
                    lp_has_work(lp, end_time) for lp in range(k)
                )
                if not remaining:
                    break
            if not any_work:
                # Fast-forward across idle windows to the next event.
                next_times = [
                    q[0][0] for q in queues if q
                ] + [
                    next_tick[lp] for lp in range(k) if dffs_of_lp[lp]
                ]
                if not next_times or min(next_times) >= end_time:
                    break
                skip = math.floor(
                    (min(next_times) - window_start) / lam
                )
                if skip > 0:
                    window_start += skip * lam

        # Trim empty trailing windows from the accounting.
        while window_lp_work and not any(window_lp_work[-1]):
            window_lp_work.pop()

        return ParallelRunResult(
            num_lps=k,
            end_time=end_time,
            lookahead=lam,
            # Owners hold the authoritative value of every gate.
            final_values=value,
            evaluations=evaluations,
            deliveries=deliveries,
            cross_messages=cross,
            local_messages=local,
            windows=len(window_lp_work),
            window_lp_work=window_lp_work,
        )
