"""Events of the logic simulation kernel.

An event is a scheduled signal change: at time ``time``, gate ``gate``'s
output (or a primary input) takes value ``value``.  Events carry the
originating gate so the distributed run can attribute the message to a
processor pair.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=False)
class Event:
    """A signal-change event.

    ``source`` is the driving gate id (or ``-1`` for primary-input
    stimuli); ``value`` is the new logic value (bool).
    """

    __slots__ = ("time", "source", "value")

    time: float
    source: int
    value: bool

    def __repr__(self) -> str:
        return f"Event(t={self.time:g}, gate={self.source}, v={int(self.value)})"
