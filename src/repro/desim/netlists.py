"""Circuit generators for the distributed-simulation study.

Section 3 singles out systems that are "circular or linear in nature or
can be approximated by a linear task graph, such as a circular type
logic circuit".  These generators produce exactly that family:

- :func:`ring_counter` — a cycle of D flip-flops with an inverter
  (Johnson counter): circular, self-oscillating;
- :func:`inverter_ring` — an odd chain of NOT gates closed into a ring
  (a ring oscillator): pure combinational oscillation;
- :func:`shift_register` — a linear chain of DFFs fed by one input;
- :func:`adder_pipeline` — a pipeline of ripple-carry adder stages:
  linear at the stage level with wide local structure (the shape the
  linear-supergraph approximation targets);
- :func:`random_glue_circuit` — stages of random 2-input gates with
  mostly-local wiring (controlled long-range fraction).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.desim.circuit import Circuit


def ring_counter(num_stages: int) -> Circuit:
    """A Johnson/twisted ring counter: DFF_0 -> DFF_1 -> ... -> DFF_{k-1}
    -> NOT -> DFF_0.  Self-oscillates with period 2k clock ticks."""
    if num_stages < 2:
        raise ValueError("ring counter needs at least 2 stages")
    circuit = Circuit()
    dffs: List[int] = []
    for i in range(num_stages):
        dffs.append(circuit.add_gate("DFF", name=f"ff{i}"))
    inverter = circuit.add_gate("NOT", [dffs[-1]], name="twist")
    circuit.connect_input(dffs[0], inverter)
    for i in range(1, num_stages):
        circuit.connect_input(dffs[i], dffs[i - 1])
    return circuit


def inverter_ring(num_inverters: int) -> Circuit:
    """A ring oscillator of an odd number of NOT gates."""
    if num_inverters < 3 or num_inverters % 2 == 0:
        raise ValueError("ring oscillator needs an odd count >= 3")
    circuit = Circuit()
    gates = [circuit.add_gate("NOT", name=f"inv{i}") for i in range(num_inverters)]
    for i in range(num_inverters):
        circuit.connect_input(gates[i], gates[i - 1])
    return circuit


def shift_register(length: int) -> Circuit:
    """A linear shift register: INPUT -> DFF -> DFF -> ... (length DFFs)."""
    if length < 1:
        raise ValueError("shift register needs at least one stage")
    circuit = Circuit()
    stimulus = circuit.add_gate("INPUT", name="din")
    prev = stimulus
    for i in range(length):
        prev = circuit.add_gate("DFF", [prev], name=f"sr{i}")
    return circuit


def adder_pipeline(
    num_stages: int, bits: int = 4
) -> Tuple[Circuit, List[int]]:
    """A pipeline of ``num_stages`` ripple-carry adder stages.

    Each stage adds a constant pattern to the registered value of the
    previous stage: per bit an XOR/AND pair plus carry logic, then a DFF
    rank.  Returns ``(circuit, stage_of_gate)`` so experiments know the
    natural linear grouping.
    """
    if num_stages < 1 or bits < 1:
        raise ValueError("need at least one stage and one bit")
    circuit = Circuit()
    stage_of: List[int] = []

    def tag(gate_id: int, stage: int) -> int:
        while len(stage_of) <= gate_id:
            stage_of.append(stage)
        return gate_id

    current = [
        tag(circuit.add_gate("INPUT", name=f"in{b}"), 0) for b in range(bits)
    ]
    toggles = [
        tag(circuit.add_gate("INPUT", name=f"tgl{b}"), 0) for b in range(bits)
    ]
    for stage in range(1, num_stages + 1):
        carry: Optional[int] = None
        next_rank: List[int] = []
        for b in range(bits):
            a, t = current[b], toggles[b % len(toggles)]
            s1 = tag(circuit.add_gate("XOR", [a, t], name=f"s{stage}x{b}"), stage)
            c1 = tag(circuit.add_gate("AND", [a, t], name=f"s{stage}a{b}"), stage)
            if carry is None:
                total, carry = s1, c1
            else:
                total = tag(
                    circuit.add_gate("XOR", [s1, carry], name=f"s{stage}t{b}"),
                    stage,
                )
                c2 = tag(
                    circuit.add_gate("AND", [s1, carry], name=f"s{stage}b{b}"),
                    stage,
                )
                carry = tag(
                    circuit.add_gate("OR", [c1, c2], name=f"s{stage}c{b}"),
                    stage,
                )
            reg = tag(circuit.add_gate("DFF", [total], name=f"s{stage}r{b}"), stage)
            next_rank.append(reg)
        current = next_rank
    return circuit, stage_of


def random_glue_circuit(
    num_gates: int,
    rng: Optional[random.Random] = None,
    locality: float = 0.9,
    num_inputs: int = 4,
) -> Circuit:
    """Random mostly-local combinational circuit with a DFF backbone.

    Gates read from recent predecessors with probability ``locality``
    (window of 8), otherwise from anywhere earlier — the knob that makes
    the linear-supergraph approximation progressively lossier.
    """
    if num_gates < num_inputs + 2:
        raise ValueError("circuit too small")
    r = rng or random.Random(0)
    circuit = Circuit()
    for i in range(num_inputs):
        circuit.add_gate("INPUT", name=f"in{i}")
    kinds = ["AND", "OR", "XOR", "NAND", "NOR", "NOT", "DFF"]
    while circuit.num_gates < num_gates:
        ident = circuit.num_gates
        kind = r.choice(kinds)
        fan_in = 1 if kind in ("NOT", "DFF") else 2
        sources = []
        for _ in range(fan_in):
            if r.random() < locality:
                lo = max(0, ident - 8)
            else:
                lo = 0
            sources.append(r.randrange(lo, ident))
        circuit.add_gate(kind, sources)
    return circuit
