"""Gate models for the logic simulator.

Combinational gates evaluate their inputs instantaneously and drive the
result after a propagation delay; ``DFF`` (D flip-flop) is the one
sequential element — it samples its input on the simulated clock and is
what makes ring counters and shift registers oscillate.  ``INPUT``
vertices are stimulus sources driven directly by the testbench.

Each gate type carries a nominal evaluation *cost* (its vertex weight in
the exported task graph) loosely proportional to its fan-in, which is
all the partitioning algorithms need.
"""

from __future__ import annotations

from typing import Dict, Sequence

GATE_TYPES: Dict[str, float] = {
    # type: nominal evaluation cost (task-graph vertex weight)
    "INPUT": 0.5,
    "BUF": 1.0,
    "NOT": 1.0,
    "AND": 2.0,
    "OR": 2.0,
    "NAND": 2.0,
    "NOR": 2.0,
    "XOR": 3.0,
    "XNOR": 3.0,
    "DFF": 4.0,
}

#: Propagation delay per gate type (arbitrary simulated time units).
GATE_DELAYS: Dict[str, float] = {
    "INPUT": 0.0,
    "BUF": 1.0,
    "NOT": 1.0,
    "AND": 2.0,
    "OR": 2.0,
    "NAND": 2.0,
    "NOR": 2.0,
    "XOR": 3.0,
    "XNOR": 3.0,
    "DFF": 1.0,
}


def evaluate_gate(gate_type: str, inputs: Sequence[bool]) -> bool:
    """Combinational evaluation of one gate.

    ``DFF`` is handled by the simulator's clock logic, not here; calling
    it anyway returns its (single) input, i.e. transparent-latch
    semantics, which the sequential simulator overrides.
    """
    if gate_type in ("INPUT", "BUF", "DFF"):
        if gate_type == "INPUT":
            return inputs[0] if inputs else False
        return inputs[0]
    if gate_type == "NOT":
        return not inputs[0]
    if gate_type == "AND":
        return all(inputs)
    if gate_type == "NAND":
        return not all(inputs)
    if gate_type == "OR":
        return any(inputs)
    if gate_type == "NOR":
        return not any(inputs)
    if gate_type == "XOR":
        return sum(map(bool, inputs)) % 2 == 1
    if gate_type == "XNOR":
        return sum(map(bool, inputs)) % 2 == 0
    raise ValueError(f"unknown gate type {gate_type!r}")


def gate_cost(gate_type: str) -> float:
    try:
        return GATE_TYPES[gate_type]
    except KeyError:
        raise ValueError(f"unknown gate type {gate_type!r}") from None


def gate_delay(gate_type: str) -> float:
    try:
        return GATE_DELAYS[gate_type]
    except KeyError:
        raise ValueError(f"unknown gate type {gate_type!r}") from None
