"""Circuit (netlist) representation.

A circuit is a directed graph of gates: each gate has a type, an ordered
input list (gate ids it reads) and an implied fan-out (gates reading
it).  The paper's modelling maps this to an *undirected* task graph —
"an edge links two processes which need to pass messages to each other
directly" — with gate evaluation cost as vertex weight and estimated
message volume as edge weight; :meth:`Circuit.to_task_graph` performs
that export (summing volumes when two gates are wired in both
directions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.desim.gates import gate_cost, gate_delay
from repro.graphs.task_graph import TaskGraph


@dataclass
class Gate:  # repro-lint: disable=REPRO002 (field defaults block slots on py39)
    """One gate instance: type plus the ids of the gates it reads."""

    ident: int
    gate_type: str
    inputs: List[int] = field(default_factory=list)
    name: str = ""

    @property
    def cost(self) -> float:
        return gate_cost(self.gate_type)

    @property
    def delay(self) -> float:
        return gate_delay(self.gate_type)


class Circuit:
    """A gate-level netlist."""

    __slots__ = ("gates", "fanout")

    def __init__(self) -> None:
        self.gates: List[Gate] = []
        self.fanout: List[List[int]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate(
        self, gate_type: str, inputs: Sequence[int] = (), name: str = ""
    ) -> int:
        """Add a gate reading the given gate ids; returns its id."""
        ident = len(self.gates)
        for src in inputs:
            if not (0 <= src < ident) and src != ident:
                # Self-loops and forward references are allowed only via
                # connect_input (sequential circuits close cycles late).
                raise ValueError(f"gate {ident} reads unknown gate {src}")
        gate = Gate(ident, gate_type, list(inputs), name or f"g{ident}")
        gate_cost(gate_type)  # validates the type
        self.gates.append(gate)
        self.fanout.append([])
        for src in inputs:
            self.fanout[src].append(ident)
        return ident

    def connect_input(self, gate_id: int, source_id: int) -> None:
        """Wire ``source_id`` as an additional input of ``gate_id``
        (may create cycles — used for flip-flop feedback)."""
        if not (0 <= gate_id < len(self.gates)):
            raise ValueError(f"unknown gate {gate_id}")
        if not (0 <= source_id < len(self.gates)):
            raise ValueError(f"unknown source gate {source_id}")
        self.gates[gate_id].inputs.append(source_id)
        self.fanout[source_id].append(gate_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def primary_inputs(self) -> List[int]:
        return [g.ident for g in self.gates if g.gate_type == "INPUT"]

    def flip_flops(self) -> List[int]:
        return [g.ident for g in self.gates if g.gate_type == "DFF"]

    def wire_pairs(self) -> Dict[Tuple[int, int], int]:
        """Undirected gate pairs that exchange signals, with multiplicity
        (a pair wired in both directions counts twice)."""
        pairs: Dict[Tuple[int, int], int] = {}
        for gate in self.gates:
            for src in gate.inputs:
                if src == gate.ident:
                    continue
                key = (src, gate.ident) if src < gate.ident else (gate.ident, src)
                pairs[key] = pairs.get(key, 0) + 1
        return pairs

    # ------------------------------------------------------------------
    # Task-graph export
    # ------------------------------------------------------------------
    def to_task_graph(
        self, activity: Optional[Sequence[float]] = None
    ) -> TaskGraph:
        """Export the circuit as the paper's weighted task graph.

        Vertex weight = gate evaluation cost, optionally scaled by a
        measured per-gate ``activity`` factor (events evaluated during a
        profiling run); edge weight = estimated messages per wire,
        likewise scaled by the driving gate's activity.
        """
        if activity is not None and len(activity) != self.num_gates:
            raise ValueError("activity must cover every gate")

        def act(g: int) -> float:
            return activity[g] if activity is not None else 1.0

        weights = [g.cost * max(act(g.ident), 1e-9) for g in self.gates]
        graph = TaskGraph(weights)
        edge_volume: Dict[Tuple[int, int], float] = {}
        for gate in self.gates:
            for src in gate.inputs:
                if src == gate.ident:
                    continue
                key = (src, gate.ident) if src < gate.ident else (gate.ident, src)
                edge_volume[key] = edge_volume.get(key, 0.0) + max(act(src), 1e-9)
        for (u, v), volume in edge_volume.items():
            graph.add_edge(u, v, volume)
        return graph

    def __repr__(self) -> str:
        kinds: Dict[str, int] = {}
        for g in self.gates:
            kinds[g.gate_type] = kinds.get(g.gate_type, 0) + 1
        return f"Circuit({self.num_gates} gates: {kinds})"
