"""Circuit → linear supergraph adapter (Section 3).

"If the topological structure of the simulated system renders a linear
process graph then the application of our algorithm becomes
straightforward.  Otherwise, for a more general system, we may first
approximate the original system by generating a super-graph, which is
linear, from the process graph, then apply the algorithm to the
super-graph."

:func:`circuit_supergraph` implements that decision procedure over the
circuit's exported task graph: paths pass through unchanged, simple
cycles are broken at their lightest wire, and everything else is
layered by BFS (exact inter-layer traffic, see
:mod:`repro.graphs.supergraph`).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.desim.circuit import Circuit
from repro.graphs.chain import Chain
from repro.graphs.supergraph import (
    Supergraph,
    bfs_linear_supergraph,
    ring_to_chain,
)
from repro.graphs.task_graph import TaskGraph


def circuit_supergraph(
    circuit: Circuit,
    activity: Optional[Sequence[float]] = None,
    source: Optional[int] = None,
) -> Supergraph:
    """The linear supergraph of a circuit's task graph.

    ``activity`` optionally weights gates/wires with measured dynamics
    (see :meth:`repro.desim.simulator.SimulationResult.activity`).
    """
    graph = circuit.to_task_graph(activity)
    if graph.is_path():
        chain = Chain.from_task_graph(graph)
        # Groups follow the path order used by Chain.from_task_graph.
        order = _path_order(graph)
        return Supergraph(graph, chain, [[v] for v in order], exact=True)
    if _is_cycle(graph):
        supergraph, _broken = ring_to_chain(graph)
        return supergraph
    start = source if source is not None else _default_source(circuit)
    return bfs_linear_supergraph(graph, start)


def _is_cycle(graph: TaskGraph) -> bool:
    n = graph.num_vertices
    return (
        n >= 3
        and graph.num_edges == n
        and all(graph.degree(v) == 2 for v in range(n))
        and graph.is_connected()
    )


def _path_order(graph: TaskGraph) -> list:
    endpoints = [v for v in range(graph.num_vertices) if graph.degree(v) == 1]
    if graph.num_vertices == 1:
        return [0]
    order = [min(endpoints)]
    prev = -1
    while len(order) < graph.num_vertices:
        current = order[-1]
        nxt = [v for v in graph.neighbors(current) if v != prev][0]
        prev = current
        order.append(nxt)
    return order


def _default_source(circuit: Circuit) -> int:
    inputs = circuit.primary_inputs()
    return inputs[0] if inputs else 0
