"""Discrete-event logic simulation — the Section 3 application study.

The paper's second application partitions a logic circuit for
*distributed discrete event simulation*: gates are processes, wires are
message channels, and the partitioning problem is to place gates on
processors so that load is balanced and cross-processor messages are
few.  This package builds the whole substrate from scratch:

- :mod:`~repro.desim.events` / :mod:`~repro.desim.event_queue` — the
  event kernel (timestamped events, stable binary-heap queue);
- :mod:`~repro.desim.gates` — gate models (AND/OR/NOT/... , DFF);
- :mod:`~repro.desim.circuit` — netlists, fan-out, task-graph export;
- :mod:`~repro.desim.netlists` — circuit generators (ring counters,
  pipelines of adders, linear shift registers, random glue);
- :mod:`~repro.desim.simulator` — the event-driven simulator;
- :mod:`~repro.desim.distributed` — a partitioned run that tallies
  inter-processor messages and per-processor event load;
- :mod:`~repro.desim.linearize` — circuit → linear supergraph adapter
  (Section 3's "generate a super-graph, which is linear").
"""

from repro.desim.circuit import Circuit
from repro.desim.distributed import DistributedRun, simulate_partitioned
from repro.desim.event_queue import EventQueue
from repro.desim.events import Event
from repro.desim.gates import GATE_TYPES, evaluate_gate
from repro.desim.linearize import circuit_supergraph
from repro.desim.parallel import ParallelLogicSimulator, ParallelRunResult
from repro.desim.simulator import LogicSimulator, SimulationResult
from repro.desim.timewarp import TimeWarpResult, TimeWarpSimulator
from repro.desim.waveform import WaveformRecorder

__all__ = [
    "Circuit",
    "DistributedRun",
    "Event",
    "EventQueue",
    "GATE_TYPES",
    "LogicSimulator",
    "ParallelLogicSimulator",
    "ParallelRunResult",
    "SimulationResult",
    "TimeWarpResult",
    "TimeWarpSimulator",
    "WaveformRecorder",
    "circuit_supergraph",
    "evaluate_gate",
    "simulate_partitioned",
]
