"""The process exit-code contract: one registered ``EXIT_CODES`` table.

Every ``sys.exit``/``SystemExit`` site in the CLI entry points
(``repro/cli.py``, ``repro/__main__.py``) must use a code from this
table — the fault-surface analyzer (:mod:`repro.verify.faultflow`,
rule REPRO022) enforces it statically, and ``docs/usage.md`` documents
the same table ("Exit codes"), checked by ``tests/verify/
test_faultflow.py`` exactly the way the REPROxxx rule registry is
docs-checked.  Before this module existed the meanings were scattered
as literal ``return 0/1/2/3`` statements across twelve ``_cmd_*``
functions, and nothing kept them from drifting apart.

This is a stdlib-only leaf module (like :mod:`repro.verify.codes`):
the CLI and the analyzers import it at module load, so it must not
import anything from the rest of the package.

==============  ====  ====================================================
Name            Code  Meaning
==============  ====  ====================================================
OK              0     the command succeeded
FAILURE         1     the command ran but the gate failed — findings,
                      failed queries, a regressed score or ratchet
USAGE           2     usage, I/O or parse errors: bad flags, missing or
                      malformed input files
VERIFICATION    3     a ``--verify`` self-certification failed — the
                      solver's own answer did not pass the paper
                      certificates
==============  ====  ====================================================
"""

from __future__ import annotations

from typing import Dict

#: The single source of truth.  Keys are stable names (documented in
#: docs/usage.md), values are the process exit statuses.
EXIT_CODES: Dict[str, int] = {
    "OK": 0,
    "FAILURE": 1,
    "USAGE": 2,
    "VERIFICATION": 3,
}

#: Named constants derived from the table — the only spellings the
#: REPRO022 exit-code contract accepts at ``sys.exit``/``return``
#: sites in the CLI entry points.
EXIT_OK = EXIT_CODES["OK"]
EXIT_FAILURE = EXIT_CODES["FAILURE"]
EXIT_USAGE = EXIT_CODES["USAGE"]
EXIT_VERIFICATION = EXIT_CODES["VERIFICATION"]

#: The constant names REPRO022 recognizes, derived (never hand-listed)
#: from the table so the two can not drift.
EXIT_CONSTANT_NAMES = frozenset("EXIT_" + name for name in EXIT_CODES)
