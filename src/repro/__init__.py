"""repro — reproduction of Ray & Jiang (ICDCS 1994).

*Improved Algorithms for Partitioning Tree and Linear Task Graphs on
Shared Memory Architecture.*

The package implements the paper's three partitioning algorithms
(:mod:`repro.core`), every baseline it compares against
(:mod:`repro.baselines`), the task-graph substrate
(:mod:`repro.graphs`), a shared-memory machine simulator
(:mod:`repro.machine`), the two application studies of Section 3
(:mod:`repro.realtime`, :mod:`repro.desim`) and the experiment drivers
that regenerate the paper's Figure 2 and complexity claims
(:mod:`repro.analysis`).

Quickstart::

    from repro import Chain, bandwidth_min

    chain = Chain(alpha=[4, 3, 5, 2, 6], beta=[7, 1, 9, 2])
    result = bandwidth_min(chain, bound=9.0)
    print(result.cut_indices, result.weight)
"""

from repro.core import (
    InfeasibleBoundError,
    bandwidth_min,
    bottleneck_min,
    partition_chain,
    partition_tree,
    processor_min,
)
from repro.engine import PartitionEngine, PartitionQuery
from repro.graphs import Chain, Cut, Partition, TaskGraph, Tree

__version__ = "1.0.0"

__all__ = [
    "Chain",
    "Cut",
    "InfeasibleBoundError",
    "Partition",
    "PartitionEngine",
    "PartitionQuery",
    "TaskGraph",
    "Tree",
    "bandwidth_min",
    "bottleneck_min",
    "partition_chain",
    "partition_tree",
    "processor_min",
    "__version__",
]
