"""Real-time computing application — Section 3, Figure 3.

A real-time task ``T`` with deadline ``k`` is maximally divided into a
linear sequence of subtasks with data dependencies; the partitioning
must guarantee (1) every component completes within ``k``, (2) total
network cost/noise impact is minimized, (3) the highest single-processor
traffic demand is minimized.  These are exactly the execution-time
bound, bandwidth and bottleneck objectives, so the planner here is a
thin orchestration of :mod:`repro.core` plus the machine model.
"""

from repro.realtime.planner import RealTimePlan, plan_realtime_task
from repro.realtime.schedule import StageSchedule, build_schedule
from repro.realtime.spec import RealTimeTask

__all__ = [
    "RealTimePlan",
    "RealTimeTask",
    "StageSchedule",
    "build_schedule",
    "plan_realtime_task",
]
