"""Real-time task specifications.

Mirrors the constraint list of Section 3: a deadline ``k``, subtasks
``t_1 .. t_n`` with processing times ``w(t_i) <= k`` (computation plus
communication), and data-dependency weights ``w(dp_i)`` reflecting
traffic demand and/or sensitivity of the data crossing that dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graphs.chain import Chain


@dataclass
class RealTimeTask:
    """A deadline-constrained, maximally-divided linear task."""

    __slots__ = ("name", "subtask_costs", "dependency_weights", "deadline")

    name: str
    subtask_costs: List[float]
    dependency_weights: List[float]
    deadline: float

    def __post_init__(self) -> None:
        self.subtask_costs = [float(c) for c in self.subtask_costs]
        self.dependency_weights = [float(w) for w in self.dependency_weights]
        if len(self.dependency_weights) != max(len(self.subtask_costs) - 1, 0):
            raise ValueError(
                "need exactly one dependency weight between consecutive subtasks"
            )
        if self.deadline <= 0:
            raise ValueError("deadline must be positive")
        for i, cost in enumerate(self.subtask_costs):
            if cost > self.deadline:
                raise ValueError(
                    f"subtask {i} needs {cost:g} > deadline {self.deadline:g}; "
                    "the task is not schedulable on any partition"
                )

    @property
    def num_subtasks(self) -> int:
        return len(self.subtask_costs)

    def to_chain(self) -> Chain:
        return Chain(self.subtask_costs, self.dependency_weights)

    def utilization_bound(self) -> float:
        """Minimum number of processors by pure work: total / deadline."""
        return sum(self.subtask_costs) / self.deadline
