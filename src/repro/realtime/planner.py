"""Partition-and-map planning for real-time tasks (Section 3, Figure 3).

The section's requirements map one-to-one onto the paper's machinery:

1. "all subproblems must be completed within time k" — the
   execution-time bound with ``K = k``;
2. "impact of network cost and noise must be minimized" — bandwidth
   minimization (Algorithm 4.1);
3. "the highest traffic demand of a single processor on the network must
   be minimized" — bottleneck minimization (Algorithm 2.1).

:func:`plan_realtime_task` builds both partitions, reports their
objective values side by side, verifies deadline feasibility on the
machine and produces the trivial shared-memory mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.pipeline import partition_chain
from repro.machine.machine import SharedMemoryMachine
from repro.machine.mapper import Mapping, map_partition
from repro.machine.traffic import TrafficReport, network_demand
from repro.realtime.spec import RealTimeTask


@dataclass
class RealTimePlan:
    """A complete plan: partition, mapping and verification verdicts."""

    __slots__ = (
        "task",
        "objective",
        "cut_indices",
        "component_costs",
        "mapping",
        "traffic",
        "meets_deadline",
        "processors_used",
    )

    task: RealTimeTask
    objective: str
    cut_indices: List[int]
    component_costs: List[float]
    mapping: Mapping
    traffic: TrafficReport
    meets_deadline: bool
    processors_used: int

    @property
    def worst_component_time(self) -> float:
        return max(self.component_costs)

    @property
    def slack(self) -> float:
        """Deadline margin of the slowest component."""
        return self.task.deadline - self.worst_component_time

    def summary(self) -> str:
        verdict = "MEETS" if self.meets_deadline else "MISSES"
        return (
            f"{self.task.name}: {self.processors_used} processors, "
            f"worst stage {self.worst_component_time:g}/{self.task.deadline:g} "
            f"({verdict} deadline), network demand "
            f"total={self.traffic.total_demand:g} "
            f"max-link={self.traffic.max_link_demand:g}"
        )


def plan_realtime_task(
    task: RealTimeTask,
    machine: SharedMemoryMachine,
    objective: str = "bandwidth",
) -> RealTimePlan:
    """Plan a real-time task on a shared-memory machine.

    ``objective`` selects the secondary criterion on top of the deadline
    bound: ``"bandwidth"`` (condition 2), ``"bottleneck+processors"``
    (condition 3 with minimal processor usage), ``"processors"``, or
    ``"bottleneck+bandwidth"`` — the lexicographic combination the
    section literally asks for (minimum total dependency weight among
    minimum-bottleneck cuts).
    Raises ``ValueError`` when the partition needs more processors than
    the machine has — the task set is then not schedulable as given.
    """
    chain = task.to_chain()
    # The bound is the deadline scaled by processor speed: a component of
    # weight w takes w / speed time.
    bound = task.deadline * machine.speed
    result = partition_chain(chain, bound, objective=objective)
    component_costs = [
        w / machine.speed for w in result.component_weights()
    ]
    mapping = map_partition(result.component_weights(), machine)
    traffic = network_demand(chain, result.cut_indices)
    meets = all(c <= task.deadline + 1e-12 for c in component_costs)
    return RealTimePlan(
        task=task,
        objective=objective,
        cut_indices=list(result.cut_indices),
        component_costs=component_costs,
        mapping=mapping,
        traffic=traffic,
        meets_deadline=meets,
        processors_used=len(component_costs),
    )


def compare_objectives(
    task: RealTimeTask, machine: SharedMemoryMachine
) -> List[RealTimePlan]:
    """Plans under every objective, for the Figure-3 style comparison."""
    return [
        plan_realtime_task(task, machine, objective)
        for objective in (
            "bandwidth",
            "bottleneck+processors",
            "bottleneck+bandwidth",
            "processors",
        )
    ]
