"""Per-processor schedules for a planned real-time pipeline.

Turns a plan into the steady-state timeline of one pipeline iteration:
when each stage computes, how long it spends communicating, its idle
slack against the deadline, and its utilization once the pipeline is
full.  Used by the example scripts and the real-time benchmark to show
the partition as a Gantt-style table (the textual analogue of the
paper's Figure 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.machine.machine import SharedMemoryMachine
from repro.realtime.planner import RealTimePlan


@dataclass(frozen=True)
class StageSchedule:
    """One pipeline stage's steady-state accounting."""

    __slots__ = (
        "processor",
        "first_subtask",
        "last_subtask",
        "compute_time",
        "send_volume",
        "send_time",
        "slack",
    )

    processor: int
    first_subtask: int
    last_subtask: int
    compute_time: float
    send_volume: float
    send_time: float
    slack: float

    @property
    def stage_period(self) -> float:
        """Time this stage needs per item (compute + its own send)."""
        return self.compute_time + self.send_time


def build_schedule(
    plan: RealTimePlan, machine: SharedMemoryMachine
) -> List[StageSchedule]:
    """Per-stage schedule of the plan on the machine."""
    chain = plan.task.to_chain()
    blocks = chain.cut_components(plan.cut_indices)
    boundaries = sorted(set(plan.cut_indices))
    net = machine.interconnect
    schedules: List[StageSchedule] = []
    for stage, (lo, hi) in enumerate(blocks):
        compute = chain.segment_weight(lo, hi) / machine.speed
        volume = chain.edge_weight(boundaries[stage]) if stage < len(boundaries) else 0.0
        schedules.append(
            StageSchedule(
                processor=plan.mapping.processor_of[stage],
                first_subtask=lo,
                last_subtask=hi,
                compute_time=compute,
                send_volume=volume,
                send_time=net.transfer_time(volume),
                slack=plan.task.deadline - compute,
            )
        )
    return schedules


def pipeline_period(schedules: List[StageSchedule]) -> float:
    """Steady-state initiation interval: the slowest stage's period."""
    return max(s.stage_period for s in schedules)
