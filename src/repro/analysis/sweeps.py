"""Generic deterministic parameter-sweep runner.

Small utility used by benchmarks and the CLI: run a measurement function
over the cartesian product of named parameter lists, with a
deterministic per-point RNG, collecting dict rows.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Sequence

from repro.instrumentation.rng import spawn_rng


def sweep(
    measure: Callable[..., Dict],
    parameters: Dict[str, Sequence],
    repetitions: int = 1,
    master_seed: int = 20260706,
) -> List[Dict]:
    """Run ``measure(rng=..., **point)`` for every parameter combination.

    ``measure`` receives each parameter by keyword plus a seeded ``rng``;
    it returns a dict of measurements.  Rows carry the parameters, the
    repetition index and the measurements.
    """
    names = list(parameters)
    rows: List[Dict] = []
    for values in itertools.product(*(parameters[name] for name in names)):
        point = dict(zip(names, values))
        for rep in range(repetitions):
            rng = spawn_rng(master_seed, *values, rep)
            measurements = measure(rng=rng, **point)
            row = dict(point)
            row["rep"] = rep
            row.update(measurements)
            rows.append(row)
    return rows


def aggregate(rows: List[Dict], group_by: Sequence[str]) -> List[Dict]:
    """Average numeric fields of rows sharing the same group key."""
    groups: Dict[tuple, List[Dict]] = {}
    for row in rows:
        key = tuple(row[name] for name in group_by)
        groups.setdefault(key, []).append(row)
    out: List[Dict] = []
    for key, members in groups.items():
        agg: Dict = dict(zip(group_by, key))
        numeric = [
            name
            for name, value in members[0].items()
            if name not in group_by
            and name != "rep"
            and isinstance(value, (int, float))
        ]
        for name in numeric:
            agg[name] = sum(m[name] for m in members) / len(members)
        out.append(agg)
    return out
