"""ASCII rendering of chain partitions.

Makes the objects the algorithms argue about visible in the terminal:
blocks with their loads, cut edges with their weights, and the bound
they respect — used by the examples and handy in a REPL.

::

    [ 0..1 | w=7.0 ]--(1.0)--[ 2..3 | w=7.0 ]--(2.0)--[ 4 | w=6.0 ]
    bound K=9: 3 blocks, bandwidth 3.0, bottleneck 2.0
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graphs.chain import Chain


def render_chain_partition(
    chain: Chain,
    cut_indices: Sequence[int],
    bound: Optional[float] = None,
    max_width: int = 100,
) -> str:
    """One-line (wrapped) drawing of the blocks a cut induces."""
    blocks = chain.cut_components(cut_indices)
    boundaries = sorted(set(cut_indices))
    parts: List[str] = []
    for idx, (lo, hi) in enumerate(blocks):
        span = f"{lo}" if lo == hi else f"{lo}..{hi}"
        parts.append(f"[ {span} | w={chain.segment_weight(lo, hi):g} ]")
        if idx < len(boundaries):
            parts.append(f"--({chain.edge_weight(boundaries[idx]):g})--")
    # Wrap at block boundaries.
    lines: List[str] = []
    current = ""
    for part in parts:
        if current and len(current) + len(part) > max_width:
            lines.append(current)
            current = "    " + part
        else:
            current += part
    if current:
        lines.append(current)

    weights = [chain.segment_weight(lo, hi) for lo, hi in blocks]
    bandwidth = chain.cut_weight(boundaries)
    bottleneck = max(
        (chain.edge_weight(i) for i in boundaries), default=0.0
    )
    summary = (
        f"{len(blocks)} blocks, max load {max(weights):g}, "
        f"bandwidth {bandwidth:g}, bottleneck {bottleneck:g}"
    )
    if bound is not None:
        ok = "ok" if max(weights) <= bound else "VIOLATED"
        summary = f"bound K={bound:g} ({ok}): " + summary
    lines.append(summary)
    return "\n".join(lines)


def render_load_bars(
    chain: Chain,
    cut_indices: Sequence[int],
    bound: Optional[float] = None,
    width: int = 40,
) -> str:
    """Per-block load bars scaled to the bound (or the max load)."""
    blocks = chain.cut_components(cut_indices)
    weights = [chain.segment_weight(lo, hi) for lo, hi in blocks]
    scale = bound if bound is not None else max(weights)
    lines = []
    for idx, ((lo, hi), w) in enumerate(zip(blocks, weights)):
        filled = min(width, int(round(w / scale * width)))
        bar = "#" * filled + "." * (width - filled)
        span = f"{lo}" if lo == hi else f"{lo}..{hi}"
        lines.append(
            f"block {idx:>2} [{bar}] {w:8.2f}  tasks {span}"
        )
    if bound is not None:
        lines.append(f"{'':>9}bound K = {bound:g} (full bar)")
    return "\n".join(lines)
