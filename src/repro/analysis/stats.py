"""Small statistics helpers (pure Python; numpy only where it pays)."""

from __future__ import annotations

import math
from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1); 0 for fewer than 2 samples."""
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile, ``pct`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= pct <= 100:
        raise ValueError("pct must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize(values: Sequence[float]) -> Dict[str, float]:
    return {
        "mean": mean(values),
        "std": stddev(values),
        "min": min(values),
        "p50": percentile(values, 50),
        "max": max(values),
    }


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
