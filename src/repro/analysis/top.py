"""Live terminal dashboard — ``repro top``.

Folds schema-v2 trace records into the handful of figures an operator
watches while a batch runs: query throughput, windowed latency
percentiles, solver cache hit ratio, plan-cache occupancy and the
optimality-gap gauge.  One :class:`DashboardState` serves every input
shape — it can ingest a finished trace record list, follow a streaming
JSONL file as lines land (``repro top --trace``), or sit directly on a
:class:`repro.observability.live.TelemetryHub` as a subscriber (its
``emit`` is ``ingest``).

Percentiles use the same nearest-rank definition
(:func:`repro.observability.metrics.nearest_rank`) as the histogram
instruments, so the live window and the post-hoc
``repro report --trace`` summary agree on the same run.  Rendering
reuses :func:`repro.analysis.ascii_plot.ascii_plot` for the latency
sparkline.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional, TextIO, Tuple

from repro.analysis.ascii_plot import ascii_plot
from repro.observability.metrics import nearest_rank

#: Metric-event names folded into the latency window (serial solves
#: publish the first, batch workers the second).
LATENCY_METRICS = ("engine.query_latency_s", "engine.batch.query_latency_s")

GAP_METRIC = "solve.optimality_gap"


class DashboardState:
    """Sliding-window aggregation of v2 trace records.

    The window is measured against the newest event timestamp seen (not
    the wall clock), so replaying a recorded trace produces exactly the
    figures the live run showed.  Only ``event`` records carry
    timestamps; ``meta`` feeds the header line and everything else is
    counted but otherwise ignored.
    """

    __slots__ = (
        "window_s", "meta", "now", "start", "total_records", "total_solves",
        "failures", "_latencies", "_gaps", "_cache", "_batch",
    )

    def __init__(self, window_s: float = 30.0) -> None:
        if not window_s > 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.window_s = window_s
        self.meta: Dict[str, Any] = {}
        self.now: Optional[float] = None
        self.start: Optional[float] = None
        self.total_records = 0
        self.total_solves = 0
        self.failures = 0
        self._latencies: Deque[Tuple[float, float]] = deque()
        self._gaps: Deque[Tuple[float, float]] = deque()
        self._cache: Optional[Dict[str, Any]] = None
        self._batch: Optional[Dict[str, Any]] = None

    def ingest(self, record: Dict[str, Any]) -> None:
        """Fold one trace record (any kind) into the window."""
        self.total_records += 1
        kind = record.get("kind")
        if kind == "meta":
            self.meta.update(record)
            return
        if kind != "event":
            return
        t = record.get("t")
        if isinstance(t, (int, float)):
            self.now = t if self.now is None else max(self.now, t)
            self.start = t if self.start is None else min(self.start, t)
        event = record.get("event")
        if event == "solve":
            self.total_solves += 1
            if not record.get("ok", True):
                self.failures += 1
        elif event == "metric" and record.get("metric") == "observe":
            name, value = record.get("name"), record.get("value")
            if isinstance(t, (int, float)) and isinstance(value, (int, float)):
                if name in LATENCY_METRICS:
                    self._latencies.append((t, float(value)))
                elif name == GAP_METRIC:
                    self._gaps.append((t, float(value)))
        elif event == "cache":
            self._cache = record
        elif event == "batch":
            self._batch = record
        self._evict()

    # Subscriber protocol: a DashboardState can sit on a hub directly.
    emit = ingest

    def close(self) -> None:
        """Subscriber protocol: nothing to release."""

    def ingest_all(self, records: Iterable[Dict[str, Any]]) -> None:
        for record in records:
            self.ingest(record)

    def _evict(self) -> None:
        if self.now is None:
            return
        cutoff = self.now - self.window_s
        for series in (self._latencies, self._gaps):
            while series and series[0][0] <= cutoff:
                series.popleft()

    def window_latencies(self) -> List[float]:
        """Latency observations still inside the window, arrival order."""
        return [value for _, value in self._latencies]

    def snapshot(self) -> Dict[str, Any]:
        """The dashboard figures as a plain dict (render-independent)."""
        latencies = sorted(value for _, value in self._latencies)
        gaps = sorted(value for _, value in self._gaps)
        if self.now is not None and self.start is not None:
            span = min(self.window_s, self.now - self.start)
        else:
            span = 0.0
        throughput = len(latencies) / span if span > 0 else 0.0
        cache_hit_rate: Optional[float] = None
        if self._cache is not None:
            cache_hit_rate = self._cache.get("hit_rate")
        elif self._batch is not None:
            cache_hit_rate = self._batch.get("cache_hit_rate")
        plan_occupancy = (
            self._batch.get("plan_occupancy") if self._batch else None
        )
        return {
            "records": self.total_records,
            "solves": self.total_solves,
            "failures": self.failures,
            "window_s": self.window_s,
            "window_count": len(latencies),
            "throughput_qps": throughput,
            "p50_s": nearest_rank(latencies, 50.0),
            "p95_s": nearest_rank(latencies, 95.0),
            "p99_s": nearest_rank(latencies, 99.0),
            "max_s": latencies[-1] if latencies else 0.0,
            "cache_hit_rate": cache_hit_rate,
            "plan_occupancy": plan_occupancy,
            "gap_p50": nearest_rank(gaps, 50.0) if gaps else None,
            "gap_max": gaps[-1] if gaps else None,
        }


def _gauge(label: str, fraction: Optional[float], width: int = 24) -> str:
    """``label [#####.....] 42.0%`` — or ``-`` when never observed."""
    if fraction is None or not isinstance(fraction, (int, float)) or (
        isinstance(fraction, float) and math.isnan(fraction)
    ):
        return f"{label:<16} -"
    clamped = min(max(float(fraction), 0.0), 1.0)
    filled = round(clamped * width)
    bar = "#" * filled + "." * (width - filled)
    return f"{label:<16} [{bar}] {100.0 * clamped:5.1f}%"


def render_dashboard(state: DashboardState, *, width: int = 64) -> str:
    """One text frame of the ``repro top`` dashboard."""
    snap = state.snapshot()
    lines: List[str] = []
    described = {
        k: v for k, v in sorted(state.meta.items())
        if k not in ("kind", "schema", "t") and not isinstance(v, (dict, list))
    }
    if described:
        lines.append(
            "trace: " + ", ".join(f"{k}={v}" for k, v in described.items())
        )
    lines.append(
        f"solves {snap['solves']} ({snap['failures']} failed)  |  "
        f"window {snap['window_s']:g}s: {snap['window_count']} queries, "
        f"{snap['throughput_qps']:.1f} q/s"
    )
    lines.append(
        f"latency  p50 {1e3 * snap['p50_s']:.3f} ms   "
        f"p95 {1e3 * snap['p95_s']:.3f} ms   "
        f"p99 {1e3 * snap['p99_s']:.3f} ms   "
        f"max {1e3 * snap['max_s']:.3f} ms"
    )
    lines.append(_gauge("cache hits", snap["cache_hit_rate"]))
    lines.append(_gauge("plan occupancy", snap["plan_occupancy"]))
    gap = snap["gap_max"]
    lines.append(
        _gauge("optimality gap", gap)
        + (f"  (p50 {snap['gap_p50']:.3f})" if gap is not None else "")
    )
    series = [
        (float(i), 1e3 * value)
        for i, value in enumerate(state.window_latencies())
    ]
    if len(series) >= 2:
        lines.append("")
        lines.append(
            ascii_plot(
                {"latency ms": series},
                width=width,
                height=8,
                title=f"query latency (last {len(series)} in window)",
            )
        )
    return "\n".join(lines)


def events_line(records: Iterable[Dict[str, Any]]) -> str:
    """One-line live-stream summary for ``repro report --trace``.

    Folds the whole record list through a :class:`DashboardState` with
    an unbounded window, so the numbers printed here are *identical* to
    what ``repro top --once`` shows for the same file.
    """
    state = DashboardState(window_s=math.inf)
    state.ingest_all(records)
    if not state.total_solves and not state.window_latencies():
        return ""
    snap = state.snapshot()
    parts = [
        f"live events: {snap['solves']} solves "
        f"({snap['failures']} failed), "
        f"latency p50={1e3 * snap['p50_s']:.3f}ms "
        f"p99={1e3 * snap['p99_s']:.3f}ms"
    ]
    if snap["cache_hit_rate"] is not None:
        parts.append(f"cache hit rate={snap['cache_hit_rate']:.2f}")
    if snap["gap_max"] is not None:
        parts.append(f"gap max={snap['gap_max']:.3f}")
    return " | ".join(parts)


def follow_trace(
    handle: TextIO, *, poll_s: float = 0.5, idle_limit: Optional[float] = None
) -> Iterator[str]:
    """Yield complete lines from a growing JSONL file (``tail -f``).

    Partial lines (a producer mid-write) are buffered until their
    newline arrives — the follower never hands a torn record to the
    parser.  Stops after ``idle_limit`` seconds without new data
    (``None`` follows forever).
    """
    import time as _time

    remainder = ""
    idle = 0.0
    while True:
        chunk = handle.read()
        if chunk:
            idle = 0.0
            remainder += chunk
            while "\n" in remainder:
                line, remainder = remainder.split("\n", 1)
                if line.strip():
                    yield line
        else:
            if idle_limit is not None and idle >= idle_limit:
                return
            _time.sleep(poll_s)
            idle += poll_s
