"""Human-readable rendering of trace files — ``repro report --trace``.

Takes the record list produced by :mod:`repro.observability.export`
(live from a tracer/registry, or re-read from a JSONL trace file) and
prints the per-phase breakdown: one row per span path with call counts,
wall-clock and the paper's op-counts, followed by the metric
instruments.  Rendering lives in :mod:`repro.analysis` — the
observability layer stores and aggregates; presentation is an
analysis concern.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.analysis.tables import render_table
from repro.observability.export import (
    aggregate_spans,
    metric_records,
    span_records,
)

def phase_table(records: Iterable[Dict[str, Any]]) -> str:
    """The per-phase breakdown table for a record list."""
    rows = aggregate_spans(records)
    if not rows:
        return "(no spans in trace)"
    table_rows: List[List[Any]] = []
    for row in rows:
        indent = "  " * row["depth"]
        name = indent + row["path"].rsplit("/", 1)[-1]
        ops = sum(row["counts"].values())
        temp_s = row["traces"].get("temp_s_len")
        table_rows.append(
            [
                name,
                row["calls"],
                row["total_s"],
                1e3 * row["mean_s"],
                row["counts"].get("search_steps", 0),
                ops,
                temp_s["mean"] if temp_s else "-",
                temp_s["max"] if temp_s else "-",
            ]
        )
    return render_table(
        ["phase", "calls", "total s", "mean ms", "search steps", "ops",
         "mean |TEMP_S|", "max |TEMP_S|"],
        table_rows,
        "Per-phase breakdown",
    )


def metrics_table(records: Iterable[Dict[str, Any]]) -> str:
    """Counters/gauges first, then histogram percentiles."""
    metrics = metric_records(records)
    if not metrics:
        return ""
    scalar_rows = [
        [m["name"], m["type"], m["value"]]
        for m in metrics
        if m["type"] in ("counter", "gauge")
    ]
    histo_rows = [
        [m["name"], m["summary"]["count"], m["summary"]["mean"],
         m["summary"]["p50"], m["summary"]["p90"],
         m["summary"].get("p95", "-"),  # v1 traces predate the column
         m["summary"]["p99"], m["summary"]["max"]]
        for m in metrics
        if m["type"] == "histogram"
    ]
    parts = []
    if scalar_rows:
        parts.append(
            render_table(["metric", "type", "value"], scalar_rows, "Metrics")
        )
    if histo_rows:
        parts.append(
            render_table(
                ["histogram", "count", "mean", "p50", "p90", "p95", "p99",
                 "max"],
                histo_rows,
                "Latency / distribution metrics",
            )
        )
    return "\n\n".join(parts)


def figure2_line(records: Iterable[Dict[str, Any]]) -> str:
    """One-line cost-model summary when a traced solve is present."""
    for record in span_records(records):
        attrs = record.get("attrs", {})
        if "p_log_q" in attrs:
            return (
                f"cost model: n={attrs.get('n', '?')} p={attrs.get('p')} "
                f"q={attrs.get('q', 0):.2f} p log q={attrs.get('p_log_q', 0):.1f}"
            )
    return ""


def plan_cache_line(records: Iterable[Dict[str, Any]]) -> str:
    """One-line compiled-plan telemetry summary, when plans were used.

    Reads the ``engine.plan.*`` instruments exported by
    :meth:`repro.engine.PartitionEngine.snapshot_metrics`: the plan-cache
    gauges (resident plans, hits/misses/evictions) and the sweep
    counters, condensed into the number a capacity planner cares about —
    how many queries each compiled plan amortized.
    """
    scalars = {
        m["name"]: m["value"]
        for m in metric_records(records)
        if m["type"] in ("counter", "gauge")
        and m["name"].startswith("engine.plan.")
    }
    if not scalars:
        return ""
    compiled = scalars.get("engine.plan.compiled", 0)
    queries = scalars.get("engine.plan.queries", 0)
    amortized = f"{queries / compiled:.1f}" if compiled else "-"
    return (
        "compiled plans: "
        f"plans={scalars.get('engine.plan.cache.plans', 0):g} "
        f"hits={scalars.get('engine.plan.cache.hits', 0):g} "
        f"misses={scalars.get('engine.plan.cache.misses', 0):g} "
        f"evictions={scalars.get('engine.plan.cache.evictions', 0):g} | "
        f"sweeps={scalars.get('engine.plan.sweeps', 0):g} "
        f"queries={queries:g} "
        f"structures built={scalars.get('engine.plan.structures.built', 0):g} "
        f"reused={scalars.get('engine.plan.structures.reused', 0):g} | "
        f"{amortized} queries/plan"
    )


def render_trace_report(records: Iterable[Dict[str, Any]]) -> str:
    """The full ``repro report --trace`` output for a record list."""
    records = list(records)
    meta = next((r for r in records if r.get("kind") == "meta"), None)
    parts: List[str] = []
    if meta:
        described = {
            k: v
            for k, v in meta.items()
            if k not in ("kind", "schema") and not isinstance(v, (dict, list))
        }
        if described:
            parts.append(
                "trace: "
                + ", ".join(f"{k}={v}" for k, v in sorted(described.items()))
            )
    line = figure2_line(records)
    if line:
        parts.append(line)
    plans = plan_cache_line(records)
    if plans:
        parts.append(plans)
    # Streamed (schema v2) traces carry per-query events; summarize
    # them with the same math ``repro top`` uses so both agree.
    from repro.analysis.top import events_line

    events = events_line(records)
    if events:
        parts.append(events)
    parts.append(phase_table(records))
    metrics = metrics_table(records)
    if metrics:
        parts.append(metrics)
    return "\n\n".join(parts)
