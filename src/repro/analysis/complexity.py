"""Empirical complexity measurement and model fitting.

Backs two claims of Section 2.3.2:

1. *Linear on average when K/w_max is bounded* — "if K/w2 is bounded by
   some constant, then q also will be bounded by the same constant on
   the average", making the sweep cost ``O(n)``.
   :func:`linear_average_case` measures abstract operations (and
   optionally wall time) at a fixed ratio for growing ``n`` and fits
   ``a*n + b`` vs ``a*n log n + b`` models.
2. *Appendix B* — the expected TEMP_S length at step ``i`` is
   ``O(log q_i)`` for randomly ordered W values.
   :func:`temp_s_length_experiment` measures mean queue lengths against
   ``log2(q)``.

Fitting uses ordinary least squares via :mod:`numpy`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.bandwidth import bandwidth_stats
from repro.graphs.generators import bound_for_ratio, figure2_chain
from repro.instrumentation.rng import spawn_rng


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of ``y ~ a * model(n) + b``."""

    model_name: str
    a: float
    b: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.a * x + self.b


def fit_model(
    xs: Sequence[float], ys: Sequence[float], model_name: str
) -> FitResult:
    """Fit ``y = a * f(x) + b`` for ``f`` in {n, nlogn, logn, const}."""
    transforms: dict = {
        "n": lambda x: x,
        "nlogn": lambda x: x * math.log2(x) if x > 1 else 0.0,
        "logn": lambda x: math.log2(x) if x > 1 else 0.0,
        "const": lambda x: 1.0,
    }
    f = transforms[model_name]
    fx = np.array([f(x) for x in xs], dtype=float)
    y = np.array(ys, dtype=float)
    design = np.column_stack([fx, np.ones_like(fx)])
    coeffs, _res, _rank, _sv = np.linalg.lstsq(design, y, rcond=None)
    predictions = design @ coeffs
    ss_res = float(np.sum((y - predictions) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(model_name, float(coeffs[0]), float(coeffs[1]), r2)


@dataclass(frozen=True)
class ScalingPoint:
    n: int
    operations: float
    wall_time: float
    p: float
    q: float


def linear_average_case(
    ns: Sequence[int],
    ratio: float = 3.0,
    w_max: float = 100.0,
    repetitions: int = 3,
    measure_time: bool = True,
) -> Tuple[List[ScalingPoint], FitResult, FitResult]:
    """Measure Algorithm 4.1's cost at a fixed ``K/w_max`` ratio.

    Returns the raw points plus linear and ``n log n`` fits of the
    abstract operation count (``n`` sweep work + search steps): with the
    ratio fixed, ``q`` stays bounded and the linear model should win.
    """
    points: List[ScalingPoint] = []
    for n in ns:
        ops_samples: List[float] = []
        time_samples: List[float] = []
        p_samples: List[float] = []
        q_samples: List[float] = []
        for rep in range(repetitions):
            rng = spawn_rng(20260706, "linear", n, ratio, rep)
            chain = figure2_chain(n, w_max, rng)
            bound = bound_for_ratio(chain, ratio)
            start = time.perf_counter()
            stats = bandwidth_stats(chain, bound)
            elapsed = time.perf_counter() - start
            # Total abstract work: the O(n) sweep plus the queue searches.
            ops_samples.append(n + stats.r + stats.search_steps)
            time_samples.append(elapsed if measure_time else 0.0)
            p_samples.append(stats.p)
            q_samples.append(stats.q)
        points.append(
            ScalingPoint(
                n=n,
                operations=sum(ops_samples) / len(ops_samples),
                wall_time=sum(time_samples) / len(time_samples),
                p=sum(p_samples) / len(p_samples),
                q=sum(q_samples) / len(q_samples),
            )
        )
    xs = [pt.n for pt in points]
    ys = [pt.operations for pt in points]
    return points, fit_model(xs, ys, "n"), fit_model(xs, ys, "nlogn")


@dataclass(frozen=True)
class TempSPoint:
    n: int
    ratio: float
    q: float
    log2_q: float
    mean_temp_s_len: float
    max_temp_s_len: float


def temp_s_length_experiment(
    ns: Sequence[int],
    ratios: Sequence[float],
    w_max: float = 100.0,
    repetitions: int = 3,
) -> List[TempSPoint]:
    """Appendix-B measurement: TEMP_S queue length vs ``log2 q``."""
    points: List[TempSPoint] = []
    for n in ns:
        for ratio in ratios:
            qs: List[float] = []
            means: List[float] = []
            maxes: List[float] = []
            for rep in range(repetitions):
                rng = spawn_rng(20260706, "temps", n, ratio, rep)
                chain = figure2_chain(n, w_max, rng)
                bound = bound_for_ratio(chain, ratio)
                stats = bandwidth_stats(chain, bound)
                qs.append(stats.q)
                means.append(stats.mean_temp_s_len)
                maxes.append(stats.max_temp_s_len)
            q = sum(qs) / len(qs)
            points.append(
                TempSPoint(
                    n=n,
                    ratio=ratio,
                    q=q,
                    log2_q=math.log2(q) if q > 1 else 0.0,
                    mean_temp_s_len=sum(means) / len(means),
                    max_temp_s_len=sum(maxes) / len(maxes),
                )
            )
    return points


def runtime_comparison(
    algorithms: dict,
    ns: Sequence[int],
    ratio: float,
    w_max: float = 100.0,
    repetitions: int = 3,
) -> List[dict]:
    """Wall-time of several chain partitioners on identical instances.

    ``algorithms`` maps name -> callable(chain, bound); rows carry one
    mean time per algorithm, plus the shared optimum as a cross-check.
    """
    rows: List[dict] = []
    for n in ns:
        row: dict = {"n": n}
        times: dict = {name: [] for name in algorithms}
        optima: List[float] = []
        for rep in range(repetitions):
            rng = spawn_rng(20260706, "runtime", n, ratio, rep)
            chain = figure2_chain(n, w_max, rng)
            bound = bound_for_ratio(chain, ratio)
            rep_opt: List[float] = []
            for name, func in algorithms.items():
                start = time.perf_counter()
                result = func(chain, bound)
                times[name].append(time.perf_counter() - start)
                rep_opt.append(result.weight)
            spread = max(rep_opt) - min(rep_opt)
            if spread > 1e-6 * max(1.0, max(rep_opt)):
                raise AssertionError(
                    f"algorithms disagree at n={n}, rep={rep}: {rep_opt}"
                )
            optima.append(rep_opt[0])
        for name in algorithms:
            row[name] = sum(times[name]) / len(times[name])
        row["optimum"] = sum(optima) / len(optima)
        rows.append(row)
    return rows
