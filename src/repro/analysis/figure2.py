"""The Figure-2 simulation sweeps.

The paper: "We have done extensive simulation to obtain the relation
between n, p, q, K, p log q and maximum vertex weight (maximum module
execution time).  ...  for given n, p log q may be very low in many
cases (particularly for high and low K). ... the maximum value of
p log q is much less than n log n."

:func:`figure2_sweep` reruns that simulation family: chains with vertex
weights uniform on ``[1, w_max]``, the bound swept as a multiple of the
maximum vertex weight, several repetitions per point, everything seeded.
:func:`figure2_weight_sweep` varies ``w_max`` at fixed ``n`` and ratio
(the "maximum module execution time" axis).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Iterable, List, Sequence

from repro.analysis.stats import mean
from repro.core.bandwidth import bandwidth_stats
from repro.core.prime_subpaths import PrimeStructure
from repro.graphs.generators import bound_for_ratio, figure2_chain
from repro.instrumentation.rng import Seedable, spawn_rng


@dataclass(frozen=True)
class Fig2Point:
    """One averaged sweep point (all fields are means over repetitions)."""

    n: int
    ratio: float  # K / w_max
    w_max: float
    bound: float
    p: float
    q: float
    r: float
    p_log_q: float
    n_log_n: float
    mean_prime_length: float
    max_temp_s_len: float
    mean_temp_s_len: float
    search_steps: float

    @property
    def plogq_over_nlogn(self) -> float:
        return self.p_log_q / self.n_log_n if self.n_log_n else 0.0

    def as_row(self) -> List[float]:
        return [getattr(self, f.name) for f in fields(self)]


def _measure_once(
    n: int, w_max: float, ratio: float, seed_labels: Sequence[Seedable]
) -> dict:
    rng = spawn_rng(20260706, *seed_labels)
    chain = figure2_chain(n, w_max, rng)
    bound = bound_for_ratio(chain, ratio)
    stats = bandwidth_stats(chain, bound)
    structure = PrimeStructure.compute(chain, bound)
    return {
        "bound": bound,
        "p": stats.p,
        "q": stats.q,
        "r": stats.r,
        "p_log_q": stats.p_log_q,
        "n_log_n": stats.n_log_n,
        "mean_prime_length": structure.mean_prime_length(),
        "max_temp_s_len": stats.max_temp_s_len,
        "mean_temp_s_len": stats.mean_temp_s_len,
        "search_steps": stats.search_steps,
    }


def figure2_sweep(
    ns: Sequence[int],
    ratios: Sequence[float],
    repetitions: int = 3,
    w_max: float = 100.0,
) -> List[Fig2Point]:
    """The main Figure-2 grid: every (n, K/w_max ratio) pair, averaged."""
    points: List[Fig2Point] = []
    for n in ns:
        for ratio in ratios:
            samples = [
                _measure_once(n, w_max, ratio, ("fig2", n, ratio, rep))
                for rep in range(repetitions)
            ]
            points.append(
                Fig2Point(
                    n=n,
                    ratio=ratio,
                    w_max=w_max,
                    **{
                        key: mean([s[key] for s in samples])
                        for key in samples[0]
                    },
                )
            )
    return points


def figure2_weight_sweep(
    n: int,
    w_maxes: Sequence[float],
    ratio: float = 4.0,
    repetitions: int = 3,
) -> List[Fig2Point]:
    """Fix ``n`` and the K ratio; sweep the maximum module weight."""
    points: List[Fig2Point] = []
    for w_max in w_maxes:
        samples = [
            _measure_once(n, w_max, ratio, ("fig2w", n, w_max, ratio, rep))
            for rep in range(repetitions)
        ]
        points.append(
            Fig2Point(
                n=n,
                ratio=ratio,
                w_max=w_max,
                **{key: mean([s[key] for s in samples]) for key in samples[0]},
            )
        )
    return points


def headline_claims(points: Iterable[Fig2Point]) -> dict:
    """The two claims the paper draws from Figure 2, evaluated on a sweep.

    Returns ``max p log q`` vs ``n log n`` per n, and whether the
    low-for-extreme-K shape holds (p log q at the smallest and largest
    swept ratios below the per-n maximum).
    """
    by_n: dict = {}
    for point in points:
        by_n.setdefault(point.n, []).append(point)
    claims = {}
    for n, pts in by_n.items():
        pts = sorted(pts, key=lambda point: point.ratio)
        peak = max(point.p_log_q for point in pts)
        claims[n] = {
            "max_p_log_q": peak,
            "n_log_n": pts[0].n_log_n,
            "max_ratio_of_nlogn": (
                peak / pts[0].n_log_n if pts[0].n_log_n else 0.0
            ),
            "low_at_extremes": (
                pts[0].p_log_q <= peak and pts[-1].p_log_q <= peak
                and (pts[-1].p_log_q < 0.5 * peak or pts[0].p_log_q < 0.5 * peak)
            ),
        }
    return claims
