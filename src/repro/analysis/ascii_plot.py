"""Minimal ASCII scatter/line plots for terminal experiment output.

The paper's Figure 2 is a set of curves; the CLI renders the same
series as terminal plots so the shape claims are visible without a
plotting stack.  Deliberately tiny: fixed-size canvas, linear or log
axes, multiple labelled series.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

_MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log axis requires positive values")
        return math.log10(value)
    return value


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    log_x: bool = False,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render named ``(x, y)`` series onto a character canvas.

    Returns the plot as a string: title, canvas with y-axis labels,
    x-range line and a legend mapping markers to series names.
    """
    if not series or all(not points for points in series.values()):
        raise ValueError("nothing to plot")
    points_t: Dict[str, List[Tuple[float, float]]] = {}
    for name, points in series.items():
        points_t[name] = [
            (_transform(x, log_x), _transform(y, log_y)) for x, y in points
        ]
    xs = [x for pts in points_t.values() for x, _y in pts]
    ys = [y for pts in points_t.values() for _x, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for idx, (name, pts) in enumerate(points_t.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in pts:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            canvas[height - 1 - row][col] = marker

    def fmt(value: float, log: bool) -> str:
        return f"{10 ** value:.3g}" if log else f"{value:.3g}"

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = fmt(y_hi, log_y)
    bottom_label = fmt(y_lo, log_y)
    label_width = max(len(top_label), len(bottom_label))
    for r, row in enumerate(canvas):
        if r == 0:
            label = top_label.rjust(label_width)
        elif r == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    x_line = (
        " " * label_width
        + " +"
        + fmt(x_lo, log_x).ljust(width - 10)
        + fmt(x_hi, log_x).rjust(8)
    )
    lines.append(x_line)
    legend = "  ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}"
        for i, name in enumerate(points_t)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)
