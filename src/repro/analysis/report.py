"""One-shot reproduction report: every experiment, one command.

``python -m repro report`` runs a (fast, reduced-size) version of every
experiment in DESIGN.md's index, checks each paper claim
programmatically and prints a PASS/FAIL verdict table — the executable
summary of EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass
class ClaimResult:
    claim: str
    passed: bool
    detail: str
    seconds: float


def _check(claims: List[ClaimResult], claim: str, func: Callable[[], str]) -> None:
    start = time.perf_counter()
    try:
        detail = func()
        passed = True
    except AssertionError as exc:
        detail = str(exc) or "assertion failed"
        passed = False
    claims.append(ClaimResult(claim, passed, detail, time.perf_counter() - start))


def run_report(quick: bool = True) -> List[ClaimResult]:
    """Run all claim checks; ``quick`` shrinks instance sizes."""
    from repro.analysis.complexity import (
        linear_average_case,
        temp_s_length_experiment,
    )
    from repro.analysis.figure2 import figure2_sweep, headline_claims
    from repro.baselines import bandwidth_min_dp, bandwidth_min_nlogn
    from repro.core import bandwidth_min, bandwidth_stats
    from repro.core.bicriteria import lexicographic_chain_partition
    from repro.graphs.generators import bound_for_ratio, figure2_chain
    from repro.instrumentation.rng import spawn_rng

    n = 1000 if quick else 4000
    reps = 2 if quick else 3
    claims: List[ClaimResult] = []

    # --- Figure 2 ----------------------------------------------------
    points = figure2_sweep(
        [n], [1.2, 4.0, 16.0, 64.0, 0.28 * n], repetitions=reps
    )
    summary = headline_claims(points)[n]

    def fig2_max() -> str:
        ratio = summary["max_ratio_of_nlogn"]
        assert ratio < 0.5, f"max p log q at {100*ratio:.0f}% of n log n"
        return f"max p log q = {100*ratio:.0f}% of n log n"

    _check(claims, "Fig2: max p log q << n log n", fig2_max)

    def fig2_extremes() -> str:
        assert summary["low_at_extremes"]
        return "p log q low at extreme K"

    _check(claims, "Fig2: low for high and low K", fig2_extremes)

    def prime_length() -> str:
        point = next(p for p in points if p.ratio == 16.0)
        predicted = 2 * point.bound / (1.0 + point.w_max)
        assert abs(point.mean_prime_length - predicted) < 0.2 * predicted, (
            f"measured {point.mean_prime_length:.1f} vs {predicted:.1f}"
        )
        return (
            f"prime length {point.mean_prime_length:.1f} ~ "
            f"2K/(w1+w2) = {predicted:.1f}"
        )

    _check(claims, "S2.3.2: prime length ~ 2K/(w1+w2)", prime_length)

    # --- Appendix B ---------------------------------------------------
    def temps() -> str:
        pts = temp_s_length_experiment([n], [32.0, 256.0], repetitions=reps)
        for point in pts:
            assert point.mean_temp_s_len <= 3 * point.log2_q + 2
            assert point.mean_temp_s_len <= point.q / 3
        worst = max(pts, key=lambda point: point.q)
        return (
            f"mean |TEMP_S| = {worst.mean_temp_s_len:.1f} at "
            f"q = {worst.q:.0f} (log2 q = {worst.log2_q:.1f})"
        )

    _check(claims, "Appendix B: |TEMP_S| ~ log q", temps)

    # --- Linear average case -------------------------------------------
    def linear() -> str:
        sizes = [n, 2 * n, 4 * n]
        _points, lin, _nl = linear_average_case(
            sizes, ratio=3.0, repetitions=reps, measure_time=False
        )
        assert lin.r_squared > 0.999, f"R^2 = {lin.r_squared:.5f}"
        return f"linear fit R^2 = {lin.r_squared:.5f}"

    _check(claims, "S2.3.2: linear time at bounded K/w", linear)

    # --- Algorithm agreement -------------------------------------------
    def agreement() -> str:
        rng = spawn_rng(20260706, "report", n)
        chain = figure2_chain(n, 100.0, rng)
        bound = bound_for_ratio(chain, 8.0)
        a = bandwidth_min(chain, bound).weight
        b = bandwidth_min_nlogn(chain, bound).weight
        c = bandwidth_min_dp(chain, bound).weight
        assert abs(a - b) < 1e-6 and abs(a - c) < 1e-6
        return f"three algorithms agree: optimum {a:.1f}"

    _check(claims, "S2.3: algorithms agree on the optimum", agreement)

    def ops_win() -> str:
        rng = spawn_rng(20260706, "report-ops", n)
        chain = figure2_chain(4 * n, 100.0, rng)
        bound = bound_for_ratio(chain, 8.0)
        stats = bandwidth_stats(chain, bound)
        paper_ops = stats.n + stats.r + stats.search_steps
        assert paper_ops < stats.n_log_n
        return (
            f"{paper_ops:.0f} ops vs n log n = {stats.n_log_n:.0f} "
            f"({100 * paper_ops / stats.n_log_n:.0f}%)"
        )

    _check(claims, "S2.3.2: fewer operations than O(n log n)", ops_win)

    # --- Tree algorithms ------------------------------------------------
    def tree_claims() -> str:
        from repro.baselines.tree_dp import min_cuts_exact
        from repro.core import partition_tree, processor_min
        from repro.graphs.generators import random_tree

        tree = random_tree(14, spawn_rng(1, "report-tree"),
                           integer_weights=True)
        bound = 3.0 * tree.max_vertex_weight()
        greedy = processor_min(tree, bound)
        assert len(greedy.cut_edges) == min_cuts_exact(tree, bound)
        plan = partition_tree(tree, bound)
        assert plan.final_cut <= plan.bottleneck_cut
        return (
            f"Alg 2.2 optimal ({greedy.num_components} components); "
            "pipeline cut nests in bottleneck cut"
        )

    _check(claims, "S2.1/2.2: tree algorithms optimal", tree_claims)

    # --- Theorem 1 -------------------------------------------------------
    def theorem1() -> str:
        from repro.baselines import (
            enumerate_tree_optima,
            star_bandwidth_min,
        )
        from repro.graphs.tree import Tree

        star = Tree.star(0.0, [2, 3, 4, 5, 6], [10, 20, 30, 40, 50])
        _cut, weight = star_bandwidth_min(star, 9.0)
        oracle = enumerate_tree_optima(star, 9.0)
        assert abs(weight - oracle.min_bandwidth) < 1e-9
        return f"star optimum {weight:g} via knapsack == brute force"

    _check(claims, "Theorem 1: star <-> knapsack", theorem1)

    # --- Section 3 -------------------------------------------------------
    def realtime() -> str:
        from repro.graphs.generators import random_chain
        from repro.machine import SharedBus, SharedMemoryMachine
        from repro.realtime import RealTimeTask
        from repro.realtime.planner import compare_objectives

        chain = random_chain(60, spawn_rng(2, "report-rt"),
                             vertex_range=(1, 10), edge_range=(1, 100))
        task = RealTimeTask("r", chain.alpha, chain.beta,
                            deadline=4.0 * max(chain.alpha))
        machine = SharedMemoryMachine(64, interconnect=SharedBus(10.0))
        plans = {p.objective: p for p in compare_objectives(task, machine)}
        assert all(p.meets_deadline for p in plans.values())
        assert (
            plans["bandwidth"].traffic.total_demand
            <= plans["processors"].traffic.total_demand
        )
        return (
            f"bandwidth demand {plans['bandwidth'].traffic.total_demand:.0f}"
            f" <= processors-objective "
            f"{plans['processors'].traffic.total_demand:.0f}"
        )

    _check(claims, "S3: real-time objectives trade off as claimed", realtime)

    def des() -> str:
        from repro.core import bandwidth_min as bw
        from repro.desim import (
            LogicSimulator,
            ParallelLogicSimulator,
            circuit_supergraph,
        )
        from repro.desim.netlists import ring_counter

        circuit = ring_counter(48)
        profile = LogicSimulator(circuit).run(800.0)
        sg = circuit_supergraph(circuit, activity=profile.activity())
        cut = bw(sg.chain, 6.0 * sg.chain.max_vertex_weight())
        smart = sg.assignment_from_cut(cut.cut_indices)
        k = cut.num_components
        naive = [g % k for g in range(circuit.num_gates)]
        run_smart = ParallelLogicSimulator(circuit, smart).run(800.0)
        run_naive = ParallelLogicSimulator(circuit, naive).run(800.0)
        assert run_smart.final_values == run_naive.final_values
        assert run_smart.cross_messages < run_naive.cross_messages
        return (
            f"cross messages {run_smart.cross_messages} vs "
            f"{run_naive.cross_messages} (round robin), identical results"
        )

    _check(claims, "S3: partitioned simulation minimizes messages", des)

    def lexicographic() -> str:
        rng = spawn_rng(3, "report-lex")
        from repro.graphs.generators import random_chain

        chain = random_chain(40, rng)
        bound = 3.0 * chain.max_vertex_weight()
        result = lexicographic_chain_partition(chain, bound)
        free = bandwidth_min(chain, bound)
        assert result.bandwidth >= free.weight - 1e-9
        if result.cut_indices:
            assert max(
                chain.edge_weight(i) for i in result.cut_indices
            ) <= result.bottleneck + 1e-9
        return (
            f"bottleneck {result.bottleneck:.1f}, "
            f"bandwidth {result.bandwidth:.1f}"
        )

    _check(claims, "S3: lexicographic bottleneck+bandwidth", lexicographic)

    return claims


def render_report(claims: List[ClaimResult]) -> str:
    width = max(len(c.claim) for c in claims)
    lines = ["Reproduction report", "=" * (width + 40)]
    for c in claims:
        status = "PASS" if c.passed else "FAIL"
        lines.append(
            f"[{status}] {c.claim.ljust(width)}  {c.detail} "
            f"({c.seconds:.1f}s)"
        )
    failed = sum(1 for c in claims if not c.passed)
    lines.append("=" * (width + 40))
    lines.append(
        f"{len(claims) - failed}/{len(claims)} claims reproduced"
        + ("" if not failed else f" — {failed} FAILED")
    )
    return "\n".join(lines)
