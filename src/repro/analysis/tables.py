"""ASCII table rendering for benchmark and CLI output.

The benchmark harness prints the same rows/series the paper's Figure 2
reports; this module keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    formatted: List[List[str]] = [[_format_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in formatted)
    return "\n".join(out)
