"""Experiment drivers reproducing the paper's evaluation.

- :mod:`~repro.analysis.figure2` — the Figure-2 simulation sweeps
  relating ``n, p, q, K, p log q`` and the maximum vertex weight;
- :mod:`~repro.analysis.complexity` — empirical complexity fits (the
  linear-average-case claim of Section 2.3.2 and the Appendix-B TEMP_S
  length claim);
- :mod:`~repro.analysis.sweeps` — generic deterministic sweep runner;
- :mod:`~repro.analysis.stats` — small statistics helpers;
- :mod:`~repro.analysis.tables` — ASCII rendering for harness output;
- :mod:`~repro.analysis.trace_report` — per-phase rendering of
  observability trace files (``repro report --trace``).
"""

from repro.analysis.figure2 import Fig2Point, figure2_sweep, figure2_weight_sweep
from repro.analysis.stats import mean, stddev, summarize
from repro.analysis.tables import render_table
from repro.analysis.trace_report import render_trace_report

__all__ = [
    "Fig2Point",
    "figure2_sweep",
    "figure2_weight_sweep",
    "mean",
    "render_table",
    "render_trace_report",
    "stddev",
    "summarize",
]
