"""The benchmark ratchet: committed speedups CI must keep earning.

``benchmarks/test_bench_engine.py`` measures the engine's speedups over
the seed scalar path (the cached sweep, the compiled-plan sweep cold and
warm, the batched β sweep) and, when ``REPRO_BENCH_SNAPSHOT`` is set,
writes them to a JSON snapshot.  The repo commits one such snapshot
(``BENCH_engine.json``); this module compares a freshly measured
snapshot against it and fails when any committed speedup regressed by
more than the tolerance.

Only *ratio* fields ratchet.  Absolute medians (``median_ns``) are
recorded for context but never gated: wall-clock depends on the host,
while a speedup is measured against the seed path *on the same host in
the same run* and is therefore comparable across machines.  A benchmark
present in the baseline must exist in the fresh snapshot — silently
dropping a measurement is itself a regression.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

__all__ = ["SNAPSHOT_VERSION", "compare_snapshots", "render_comparison"]

#: Schema version of the snapshot files this module understands.
SNAPSHOT_VERSION = 1


def _check_schema(label: str, snapshot: Dict[str, Any]) -> None:
    version = snapshot.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(
            f"{label} snapshot has version {version!r}; "
            f"this tool understands version {SNAPSHOT_VERSION}"
        )
    if not isinstance(snapshot.get("benchmarks"), dict):
        raise ValueError(f"{label} snapshot has no 'benchmarks' mapping")


def compare_snapshots(
    baseline: Dict[str, Any],
    fresh: Dict[str, Any],
    tolerance: float = 0.20,
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Diff two snapshots; returns ``(rows, failures)``.

    One row per (benchmark, ratio-field) pair in the baseline, each with
    the baseline value, the fresh value, the relative change, and the
    gate floor ``baseline * (1 - tolerance)``.  ``failures`` holds the
    human-readable messages for every row below its floor and for every
    baseline benchmark missing from the fresh snapshot.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance:g}")
    _check_schema("baseline", baseline)
    _check_schema("fresh", fresh)
    rows: List[Dict[str, Any]] = []
    failures: List[str] = []
    fresh_benchmarks = fresh["benchmarks"]
    for name, base_entry in sorted(baseline["benchmarks"].items()):
        fresh_entry = fresh_benchmarks.get(name)
        if fresh_entry is None:
            failures.append(
                f"benchmark {name} is in the baseline but missing from the "
                f"fresh snapshot"
            )
            continue
        for field, base_value in sorted(base_entry.items()):
            if field == "median_ns" or not isinstance(
                base_value, (int, float)
            ):
                continue
            fresh_value = fresh_entry.get(field)
            floor = base_value * (1.0 - tolerance)
            row = {
                "benchmark": name,
                "field": field,
                "baseline": base_value,
                "fresh": fresh_value,
                "floor": round(floor, 2),
            }
            if not isinstance(fresh_value, (int, float)):
                failures.append(
                    f"{name}.{field}: fresh snapshot has no measurement "
                    f"(baseline {base_value:g})"
                )
                row["passed"] = False
            elif fresh_value < floor:
                failures.append(
                    f"{name}.{field} regressed: {fresh_value:g} < floor "
                    f"{floor:g} (baseline {base_value:g}, "
                    f"tolerance {tolerance:.0%})"
                )
                row["passed"] = False
            else:
                row["passed"] = True
            rows.append(row)
    return rows, failures


def render_comparison(
    rows: List[Dict[str, Any]], failures: List[str]
) -> str:
    """Human-readable ratchet report."""
    lines: List[str] = []
    header = (
        f"{'benchmark':<32} {'field':<10} {'baseline':>9} "
        f"{'fresh':>9} {'floor':>9}  verdict"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        fresh = row["fresh"]
        fresh_text = f"{fresh:>9g}" if isinstance(fresh, (int, float)) else (
            f"{'-':>9}"
        )
        lines.append(
            f"{row['benchmark']:<32} {row['field']:<10} "
            f"{row['baseline']:>9g} {fresh_text} {row['floor']:>9g}  "
            + ("ok" if row["passed"] else "FAIL")
        )
    lines.append("")
    for failure in failures:
        lines.append(f"FAIL: {failure}")
    lines.append(
        "ratchet: " + ("PASS" if not failures else "FAIL")
        + f" ({sum(1 for r in rows if r['passed'])}/{len(rows)} gates held)"
    )
    return "\n".join(lines)
