"""ASCII Gantt rendering of pipeline execution traces.

Turns the :class:`~repro.machine.executor.TraceSpan` list produced by
``simulate_pipeline(..., record_trace=True)`` into a terminal chart:
one row per stage, item digits marking compute, ``>`` marking the
stage's outgoing transfers — the textual analogue of the paper's
Figure 3 mapping illustration.
"""

from __future__ import annotations

from repro.machine.executor import PipelineExecution, TraceSpan


def render_gantt(
    execution: PipelineExecution,
    width: int = 78,
    max_items_labelled: int = 10,
) -> str:
    """Render a recorded execution as an ASCII Gantt chart.

    Compute spans show the item number modulo 10 (or ``#`` beyond
    ``max_items_labelled`` distinct items); transfer spans show ``>``.
    Later spans overwrite earlier ones in the rare sub-cell overlaps.
    """
    if execution.trace is None:
        raise ValueError(
            "execution has no trace — run simulate_pipeline with "
            "record_trace=True"
        )
    makespan = execution.makespan
    if makespan <= 0:
        raise ValueError("empty execution")
    k = execution.num_stages
    rows = [[" "] * width for _ in range(k)]

    def col(t: float) -> int:
        return min(width - 1, int(t / makespan * width))

    for span in execution.trace:
        lo, hi = col(span.start), col(span.end)
        if span.kind == "compute":
            mark = (
                str(span.item % 10)
                if span.item < max_items_labelled
                else "#"
            )
        else:
            mark = ">"
        for c in range(lo, max(hi, lo + 1)):
            rows[span.stage][c] = mark

    label_width = len(f"stage {k - 1}")
    lines = [
        f"{('stage ' + str(s)).rjust(label_width)} |{''.join(rows[s])}|"
        for s in range(k)
    ]
    scale = (
        " " * label_width
        + "  t=0"
        + " " * (width - 12)
        + f"t={makespan:.1f}"
    )
    lines.append(scale)
    return "\n".join(lines)


def utilization_bars(execution: PipelineExecution, width: int = 40) -> str:
    """Per-stage utilization as horizontal bars."""
    lines = []
    for stage, util in enumerate(execution.utilization):
        filled = int(round(util * width))
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"stage {stage:>2} [{bar}] {100 * util:5.1f}%")
    return "\n".join(lines)
