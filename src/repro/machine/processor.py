"""Processor model.

The paper's architecture graph associates a speed ``w(p_i)``
(instructions per second) with each processor; the shared-memory
machines considered are homogeneous, so a single speed is shared by
default, but heterogeneous speeds are representable for the
Bokhari-style baselines that support them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Processor:  # repro-lint: disable=REPRO002 (field defaults block slots on py39)
    """A processor with an id and a speed in work-units per time-unit."""

    ident: int
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError(f"processor {self.ident} has non-positive speed")

    def compute_time(self, work: float) -> float:
        """Time to execute ``work`` units of computation."""
        return work / self.speed
