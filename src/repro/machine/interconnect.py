"""Uniform-bandwidth interconnection networks with contention.

The paper's shared-memory assumption is that every link has the same
bandwidth (``w(l_i)`` identical for all ``i``) and latency is uniform —
the defining property that makes the partition→processor mapping
trivial.  What *differs* between bus, crossbar and multistage networks
is how transfers contend, which is exactly what the bandwidth- and
bottleneck-minimization objectives trade off:

- :class:`SharedBus` — one shared medium: all transfers serialize, so
  performance tracks the *total* cut weight (what Algorithm 4.1
  minimizes).
- :class:`Crossbar` — fully parallel point-to-point paths limited only
  by per-port serialization, so performance tracks the heaviest single
  flow (what Algorithm 2.1 minimizes).
- :class:`MultistageNetwork` — log-stage network in between: parallel
  like a crossbar, but internal stage conflicts shave effective
  bandwidth as utilization grows.

All three expose the same two-method interface used by the executor:
``transfer_time`` for an uncontended transfer and ``round_time`` for a
set of simultaneous transfers (one per sender) in a pipeline round.
"""

from __future__ import annotations

import math
from typing import Mapping, Tuple


class Interconnect:
    """Base class: uniform link bandwidth and latency."""

    __slots__ = ("bandwidth", "latency")

    def __init__(self, bandwidth: float = 1.0, latency: float = 0.0) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth = bandwidth
        self.latency = latency

    def transfer_time(self, volume: float) -> float:
        """Uncontended time to move ``volume`` units between any two
        processors (uniform by assumption)."""
        if volume <= 0:
            return 0.0
        return self.latency + volume / self.bandwidth

    def round_time(self, transfers: Mapping[Tuple[int, int], float]) -> float:
        """Time for a set of simultaneous transfers, keyed by
        ``(src, dst)`` processor pairs, with this network's contention."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(bw={self.bandwidth:g}, lat={self.latency:g})"


class SharedBus(Interconnect):
    """A single shared bus: transfers serialize completely."""

    __slots__ = ()

    def round_time(self, transfers: Mapping[Tuple[int, int], float]) -> float:
        total = sum(v for v in transfers.values() if v > 0)
        if total <= 0:
            return 0.0
        count = sum(1 for v in transfers.values() if v > 0)
        return count * self.latency + total / self.bandwidth


class Crossbar(Interconnect):
    """A crossbar: transfers proceed in parallel; each port (processor)
    serializes the transfers it participates in."""

    __slots__ = ()

    def round_time(self, transfers: Mapping[Tuple[int, int], float]) -> float:
        port_load: dict = {}
        port_count: dict = {}
        for (src, dst), volume in transfers.items():
            if volume <= 0:
                continue
            for port in (src, dst):
                port_load[port] = port_load.get(port, 0.0) + volume
                port_count[port] = port_count.get(port, 0) + 1
        if not port_load:
            return 0.0
        return max(
            port_count[p] * self.latency + port_load[p] / self.bandwidth
            for p in port_load
        )


class MultistageNetwork(Interconnect):
    """An Omega/butterfly-style network of ``log2(ports)`` stages.

    Parallel like a crossbar, but simultaneous transfers conflict inside
    shared stage links.  We use the standard analytical degradation: with
    ``t`` simultaneous transfers across ``ports`` endpoints, the expected
    slowdown factor is ``1 + (t - 1) / ports`` per stage traversal —
    mild for light traffic, approaching bus-like behaviour at
    saturation.  (An exact stage-conflict simulation would need concrete
    port numbers per transfer; the paper's arguments only require the
    qualitative middle ground.)
    """

    __slots__ = ("ports", "stages")

    def __init__(
        self, ports: int, bandwidth: float = 1.0, latency: float = 0.0
    ) -> None:
        super().__init__(bandwidth, latency)
        if ports < 2:
            raise ValueError("multistage network needs at least 2 ports")
        self.ports = ports
        self.stages = max(1, math.ceil(math.log2(ports)))

    def transfer_time(self, volume: float) -> float:
        if volume <= 0:
            return 0.0
        return self.stages * self.latency + volume / self.bandwidth

    def round_time(self, transfers: Mapping[Tuple[int, int], float]) -> float:
        active = [(k, v) for k, v in transfers.items() if v > 0]
        if not active:
            return 0.0
        contention = 1.0 + (len(active) - 1) / self.ports
        crossbar_like = Crossbar(self.bandwidth, self.latency).round_time(
            dict(active)
        )
        return self.stages * self.latency + contention * crossbar_like
