"""Shared-memory multiprocessor model — the paper's target architecture.

Section 1 characterizes the architecture: processors of uniform speed
connected by an interconnection network (crossbar, shared bus or
multistage) whose link bandwidth ``w(l_i)`` is the same for all links
and whose latency is symmetric and uniform — which is exactly why the
mapping of a partitioned task graph onto processors is trivial
(Section 3).  This package builds that machine:

- :mod:`~repro.machine.processor` / :mod:`~repro.machine.interconnect` —
  components (bus, crossbar, multistage contention models);
- :mod:`~repro.machine.machine` — the assembled machine;
- :mod:`~repro.machine.mapper` — the trivial partition→processor mapping
  (plus a folding mapper when processors are scarce);
- :mod:`~repro.machine.executor` — a pipelined execution simulator that
  turns a chain partition into throughput/makespan/traffic numbers;
- :mod:`~repro.machine.traffic` — network-demand accounting.
"""

from repro.machine.executor import PipelineExecution, TraceSpan, simulate_pipeline
from repro.machine.gantt import render_gantt, utilization_bars
from repro.machine.interconnect import (
    Crossbar,
    Interconnect,
    MultistageNetwork,
    SharedBus,
)
from repro.machine.machine import SharedMemoryMachine
from repro.machine.mapper import Mapping, map_partition
from repro.machine.processor import Processor
from repro.machine.traffic import TrafficReport, network_demand

__all__ = [
    "Crossbar",
    "Interconnect",
    "Mapping",
    "MultistageNetwork",
    "PipelineExecution",
    "Processor",
    "SharedBus",
    "SharedMemoryMachine",
    "TraceSpan",
    "TrafficReport",
    "map_partition",
    "network_demand",
    "render_gantt",
    "simulate_pipeline",
    "utilization_bars",
]
