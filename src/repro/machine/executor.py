"""Pipelined execution of a partitioned chain on the machine model.

Section 1 motivates linear task graphs with pipelined computations: "a
sequence of such problems (possibly with different input parameters) can
be 'fed' to the pipeline and keep all stages busy".  This simulator does
exactly that: each block of a chain partition becomes a pipeline stage
on its own processor; a stream of items flows through; stage-to-stage
transfers pay the interconnect (with its contention model).

The simulation is event-driven and exact for the model: a stage
processes items in order when (a) the item has arrived and (b) the stage
is idle; a finished item's data is handed to the interconnect, which
grants transfers in request order subject to its contention rules
(bus: full serialization; crossbar: per-port serialization; multistage:
crossbar plus a load-dependent slowdown).

The headline outputs — steady-state throughput, makespan, end-to-end
latency and total network traffic — are the quantities the paper's three
objectives trade off, so the machine benchmarks compare partitions
produced by each algorithm through this single lens.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graphs.chain import Chain
from repro.machine.interconnect import Crossbar, MultistageNetwork, SharedBus
from repro.machine.machine import SharedMemoryMachine


@dataclass
class TraceSpan:
    """One recorded activity interval (compute or transfer)."""

    __slots__ = ("kind", "stage", "item", "start", "end")

    kind: str  # "compute" | "transfer"
    stage: int
    item: int
    start: float
    end: float


@dataclass
class PipelineExecution:  # repro-lint: disable=REPRO002 (field defaults block slots on py39)
    """Results of one pipelined run."""

    num_stages: int
    num_items: int
    makespan: float
    first_item_latency: float
    stage_compute_times: List[float]
    stage_busy_time: List[float]
    total_traffic: float
    transfer_volumes: List[float]
    trace: Optional[List[TraceSpan]] = field(default=None, repr=False)

    @property
    def throughput(self) -> float:
        return self.num_items / self.makespan if self.makespan > 0 else float("inf")

    @property
    def utilization(self) -> List[float]:
        if self.makespan <= 0:
            return [1.0] * self.num_stages
        return [busy / self.makespan for busy in self.stage_busy_time]

    @property
    def bottleneck_stage(self) -> int:
        return max(
            range(self.num_stages), key=lambda s: self.stage_busy_time[s]
        )


class _LinkScheduler:
    """Grants transfers on the machine's interconnect in request order."""

    __slots__ = ("net", "_bus_free", "_port_free", "_in_flight")

    def __init__(self, machine: SharedMemoryMachine) -> None:
        self.net = machine.interconnect
        self._bus_free = 0.0
        self._port_free: Dict[int, float] = {}
        self._in_flight: List[float] = []  # done times, for multistage load

    def grant(self, now: float, src: int, dst: int, volume: float) -> float:
        """Return the completion time of a transfer requested at ``now``."""
        if volume <= 0:
            return now
        net = self.net
        if isinstance(net, SharedBus):
            start = max(now, self._bus_free)
            done = start + net.transfer_time(volume)
            self._bus_free = done
            return done
        if isinstance(net, MultistageNetwork):
            start = max(
                now,
                self._port_free.get(src, 0.0),
                self._port_free.get(dst, 0.0),
            )
            self._in_flight = [d for d in self._in_flight if d > start]
            contention = 1.0 + len(self._in_flight) / net.ports
            done = start + net.stages * net.latency + contention * volume / net.bandwidth
            self._port_free[src] = done
            self._port_free[dst] = done
            self._in_flight.append(done)
            return done
        # Crossbar (and the generic default): per-port serialization.
        start = max(
            now, self._port_free.get(src, 0.0), self._port_free.get(dst, 0.0)
        )
        done = start + net.transfer_time(volume)
        self._port_free[src] = done
        self._port_free[dst] = done
        return done


def simulate_pipeline(
    chain: Chain,
    cut_indices: Sequence[int],
    machine: SharedMemoryMachine,
    num_items: int,
    allow_folding: bool = False,
    stage_speed_factors: Optional[Sequence[float]] = None,
    record_trace: bool = False,
) -> PipelineExecution:
    """Run ``num_items`` through the pipeline induced by a chain cut.

    Each block of the cut becomes one stage; stage ``s`` runs on
    processor ``s`` (the trivial shared-memory mapping).  Raises
    ``ValueError`` when blocks outnumber processors and folding is off
    (with folding, each stage is treated as its own logical processor —
    time multiplexing is not modelled).

    ``stage_speed_factors`` injects per-stage slowdowns/speedups (e.g.
    ``[1.0, 0.5, 1.0]`` halves stage 1's speed) — used to study how a
    degraded processor moves the pipeline bottleneck.

    ``record_trace=True`` attaches per-(stage, item) compute and
    transfer spans (:class:`TraceSpan`) to the result — render them
    with :func:`repro.machine.gantt.render_gantt`.
    """
    if num_items < 1:
        raise ValueError("need at least one item")
    blocks = chain.cut_components(cut_indices)
    k = len(blocks)
    if k > machine.num_processors and not allow_folding:
        raise ValueError(
            f"{k} stages exceed {machine.num_processors} processors"
        )
    if stage_speed_factors is None:
        factors = [1.0] * k
    else:
        factors = [float(f) for f in stage_speed_factors]
        if len(factors) != k:
            raise ValueError(
                f"{len(factors)} speed factors for {k} stages"
            )
        if any(f <= 0 for f in factors):
            raise ValueError("speed factors must be positive")
    speed = machine.speed
    compute = [
        chain.segment_weight(lo, hi) / (speed * factors[s])
        for s, (lo, hi) in enumerate(blocks)
    ]
    boundaries = sorted(set(cut_indices))
    volumes = [chain.edge_weight(b) for b in boundaries]

    scheduler = _LinkScheduler(machine)
    busy = [False] * k
    next_item = [0] * k
    arrived = [0] * k
    arrived[0] = num_items  # the input stream is fully available
    busy_time = [0.0] * k
    completions: List[float] = [0.0] * num_items
    # Bounded output buffering: each stage keeps one transfer in flight
    # and queues finished items behind it.  Without this, a fast early
    # stage's prefetched transfers monopolize shared ports/bus slots
    # (a convoy no real pipeline with finite buffers exhibits).
    out_queue: List[List[int]] = [[] for _ in range(k)]
    sending = [False] * k

    heap: List[Tuple[float, int, int, int, int]] = []
    seq = 0

    def push(time: float, kind: int, stage: int, item: int) -> None:
        nonlocal seq
        heapq.heappush(heap, (time, seq, kind, stage, item))
        seq += 1

    _COMPUTE_DONE, _ARRIVE, _SEND_DONE = 0, 1, 2

    trace: Optional[List[TraceSpan]] = [] if record_trace else None

    def try_start(stage: int, now: float) -> None:
        if busy[stage]:
            return
        t = next_item[stage]
        if t >= num_items or arrived[stage] <= t:
            return
        busy[stage] = True
        next_item[stage] += 1
        busy_time[stage] += compute[stage]
        if trace is not None:
            trace.append(
                TraceSpan("compute", stage, t, now, now + compute[stage])
            )
        push(now + compute[stage], _COMPUTE_DONE, stage, t)

    def pump_sender(stage: int, now: float) -> None:
        if sending[stage] or not out_queue[stage]:
            return
        item = out_queue[stage].pop(0)
        sending[stage] = True
        done = scheduler.grant(
            now, src=stage, dst=stage + 1, volume=volumes[stage]
        )
        if trace is not None and done > now:
            trace.append(TraceSpan("transfer", stage, item, now, done))
        push(done, _ARRIVE, stage + 1, item)
        push(done, _SEND_DONE, stage, item)

    try_start(0, 0.0)
    while heap:
        now, _s, kind, stage, item = heapq.heappop(heap)
        if kind == _COMPUTE_DONE:
            busy[stage] = False
            if stage + 1 < k:
                out_queue[stage].append(item)
                pump_sender(stage, now)
            else:
                completions[item] = now
            try_start(stage, now)
        elif kind == _ARRIVE:
            arrived[stage] += 1
            try_start(stage, now)
        else:  # _SEND_DONE
            sending[stage] = False
            pump_sender(stage, now)

    makespan = completions[-1]
    return PipelineExecution(
        num_stages=k,
        num_items=num_items,
        makespan=makespan,
        first_item_latency=completions[0],
        stage_compute_times=compute,
        stage_busy_time=busy_time,
        total_traffic=num_items * sum(volumes),
        transfer_volumes=volumes,
        trace=trace,
    )
