"""The assembled shared-memory multiprocessor."""

from __future__ import annotations

from typing import List, Optional

from repro.machine.interconnect import Interconnect, SharedBus
from repro.machine.processor import Processor


class SharedMemoryMachine:
    """``num_processors`` homogeneous processors behind one interconnect.

    The architecture graph ``G_arch`` of the paper with uniform
    ``w(p_i)`` and ``w(l_i)`` — speed and interconnect bandwidth are the
    two knobs; topology never matters beyond the contention model
    because latency is uniform.
    """

    __slots__ = ("processors", "interconnect")

    def __init__(
        self,
        num_processors: int,
        speed: float = 1.0,
        interconnect: Optional[Interconnect] = None,
    ) -> None:
        if num_processors < 1:
            raise ValueError("machine needs at least one processor")
        self.processors: List[Processor] = [
            Processor(i, speed) for i in range(num_processors)
        ]
        self.interconnect = interconnect or SharedBus()

    @property
    def num_processors(self) -> int:
        return len(self.processors)

    @property
    def speed(self) -> float:
        return self.processors[0].speed

    def is_homogeneous(self) -> bool:
        return len({p.speed for p in self.processors}) == 1

    def __repr__(self) -> str:
        return (
            f"SharedMemoryMachine(p={self.num_processors}, "
            f"speed={self.speed:g}, net={self.interconnect!r})"
        )
