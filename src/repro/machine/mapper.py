"""Partition → processor mapping.

Section 3: "The unique characteristics of shared memory architecture
that its network latency is symmetric and uniform renders a
straightforward mapping of the optimally partitioned graph onto the
available processors, provided that the number of processors is greater
than or equal to that of the partitions."  :func:`map_partition`
implements exactly that identity mapping — and, as a practical
extension, a longest-processing-time folding when components outnumber
processors (each processor then runs several components sequentially).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.machine.machine import SharedMemoryMachine


@dataclass
class Mapping:
    """Assignment of partition components to processors."""

    __slots__ = ("processor_of", "loads", "folded")

    processor_of: List[int]  # component index -> processor id
    loads: List[float]  # per-processor total component weight
    folded: bool  # True when several components share a processor

    @property
    def max_load(self) -> float:
        return max(self.loads)

    def components_on(self, processor: int) -> List[int]:
        return [
            c for c, p in enumerate(self.processor_of) if p == processor
        ]


def map_partition(
    component_weights: Sequence[float],
    machine: SharedMemoryMachine,
    allow_folding: bool = False,
) -> Mapping:
    """Map components to processors on a shared-memory machine.

    With enough processors this is the trivial identity mapping of the
    paper (component ``i`` → processor ``i``; all placements are
    equivalent under uniform latency).  When components outnumber
    processors, ``allow_folding=True`` packs them greedily
    (longest-processing-time first) to keep loads balanced; otherwise a
    ``ValueError`` is raised, matching the paper's proviso.
    """
    k = len(component_weights)
    m = machine.num_processors
    if k == 0:
        raise ValueError("no components to map")
    if k <= m:
        processor_of = list(range(k))
        loads = [0.0] * m
        for c, w in enumerate(component_weights):
            loads[c] = w
        return Mapping(processor_of, loads, folded=False)
    if not allow_folding:
        raise ValueError(
            f"{k} components exceed {m} processors; re-partition with a "
            "larger bound K or enable folding"
        )
    order = sorted(range(k), key=lambda c: -component_weights[c])
    loads = [0.0] * m
    processor_of = [0] * k
    for c in order:
        target = min(range(m), key=lambda p: loads[p])
        processor_of[c] = target
        loads[target] += component_weights[c]
    return Mapping(processor_of, loads, folded=True)
