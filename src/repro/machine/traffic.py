"""Network-demand accounting for partitions on the shared-memory machine.

Computes, for a chain partition, the per-boundary and aggregate traffic
the interconnection network must carry per pipeline item — the static
counterpart of the executor's dynamic measurements, and directly the
quantities the paper's objectives minimize:

- ``total_demand``   — the bandwidth objective, ``sum_{e in S} beta(e)``;
- ``max_link_demand`` — the bottleneck objective, ``max_{e in S} beta(e)``;
- ``max_processor_demand`` — the real-time study's "highest traffic
  demand of a single processor on the network" (each stage sends its
  right boundary and receives its left one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.graphs.chain import Chain


@dataclass(frozen=True)
class TrafficReport:
    """Static per-item network demand of a chain partition."""

    __slots__ = (
        "boundary_volumes",
        "total_demand",
        "max_link_demand",
        "processor_demands",
        "max_processor_demand",
    )

    boundary_volumes: tuple
    total_demand: float
    max_link_demand: float
    processor_demands: tuple
    max_processor_demand: float

    def saturation(self, bandwidth: float) -> float:
        """Fraction of one time-unit the network is busy per item on a
        serializing (bus) network of the given bandwidth."""
        return self.total_demand / bandwidth


def network_demand(chain: Chain, cut_indices: Sequence[int]) -> TrafficReport:
    """Static traffic report for a chain cut."""
    boundaries = sorted(set(cut_indices))
    volumes = [chain.edge_weight(b) for b in boundaries]
    k = len(boundaries) + 1
    per_processor: List[float] = [0.0] * k
    for idx, volume in enumerate(volumes):
        per_processor[idx] += volume  # stage idx sends
        per_processor[idx + 1] += volume  # stage idx+1 receives
    return TrafficReport(
        boundary_volumes=tuple(volumes),
        total_demand=sum(volumes),
        max_link_demand=max(volumes) if volumes else 0.0,
        processor_demands=tuple(per_processor),
        max_processor_demand=max(per_processor) if per_processor else 0.0,
    )
