"""The paper's algorithms: Sections 2.1, 2.2 and 2.3 / Appendix A.

Public entry points:

- :func:`~repro.core.bottleneck.bottleneck_min` /
  :func:`~repro.core.bottleneck.bottleneck_min_naive` — Algorithm 2.1.
- :func:`~repro.core.processor_min.processor_min` — Algorithm 2.2.
- :func:`~repro.core.bandwidth.bandwidth_min` — Algorithm 4.1, the
  ``O(n + p log q)`` bandwidth minimizer for chains.
- :func:`~repro.core.recurrence.bandwidth_min_naive` — the naive
  ``O(sum |P_i|)`` recurrence from Section 2.3.
- :func:`~repro.core.pipeline.partition_tree` /
  :func:`~repro.core.pipeline.partition_chain` — the combined pipeline.
"""

from repro.core.bandwidth import ChainCutResult, bandwidth_min, bandwidth_stats
from repro.core.bicriteria import (
    LexicographicResult,
    lexicographic_chain_partition,
)
from repro.core.bottleneck import (
    TreeCutResult,
    bottleneck_min,
    bottleneck_min_naive,
)
from repro.core.inverse import (
    ChainBudgetPlan,
    chain_pareto_frontier,
    min_bound_for_tree,
    partition_chain_for_processors,
    tree_pareto_frontier,
)
from repro.core.feasibility import (
    InfeasibleBoundError,
    PartitioningError,
    validate_bound,
)
from repro.core.pipeline import TreePartitionPlan, partition_chain, partition_tree
from repro.core.prime_subpaths import (
    PrimeStructure,
    PrimeSubpath,
    ReducedEdge,
    compute_prime_structure,
    find_prime_subpaths,
    reduce_edges,
)
from repro.core.processor_min import min_processors, processor_min
from repro.core.recurrence import bandwidth_min_naive
from repro.core.ring import RingCutResult, ring_bandwidth_min
from repro.core.temp_s import SolutionNode, TempSQueue

__all__ = [
    "ChainBudgetPlan",
    "ChainCutResult",
    "chain_pareto_frontier",
    "compute_prime_structure",
    "LexicographicResult",
    "lexicographic_chain_partition",
    "RingCutResult",
    "min_bound_for_tree",
    "partition_chain_for_processors",
    "ring_bandwidth_min",
    "tree_pareto_frontier",
    "InfeasibleBoundError",
    "PartitioningError",
    "PrimeStructure",
    "PrimeSubpath",
    "ReducedEdge",
    "SolutionNode",
    "TempSQueue",
    "TreeCutResult",
    "TreePartitionPlan",
    "bandwidth_min",
    "bandwidth_min_naive",
    "bandwidth_stats",
    "bottleneck_min",
    "bottleneck_min_naive",
    "find_prime_subpaths",
    "min_processors",
    "partition_chain",
    "partition_tree",
    "processor_min",
    "reduce_edges",
    "validate_bound",
]
