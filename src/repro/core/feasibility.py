"""Feasibility checks shared by all partitioning algorithms.

Every problem in the paper carries the *execution-time bound* condition:
after removing the cut, no connected component may weigh more than ``K``.
Since cutting every edge leaves single vertices, the bound is achievable
iff every vertex weight is at most ``K`` (the paper assumes
``K > max_i alpha_i``; we accept equality, which still admits the
all-singletons partition).
"""

from __future__ import annotations

from typing import Iterable


class PartitioningError(Exception):
    """Base class for partitioning failures."""


class InfeasibleBoundError(PartitioningError):
    """Raised when no cut can satisfy the execution-time bound ``K``."""

    def __init__(self, bound: float, max_weight: float) -> None:
        super().__init__(
            f"bound K={bound:g} is below the maximum vertex weight "
            f"{max_weight:g}; no partition can satisfy the execution-time "
            "bound"
        )
        self.bound = bound
        self.max_weight = max_weight


def validate_bound(vertex_weights: Iterable[float], bound: float) -> float:
    """Validate ``K`` against the vertex weights and return the max weight.

    Raises :class:`InfeasibleBoundError` when some vertex alone exceeds
    ``K`` and :class:`ValueError` on a non-positive bound.
    """
    if bound <= 0:
        raise ValueError(f"bound K must be positive, got {bound:g}")
    max_weight = max(vertex_weights)
    if max_weight > bound:
        raise InfeasibleBoundError(bound, max_weight)
    return max_weight
