"""Prime (minimal critical) subpaths of a chain — Section 2.3.

A *critical subpath* is a contiguous run of tasks whose total vertex
weight exceeds the bound ``K``.  A cut is feasible iff it removes at
least one edge from every critical subpath.  A critical subpath that
contains another critical subpath is *dominated*; the minimal ones are
*prime*, and hitting all primes suffices.  The paper shows there are at
most ``n - 1`` primes and that they can be found in linear time; this
module does so with a two-pointer sweep.

Throughout, task indices are 0-based and edge ``j`` joins tasks ``j``
and ``j + 1``.  A prime subpath over tasks ``[first_task .. last_task]``
has edge set ``[first_task .. last_task - 1]`` — always non-empty
because a single task never exceeds ``K`` (feasibility is validated
first).

The module also performs the paper's *non-redundant edge* reduction: if
two edges belong to exactly the same set of prime subpaths, the heavier
one can never appear in an optimal solution, so only the lightest edge
of each membership class is kept.  The paper bounds the number of kept
edges by ``min(n - 1, 2p - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, NamedTuple, Optional, Tuple

from repro.core.feasibility import validate_bound
from repro.graphs.chain import Chain
from repro.instrumentation.counters import OpCounter
from repro.verify.contracts import complexity

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.observability import Tracer


class PrimeSubpath(NamedTuple):
    """A minimal critical subpath.

    ``first_task .. last_task`` are the tasks it covers (inclusive);
    its edge interval is ``first_edge .. last_edge`` with
    ``first_edge == first_task`` and ``last_edge == last_task - 1``.
    """

    first_task: int
    last_task: int
    weight: float

    @property
    def first_edge(self) -> int:
        return self.first_task

    @property
    def last_edge(self) -> int:
        return self.last_task - 1

    @property
    def num_tasks(self) -> int:
        return self.last_task - self.first_task + 1

    @property
    def num_edges(self) -> int:
        return self.last_task - self.first_task

    def contains_edge(self, edge: int) -> bool:
        return self.first_edge <= edge <= self.last_edge


@complexity(
    "n",
    counters=("prime_tasks_scanned", "prime_window_advances", "prime_candidates"),
)
def find_prime_subpaths(
    chain: Chain, bound: float, counter: Optional[OpCounter] = None
) -> List[PrimeSubpath]:
    """All prime subpaths of ``chain`` under the bound, left to right.

    Two-pointer sweep, ``O(n)``.  For each left endpoint ``a`` the sweep
    finds the smallest ``b`` with ``weight(a..b) > bound``; the candidate
    ``[a, b]`` is prime iff no critical subpath nests strictly inside,
    which (with ``b`` minimal per ``a`` and non-decreasing in ``a``)
    happens exactly when the next candidate ends strictly later.

    Both endpoint sequences of the returned list are strictly
    increasing, which is the ordering property Algorithm 4.1 relies on.

    ``counter`` receives the sweep's work, derived analytically from the
    loop's final state (no per-iteration branches in the hot loop):
    ``prime_tasks_scanned`` left-endpoint iterations,
    ``prime_window_advances`` total right-pointer movement and
    ``prime_candidates`` candidate windows — each non-decreasing under
    chain extension, which the complexity gate's monotone fit relies on.
    """
    validate_bound(chain.alpha, bound)
    n = chain.num_tasks
    prefix = chain.prefix_weights()

    # ends[a] = smallest b >= a with weight(a..b) > bound, or None.
    candidates: List[Tuple[int, int]] = []
    b = 0
    scanned = n
    for a in range(n):
        if b <= a:
            # A single task is never critical: feasibility checked
            # max(alpha) <= K on the exact weights, and the prefix
            # difference for one task can exceed K only by cancellation
            # noise.  Start every window at two tasks so a spurious
            # zero-edge "prime" (unhittable by any cut) cannot arise.
            b = a + 1
        # Grow b until the window exceeds the bound.
        while b < n and prefix[b + 1] - prefix[a] <= bound:
            b += 1
        if b == n:
            scanned = a + 1
            break  # no window starting at >= a can exceed the bound
        candidates.append((a, b))
    if counter is not None:
        counter.add("prime_tasks_scanned", scanned)
        counter.add("prime_window_advances", b)
        counter.add("prime_candidates", len(candidates))

    primes: List[PrimeSubpath] = []
    for idx, (a, b) in enumerate(candidates):
        if idx + 1 < len(candidates) and candidates[idx + 1][1] == b:
            continue  # dominated: [a+1, b] is critical and nested inside
        primes.append(PrimeSubpath(a, b, prefix[b + 1] - prefix[a]))
    return primes


def edge_membership_intervals(
    primes: List[PrimeSubpath], num_edges: int
) -> Tuple[List[int], List[int]]:
    """For every edge ``j``, the contiguous range of prime indices
    containing it.

    Returns ``(lo, hi)`` arrays: edge ``j`` belongs to primes
    ``lo[j] .. hi[j]`` inclusive, or to none when ``lo[j] > hi[j]``.
    Because prime subpaths are sorted with strictly increasing endpoints,
    membership is always a contiguous interval, and the arrays are
    computed with two monotone pointers in ``O(n + p)``.

    The paper's ``gamma_j`` (index of the last prime wholly to the left
    of ``e_j``) is ``lo[j] - 1`` in 0-based terms, and the paper's
    ``q_j`` (number of primes containing ``e_j``) is
    ``hi[j] - lo[j] + 1``.
    """
    p = len(primes)
    lo = [p] * num_edges  # min i with last_edge >= j
    hi = [-1] * num_edges  # max i with first_edge <= j
    # REPRO017-adjacent: strip the NamedTuple attribute dispatch out of
    # the monotone-pointer loops — one flat list index per probe.
    last_edges = [prime.last_edge for prime in primes]
    first_edges = [prime.first_edge for prime in primes]
    lo_ptr = 0
    hi_ptr = -1
    for j in range(num_edges):
        while lo_ptr < p and last_edges[lo_ptr] < j:
            lo_ptr += 1
        while hi_ptr + 1 < p and first_edges[hi_ptr + 1] <= j:
            hi_ptr += 1
        lo[j] = lo_ptr
        hi[j] = hi_ptr
    return lo, hi


class ReducedEdge(NamedTuple):
    """A non-redundant edge kept for Algorithm 4.1.

    ``index``/``weight`` identify the chain edge; ``first_prime`` and
    ``last_prime`` give its (contiguous) prime-subpath membership.
    """

    index: int
    weight: float
    first_prime: int
    last_prime: int

    @property
    def gamma(self) -> int:
        """0-based ``gamma_j``: primes ``0 .. gamma`` all lie left of the
        edge (``-1`` when the edge is inside the very first prime)."""
        return self.first_prime - 1

    @property
    def q(self) -> int:
        """Number of primes containing this edge (the paper's ``q_j``)."""
        return self.last_prime - self.first_prime + 1


def reduce_edges(
    chain: Chain,
    primes: List[PrimeSubpath],
    membership: Optional[Tuple[List[int], List[int]]] = None,
    apply_reduction: bool = True,
    counter: Optional[OpCounter] = None,
) -> List[ReducedEdge]:
    """The non-redundant edge list, in increasing edge order.

    Edges covered by no prime subpath are dropped (they can never pay
    for themselves in a minimum-weight hitting set).  Among edges with
    identical prime membership, only a minimum-weight one is kept
    (leftmost on ties, for determinism).  Pass
    ``apply_reduction=False`` to keep every covered edge — used by the
    ablation benchmarks to measure what the reduction buys.

    ``counter`` receives ``prime_edge_scans`` — one unit per chain edge
    examined, i.e. exactly ``n - 1`` (analytic, outside the loop).
    """
    if counter is not None:
        counter.add("prime_edge_scans", chain.num_edges)
    lo, hi = membership or edge_membership_intervals(primes, chain.num_edges)
    kept: List[ReducedEdge] = []
    beta = chain.beta
    for j in range(chain.num_edges):
        # REPRO017-adjacent: one subscript per interval bound per lap.
        lo_j = lo[j]
        hi_j = hi[j]
        if lo_j > hi_j:
            continue  # edge in no prime subpath
        weight_j = beta[j]
        candidate = ReducedEdge(j, weight_j, lo_j, hi_j)
        tail = kept[-1] if kept else None
        if (
            apply_reduction
            and tail is not None
            and tail.first_prime == lo_j
            and tail.last_prime == hi_j
        ):
            if weight_j < tail.weight:
                kept[-1] = candidate
        else:
            kept.append(candidate)
    return kept


@dataclass
class PrimeStructure:
    """Everything Algorithm 4.1 needs, precomputed in ``O(n)``.

    Also carries the quantities Figure 2 plots: ``p`` (prime count),
    ``r`` (non-redundant edge count), the per-edge ``q_j`` values and
    their mean ``q``.
    """

    __slots__ = ("chain", "bound", "primes", "edges")

    chain: Chain
    bound: float
    primes: List[PrimeSubpath]
    edges: List[ReducedEdge]

    @classmethod
    def compute(
        cls,
        chain: Chain,
        bound: float,
        apply_reduction: bool = True,
        backend: str = "python",
        counter: Optional[OpCounter] = None,
    ) -> "PrimeStructure":
        """Build the structure with the requested backend.

        ``backend="numpy"`` returns the duck-typed
        :class:`repro.engine.kernels.ArrayPrimeStructure` (identical
        rows, array storage); ``"python"`` is the reference path.
        """
        if backend != "python":
            return compute_prime_structure(
                chain, bound, apply_reduction=apply_reduction, backend=backend
            )
        primes = find_prime_subpaths(chain, bound, counter=counter)
        edges = reduce_edges(
            chain, primes, apply_reduction=apply_reduction, counter=counter
        )
        return cls(chain, bound, primes, edges)

    @property
    def p(self) -> int:
        return len(self.primes)

    @property
    def r(self) -> int:
        return len(self.edges)

    @property
    def q_values(self) -> List[int]:
        return [edge.q for edge in self.edges]

    @property
    def q(self) -> float:
        if not self.edges:
            return 0.0
        return sum(edge.q for edge in self.edges) / len(self.edges)

    def mean_prime_length(self) -> float:
        """Average prime subpath length in tasks (Section 2.3.2 bound:
        at most ``2K / (w1 + w2)`` under uniform weights, in the
        large-``K`` regime)."""
        if not self.primes:
            return 0.0
        return sum(sp.num_tasks for sp in self.primes) / len(self.primes)

    def min_prime_weight(self) -> float:
        """Smallest prime-subpath weight (``inf`` when no primes).

        For any bound ``K'`` with ``bound <= K' < min_prime_weight()``
        every minimal critical window — and hence this whole structure —
        is unchanged, which is what the engine cache's monotone
        warm-start exploits.
        """
        if not self.primes:
            return float("inf")
        return min(sp.weight for sp in self.primes)


@complexity(
    "n",
    counters=(
        "prime_tasks_scanned",
        "prime_window_advances",
        "prime_candidates",
        "prime_edge_scans",
    ),
)
def compute_prime_structure(
    chain: Chain,
    bound: float,
    apply_reduction: bool = True,
    backend: str = "python",
    tracer: Optional["Tracer"] = None,
    counter: Optional[OpCounter] = None,
) -> Any:
    """Backend dispatcher for the ``O(n)`` preprocessing.

    ``backend="python"`` returns the reference :class:`PrimeStructure`;
    ``backend="numpy"`` dispatches to the vectorized kernels in
    :mod:`repro.engine.kernels` and returns an ``ArrayPrimeStructure``
    with identical rows.  Both satisfy the same interface, so callers
    (Algorithm 4.1, the naive recurrence, the Figure-2 sweeps) never
    need to know which one they hold.

    ``tracer`` (a :class:`repro.observability.Tracer`) records the two
    preprocessing phases as nested spans with the paper's quantities
    (``p``, ``r``) attached; ``None`` or a disabled tracer costs one
    branch.  ``counter`` receives the reference sweep's analytic op
    counts (see :func:`find_prime_subpaths`); it is a reference-path
    feature — the vectorized backend does not thread it.
    """
    if backend == "python":
        if tracer is None or not tracer.enabled:
            return PrimeStructure.compute(
                chain, bound, apply_reduction=apply_reduction, counter=counter
            )
        with tracer.span("find_primes", n=chain.num_tasks, bound=bound) as sp:
            primes = find_prime_subpaths(chain, bound, counter=counter)
            sp.set("p", len(primes))
        with tracer.span("reduce_edges", num_edges=chain.num_edges) as sp:
            edges = reduce_edges(
                chain, primes, apply_reduction=apply_reduction, counter=counter
            )
            sp.set("r", len(edges))
        return PrimeStructure(chain, bound, primes, edges)
    if backend == "numpy":
        from repro.engine.kernels import compute_prime_structure_numpy

        return compute_prime_structure_numpy(
            chain, bound, apply_reduction=apply_reduction, tracer=tracer
        )
    raise ValueError(f"unknown backend {backend!r}; use 'python' or 'numpy'")
