"""Bandwidth minimization for linear task graphs — Algorithm 4.1.

Given a chain with vertex weights ``alpha`` and edge weights ``beta``
and a bound ``K >= max alpha``, find a minimum-total-weight edge cut
``S`` such that every component of ``P - S`` weighs at most ``K``
(Section 2.3 of the paper).

The algorithm:

1. compute the ``p`` prime subpaths and reduce to ``r <= min(n-1, 2p-1)``
   non-redundant edges — ``O(n)``
   (:mod:`repro.core.prime_subpaths`);
2. sweep the non-redundant edges left to right maintaining the TEMP_S
   queue (:mod:`repro.core.temp_s`), evaluating the recurrence

   .. math::

       W_j = \\beta_j + \\beta(S_{\\gamma_j}), \\qquad
       \\beta(S_i) = \\min_{e_j \\in P_i} W_j

   in ``O(log q_i)`` per edge, for ``O(n + p log q)`` total.

The return value reports the cut, its weight and the Figure-2 statistics
(``p``, ``q``, TEMP_S lengths, search steps).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List, Optional

from repro.core.feasibility import validate_bound
from repro.core.prime_subpaths import compute_prime_structure
from repro.core.temp_s import SolutionNode, TempSQueue, solution_weight
from repro.graphs.chain import Chain
from repro.graphs.partition import Cut, cut_from_chain_indices
from repro.instrumentation.counters import AlgorithmStats, OpCounter
from repro.verify.contracts import complexity

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.observability import Span, Tracer


class ChainCutResult:
    """A cut on a chain: edge indices, total weight and run statistics.

    Slotted (not a dataclass): results are allocated once per query and
    the batch engine materializes millions of them.
    """

    __slots__ = ("chain", "cut_indices", "weight", "stats")

    def __init__(
        self,
        chain: Chain,
        cut_indices: List[int],
        weight: float,
        stats: Optional[AlgorithmStats] = None,
    ) -> None:
        self.chain = chain
        self.cut_indices = cut_indices
        self.weight = weight
        self.stats = stats

    def __repr__(self) -> str:
        return (
            f"ChainCutResult(chain={self.chain!r}, "
            f"cut_indices={self.cut_indices!r}, weight={self.weight!r})"
        )

    @property
    def num_components(self) -> int:
        return len(self.cut_indices) + 1

    def component_weights(self) -> List[float]:
        return self.chain.component_weights(self.cut_indices)

    def blocks(self) -> List[tuple]:
        return self.chain.cut_components(self.cut_indices)

    def as_cut(self) -> Cut:
        """The cut as a :class:`repro.graphs.partition.Cut` on the chain's
        task-graph form (allocates a fresh graph)."""
        return cut_from_chain_indices(self.chain.to_task_graph(), self.cut_indices)

    def is_feasible(self, bound: float) -> bool:
        return self.chain.is_feasible_cut(self.cut_indices, bound)


@complexity(
    "n + p log q",
    counters=(
        "prime_tasks_scanned",
        "prime_window_advances",
        "prime_candidates",
        "prime_edge_scans",
        "search_steps",
    ),
)
def bandwidth_min(
    chain: Chain,
    bound: float,
    *,
    apply_reduction: bool = True,
    search: str = "binary",
    collect_stats: bool = False,
    backend: str = "python",
    structure: Optional[Any] = None,
    tracer: Optional["Tracer"] = None,
) -> ChainCutResult:
    """Minimum-bandwidth load-bounded cut of a chain — Algorithm 4.1,
    ``O(n + p log q)`` (the declared complexity contract; the ``O(n)``
    claims below refer to the preprocessing step alone).

    Parameters
    ----------
    chain:
        The linear task graph.
    bound:
        Execution-time bound ``K``; must be at least the maximum vertex
        weight (:class:`~repro.core.feasibility.InfeasibleBoundError`
        otherwise).
    apply_reduction:
        Keep only non-redundant edges (the default, as in the paper).
        Disable to measure what the reduction buys (ablation).
    search:
        ``"binary"`` for the paper's binary search on the TEMP_S W
        column, ``"linear"`` for amortized monotone-deque pops.
    collect_stats:
        Attach an :class:`~repro.instrumentation.counters.AlgorithmStats`
        with the Figure-2 quantities to the result (small overhead).
    backend:
        ``"python"`` (reference) or ``"numpy"`` — which kernels build the
        prime structure.  Results are identical; only the constant factor
        differs (:mod:`repro.engine.kernels`).
    structure:
        A precomputed prime structure for ``(chain, bound)`` — the engine
        cache passes one to skip the ``O(n)`` preprocessing entirely.
        Must match ``chain``/``bound``/``apply_reduction``.
    tracer:
        A :class:`repro.observability.Tracer` (or ``None``).  An enabled
        tracer records nested spans — preprocessing, TEMP_S sweep — whose
        attributes and op-counts reproduce :class:`AlgorithmStats`
        exactly (same counter object, same expressions); it forces the
        counted reference sweep, so traced runs pay the ``collect_stats``
        constant.  ``None``/disabled costs two branches.
    """
    traced = tracer is not None and tracer.enabled
    if not traced:
        return _bandwidth_min_impl(
            chain, bound, apply_reduction, search, collect_stats, backend,
            structure,
        )
    with tracer.span(
        "bandwidth_min",
        n=chain.num_tasks,
        bound=bound,
        backend=backend,
        search=search,
    ) as root:
        result = _bandwidth_min_impl(
            chain, bound, apply_reduction, search, collect_stats, backend,
            structure, tracer, root,
        )
        root.set("weight", result.weight)
        root.set("components", result.num_components)
    return result


def _bandwidth_min_impl(
    chain: Chain,
    bound: float,
    apply_reduction: bool,
    search: str,
    collect_stats: bool,
    backend: str,
    structure: Optional[Any],
    tracer: Optional["Tracer"] = None,
    root: Optional["Span"] = None,
) -> ChainCutResult:
    """Algorithm 4.1 proper.  ``tracer``/``root`` are only passed for
    traced runs; the untraced path is branch-for-branch the seed code."""
    traced = root is not None
    validate_bound(chain.alpha, bound)
    if structure is None:
        if traced:
            with tracer.span("prime_structure") as sp:
                structure = compute_prime_structure(
                    chain,
                    bound,
                    apply_reduction=apply_reduction,
                    backend=backend,
                    tracer=tracer,
                )
                sp.set("p", structure.p)
                sp.set("r", structure.r)
        else:
            structure = compute_prime_structure(
                chain, bound, apply_reduction=apply_reduction, backend=backend
            )
    elif traced:
        root.set("structure_reused", True)
    if traced:
        # The Figure-2 quantities live on the root span so one record
        # carries the whole cost model (p, q, p log q) for this query.
        root.set("p", structure.p)
        root.set("r", structure.r)
        q = structure.q
        root.set("q", q)
        import math

        root.set("p_log_q", structure.p * math.log2(q) if q > 1.0 else 0.0)  # repro-mutate: equivalent=flip-compare -- log2(1) == 0, both branches emit 0.0 at q == 1
    if backend == "numpy" and not collect_stats and search == "binary" and not traced:
        # Fast path: flat-column sweep from the engine kernels (identical
        # output; imported lazily to keep core importable without NumPy).
        from repro.engine.kernels import bandwidth_sweep

        cut, weight = bandwidth_sweep(structure)
        return ChainCutResult(chain, cut, weight)
    if traced:
        sweep_span = tracer.span("temp_s_sweep", r=structure.r)
        sweep_span.__enter__()
        # The span's own counter feeds TEMP_S, so exported search-step
        # counts and queue-length traces are the measured values, not a
        # parallel estimate.
        counter: Optional[OpCounter] = sweep_span.counter
    else:
        sweep_span = None
        counter = OpCounter() if collect_stats else None
    queue = TempSQueue(search=search, counter=counter)

    final_sol: Optional[SolutionNode] = None
    final_weight = 0.0
    if structure.p > 0:
        gamma_sol: Optional[SolutionNode] = None  # S_{lo_j - 1}; None = empty
        for edge in structure.edges:
            # REPRO017: one attribute load per field per lap, not four.
            first_prime = edge.first_prime
            edge_weight = edge.weight
            completed = queue.pop_completed(first_prime)
            if completed is not None:
                gamma_sol = completed.sol
            w_value = edge_weight + solution_weight(
                gamma_sol if first_prime > 0 else None  # repro-mutate: equivalent=flip-compare -- first_prime is nondecreasing, so gamma_sol is still None whenever it is 0
            )
            node = SolutionNode(
                edge.index,
                edge_weight,
                gamma_sol if first_prime > 0 else None,  # repro-mutate: equivalent=flip-compare -- first_prime is nondecreasing, so gamma_sol is still None whenever it is 0
            )
            queue.update(w_value, node, first_prime, edge.last_prime)
        # The last prime subpath never completes during the sweep; its
        # solution sits in the BOTTOM row ("Solution S_p is
        # TEMP_S(4, BOTTOM)").
        bottom = queue.bottom
        final_sol = bottom.sol
        final_weight = bottom.w
    if sweep_span is not None:
        sweep_span.__exit__(None, None, None)

    cut_indices = final_sol.edge_indices() if final_sol is not None else []
    stats: Optional[AlgorithmStats] = None
    if collect_stats:
        stats = AlgorithmStats(chain.num_tasks)
        stats.p = structure.p
        stats.r = structure.r
        stats.q_values = structure.q_values
        if counter is not None:
            stats.search_steps = counter.get("search_steps")
            stats.max_temp_s_len = int(counter.trace_max("temp_s_len"))
            stats.mean_temp_s_len = counter.trace_mean("temp_s_len")
    return ChainCutResult(chain, cut_indices, final_weight, stats)


def bandwidth_stats(chain: Chain, bound: float, **kwargs: Any) -> AlgorithmStats:
    """Convenience wrapper returning only the Figure-2 statistics."""
    result = bandwidth_min(chain, bound, collect_stats=True, **kwargs)
    assert result.stats is not None
    return result.stats
