"""Lexicographic bottleneck-then-bandwidth chain partitioning.

The real-time study (Section 3) requires *both* secondary conditions at
once: "``sum w(dp_im)`` is minimum and ``max w(dp_im)`` is minimized".
The two can conflict; the natural composition — and the one the paper's
machinery supports directly — is lexicographic:

1. find the minimum achievable bottleneck ``B*`` (Algorithm 2.1 on the
   chain viewed as a tree): the lightest value such that some feasible
   cut uses only edges of weight ``<= B*``;
2. among cuts whose every edge weighs at most ``B*``, minimize total
   weight — Algorithm 4.1 on a *restricted* instance where heavier
   edges are forbidden (their weight is set to ``+inf``, so the
   hitting-set recurrence never selects them; step 1 guarantees a
   finite optimum exists).

The result is a cut that is simultaneously bottleneck-optimal and
bandwidth-optimal *given* that bottleneck; brute force validates both
properties in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.core.bandwidth import ChainCutResult, bandwidth_min
from repro.core.bottleneck import bottleneck_min
from repro.core.feasibility import validate_bound
from repro.graphs.chain import Chain
from repro.graphs.tree import Tree


@dataclass
class LexicographicResult:
    """Bottleneck-optimal, then bandwidth-optimal chain cut."""

    __slots__ = ("chain", "bottleneck", "cut")

    chain: Chain
    bottleneck: float
    cut: ChainCutResult

    @property
    def bandwidth(self) -> float:
        return self.cut.weight

    @property
    def cut_indices(self) -> List[int]:
        return self.cut.cut_indices


def lexicographic_chain_partition(
    chain: Chain, bound: float
) -> LexicographicResult:
    """Minimize the heaviest cut edge, then total cut weight (both
    subject to the execution-time bound ``K``)."""
    validate_bound(chain.alpha, bound)
    if chain.total_weight() <= bound:
        empty = ChainCutResult(chain, [], 0.0)
        return LexicographicResult(chain, 0.0, empty)

    tree = Tree.from_task_graph(chain.to_task_graph())
    b_star = bottleneck_min(tree, bound).bottleneck

    # Forbid edges heavier than B*: infinite weight removes them from
    # every minimum-weight hitting set while keeping indices aligned.
    restricted_beta = [
        b if b <= b_star else math.inf for b in chain.beta
    ]
    restricted = Chain(chain.alpha, restricted_beta)
    result = bandwidth_min(restricted, bound)
    assert math.isfinite(result.weight), (
        "bottleneck-feasible cut must exist by construction"
    )
    # Re-expressed on the original chain (same indices, same weights —
    # every chosen edge was unrestricted).
    cut = ChainCutResult(
        chain, result.cut_indices, chain.cut_weight(result.cut_indices)
    )
    return LexicographicResult(chain, b_star, cut)
