"""Processor minimization for tree task graphs — Algorithm 2.2.

Given a tree with vertex weights and a bound ``K``, find an edge cut of
*minimum cardinality* such that every component of ``T - S`` weighs at
most ``K``.  On a tree, removing one edge adds exactly one component, so
minimizing the number of components (processors) equals minimizing
``|S|`` (Section 2.2).

The paper's recursive routine repeatedly picks an internal node ``v``
adjacent to at most one internal node (a *pre-leaf*), sums ``v`` with
its adjacent leaves, merges them if the sum fits in ``K``, and otherwise
prunes the heaviest leaves until it fits.  This module implements the
canonical deterministic instantiation of that nondeterministic choice:
root the tree and process vertices in post-order — when ``v`` is
reached, all its children have been reduced to leaves and its parent is
still internal, so ``v`` is exactly a pre-leaf of the remaining tree.
``O(sum_v d(v) log d(v)) = O(n log n)``.

The greedy is the weighted Kundu–Misra tree-partitioning rule; the test
suite cross-checks its optimality against an exact DP oracle
(:mod:`repro.baselines.tree_dp`) and brute force.
"""

from __future__ import annotations

import math
import os
from typing import List, Set

from repro.core.bottleneck import TreeCutResult
from repro.core.feasibility import validate_bound
from repro.graphs.task_graph import Edge
from repro.graphs.tree import Tree
from repro.verify.contracts import complexity


@complexity("n log n")
def processor_min(tree: Tree, bound: float, root: int = 0) -> TreeCutResult:
    """Minimum-cardinality load-bounded cut of a tree — Algorithm 2.2.

    Returns a :class:`~repro.core.bottleneck.TreeCutResult`; its
    ``bottleneck`` field reports the heaviest cut edge (informational —
    this objective does not minimize it).
    """
    validate_bound(tree.vertex_weights, bound)
    order, parent = tree.post_order(root)
    residual = list(tree.vertex_weights)  # weight of v's merged cluster
    cut: Set[Edge] = set()

    children: List[List[int]] = [[] for _ in range(tree.num_vertices)]
    for v in order:
        if parent[v] >= 0:
            children[parent[v]].append(v)

    for v in order:
        if not children[v]:
            continue  # original leaf: nothing to process
        # Step 3: W <- weight of v plus all adjacent (reduced) leaves.
        total = residual[v] + sum(residual[c] for c in children[v])
        if total <= bound:
            # Step 4: merge every leaf into v.
            residual[v] = total
            continue
        # Step 5: prune the heaviest leaves until the cluster fits.
        # Deterministic tie-break: heavier first, then smaller vertex id.
        by_weight = sorted(children[v], key=lambda c: (-residual[c], c))
        for c in by_weight:
            if total <= bound:
                break
            total -= residual[c]
            cut.add((v, c) if v < c else (c, v))
        residual[v] = total

    bottleneck = (
        max(tree.edge_weight(u, w) for u, w in cut) if cut else 0.0
    )
    result = TreeCutResult(tree, cut, bottleneck)
    if "REPRO_VERIFY" in os.environ:  # repro-lint: disable=REPRO023 opt-in verification gate; raises on failure, never alters outputs
        from repro.verify.runtime import maybe_verify_tree_result

        maybe_verify_tree_result(tree, result, bound)
    return result


def min_processors(tree: Tree, bound: float) -> int:
    """Just the minimum number of processors (components)."""
    return processor_min(tree, bound).num_components


def processors_lower_bound(tree: Tree, bound: float) -> int:
    """The trivial packing bound ``ceil(total_weight / K)`` — used as a
    sanity floor in tests and reports."""
    return max(1, math.ceil(tree.total_vertex_weight() / bound - 1e-12))
