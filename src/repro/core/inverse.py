"""Inverse problems: choosing the bound ``K`` to hit a processor budget.

The paper's algorithms take the execution-time bound ``K`` as given.
In deployment the dual question is just as common: *given ``m``
processors, what is the smallest bound (and hence the best achievable
response time) and what does it cost in bandwidth?*  Both duals reduce
to the paper's primitives:

- for chains, the smallest feasible ``K`` for ``m`` blocks is exactly
  the chains-on-chains bottleneck (Section 2's prior-work family), and
  plugging it back into Algorithm 4.1 yields the cheapest cut that
  respects it;
- for trees, the smallest ``K`` admitting ``m`` components is found by
  bisecting ``K`` over the monotone ``min_processors(K)`` (Algorithm
  2.2), with candidate snapping for exactness on the realized partition.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.baselines.hansen_lih import ccp_hansen_lih
from repro.core.bandwidth import ChainCutResult, bandwidth_min
from repro.core.processor_min import processor_min
from repro.graphs.chain import Chain
from repro.graphs.tree import Tree

if TYPE_CHECKING:  # pragma: no cover - layering: engine imports core
    from repro.engine.batch import PartitionEngine


@dataclass
class ChainBudgetPlan:
    """Best bound and cheapest cut for a chain under a processor budget."""

    __slots__ = ("bound", "bandwidth_cut")

    bound: float
    bandwidth_cut: ChainCutResult

    @property
    def num_components(self) -> int:
        return self.bandwidth_cut.num_components


def partition_chain_for_processors(
    chain: Chain, processors: int, *, engine: Optional["PartitionEngine"] = None
) -> ChainBudgetPlan:
    """Tightest load bound achievable with ``processors`` blocks, plus
    the minimum-bandwidth cut honouring it.

    The optimal bound is the chains-on-chains bottleneck ``B*``;
    the returned cut satisfies every block ``<= B*`` with minimum total
    edge weight and therefore uses at most ``processors`` blocks... not
    necessarily: the cheapest cut may use *more*, smaller blocks.  The
    plan keeps the bound so callers can re-partition with the
    ``"processors"`` objective when the block count must be exact.

    Pass a :class:`repro.engine.PartitionEngine` as ``engine`` to solve
    through its prime-structure cache — worthwhile when many budgets are
    probed on the same chain (see :func:`chain_pareto_frontier`).
    """
    if processors < 1:
        raise ValueError("need at least one processor")
    bound = ccp_hansen_lih(chain, processors).bottleneck
    # Prefix-sum arithmetic can land the bottleneck a few ulps below the
    # heaviest single task; K >= max(alpha) always holds semantically.
    bound = max(bound, chain.max_vertex_weight())
    if engine is not None:
        return ChainBudgetPlan(bound, engine.solve(chain, bound))
    return ChainBudgetPlan(bound, bandwidth_min(chain, bound))


def chain_pareto_frontier(
    chain: Chain, max_processors: int, *, engine: Optional["PartitionEngine"] = None
) -> List[Dict[str, Any]]:
    """The (processors, bound, bandwidth) trade-off curve for a chain.

    One row per budget ``1..max_processors``: the chains-on-chains
    bottleneck bound at that budget and the minimum-bandwidth cut
    honouring it.  As with :class:`ChainBudgetPlan`, the ``components``
    column can exceed the budget — the cheapest cut under the bound may
    use more, smaller blocks.  The per-budget bounds are derived first
    (Hansen-Lih, ``O(n log n)`` each) and the whole vector is then
    answered by **one** batched
    :meth:`repro.engine.PartitionEngine.solve_sweep` call through the
    chain's compiled plan: budgets probed from ``max_processors`` down
    give ascending bounds, so neighbouring probes share one frozen
    structure per stability interval instead of re-deriving primes per
    probe.  Rows are identical to per-call
    :func:`partition_chain_for_processors` answers.
    """
    if max_processors < 1:
        raise ValueError("need at least one processor")
    if engine is None:
        from repro.engine import PartitionEngine

        engine = PartitionEngine()
    alpha_floor = chain.max_vertex_weight()
    budgets = list(range(max_processors, 0, -1))
    bounds = [
        max(ccp_hansen_lih(chain, budget).bottleneck, alpha_floor)
        for budget in budgets
    ]
    weights, cuts = engine.solve_sweep(chain, bounds, return_cuts=True)
    rows: List[Dict[str, Any]] = []
    for budget, bound, weight, cut in zip(budgets, bounds, weights, cuts):
        rows.append(
            {
                "processors": budget,
                "bound": bound,
                "components": len(cut) + 1,
                "bandwidth": float(weight),
            }
        )
    rows.reverse()
    if "REPRO_VERIFY" in os.environ:
        from repro.verify.runtime import maybe_verify_pareto_frontier

        maybe_verify_pareto_frontier(rows)
    return rows


def min_bound_for_tree(
    tree: Tree, processors: int, tolerance: float = 1e-9
) -> float:
    """Smallest bound ``K`` for which Algorithm 2.2 needs at most
    ``processors`` components.  Bisection over the monotone
    ``min_processors(K)``; exact up to ``tolerance`` and snapped to the
    realized maximum component weight."""
    if processors < 1:
        raise ValueError("need at least one processor")
    total = tree.total_vertex_weight()
    lo = max(tree.max_vertex_weight(), total / processors)
    hi = total
    if processor_min(tree, lo).num_components <= processors:
        hi = lo
    while hi - lo > tolerance * max(1.0, total):
        mid = 0.5 * (lo + hi)
        if processor_min(tree, mid).num_components <= processors:
            hi = mid
        else:
            lo = mid
    # Snap to the realized partition's maximum component weight — the
    # true optimum is always a component weight of some partition.
    result = processor_min(tree, hi)
    realized = max(tree.component_weights(result.cut_edges))
    return realized


def tree_pareto_frontier(
    tree: Tree, max_processors: int
) -> List[Dict[str, Any]]:
    """The (processors, bound) trade-off curve for ``1..max_processors``.

    Each row reports the tightest achievable bound at that budget and
    the bottleneck/bandwidth of the partition realizing it — the data a
    capacity-planning user actually wants from the paper's toolbox.
    """
    rows: List[Dict[str, Any]] = []
    for budget in range(1, max_processors + 1):
        bound = min_bound_for_tree(tree, budget)
        partition = processor_min(tree, bound)
        cut = partition.as_cut()
        rows.append(
            {
                "processors": budget,
                "bound": bound,
                "components": partition.num_components,
                "bottleneck": cut.bottleneck(),
                "bandwidth": cut.bandwidth(),
            }
        )
    if "REPRO_VERIFY" in os.environ:
        from repro.verify.runtime import maybe_verify_pareto_frontier

        # Tree rows report the bandwidth of one realized partition (not
        # a minimum), so only bound/processor monotonicity is certified.
        maybe_verify_pareto_frontier(rows, check_bandwidth=False)
    return rows
