"""The TEMP_S queue of Algorithm 4.1 (paper Appendix A).

TEMP_S is "an implementation of a queue from which elements may be
removed from both the head and tail".  Each row describes a contiguous
range of prime-subpath indices whose minimum W-value so far is identical:

========  =====================================================
column    meaning
========  =====================================================
``lo``    first prime-subpath index covered by the row (L column)
``hi``    last prime-subpath index covered (R column)
``w``     the common minimum W-value (W column)
``sol``   solution achieving it (S column), a parent-pointer chain
========  =====================================================

Invariants maintained by :class:`TempSQueue` (and asserted by the test
suite):

- rows cover a contiguous, increasing range of prime indices with no
  gaps or overlaps (the currently *open* subpaths);
- the W column is strictly increasing from head (TOP) to tail (BOTTOM) —
  open subpaths see suffixes of the processed edges, so their minima are
  non-decreasing, and equal minima share one row;
- the number of rows never exceeds the number of open subpaths
  (Appendix B measures the actual row count, expected ``O(log q_i)``).

Solutions are stored as parent-pointer chains (:class:`SolutionNode`)
rather than materialized sets, preserving the paper's ``O(n)`` space
bound: the S column of the recurrence is always ``{e_i} ∪ S_gamma_i``,
i.e. one new edge plus a reference to an earlier solution.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.instrumentation.counters import OpCounter


class SolutionNode:
    """One link of a cut-solution chain: edge ``edge_index`` plus the
    solution it extends.  ``weight`` caches the cumulative cut weight
    so that ``beta(S)`` lookups are O(1)."""

    __slots__ = ("edge_index", "prev", "weight")

    def __init__(
        self, edge_index: int, edge_weight: float, prev: Optional["SolutionNode"]
    ) -> None:
        self.edge_index = edge_index
        self.prev = prev
        self.weight = edge_weight + (prev.weight if prev is not None else 0.0)

    def edge_indices(self) -> List[int]:
        """Materialize the cut as a sorted list of chain edge indices."""
        indices: List[int] = []
        node: Optional[SolutionNode] = self
        while node is not None:
            indices.append(node.edge_index)
            node = node.prev
        indices.reverse()
        return indices

    def __repr__(self) -> str:
        return f"SolutionNode(e{self.edge_index}, beta(S)={self.weight:g})"


def solution_weight(sol: Optional[SolutionNode]) -> float:
    """``beta(S)`` of a (possibly empty) solution chain."""
    return sol.weight if sol is not None else 0.0


class Row:
    """One TEMP_S row (L, R, W, S)."""

    __slots__ = ("lo", "hi", "w", "sol")

    def __init__(self, lo: int, hi: int, w: float, sol: SolutionNode) -> None:
        self.lo = lo
        self.hi = hi
        self.w = w
        self.sol = sol

    def __repr__(self) -> str:
        return f"Row([{self.lo}..{self.hi}], W={self.w:g})"


class TempSQueue:
    """The double-ended TEMP_S queue with the paper's two update costs.

    ``search="binary"`` reproduces Algorithm 4.1's binary search on the
    W column (``O(log len)`` worst case per processed edge).
    ``search="linear"`` replaces it by monotone-deque pops from the
    BOTTOM end (amortized ``O(1)``, but ``O(len)`` worst case at a single
    step) — the ablation discussed in DESIGN.md.
    """

    __slots__ = ("_rows", "_top", "search", "counter")

    def __init__(
        self, search: str = "binary", counter: Optional[OpCounter] = None
    ) -> None:
        if search not in ("binary", "linear"):
            raise ValueError(f"unknown search strategy {search!r}")
        self._rows: List[Row] = []
        self._top = 0  # index of the TOP row inside _rows
        self.search = search
        self.counter = counter

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows) - self._top

    def __bool__(self) -> bool:
        return len(self) > 0

    def rows(self) -> Iterator[Row]:
        """Iterate rows from TOP to BOTTOM (test/debug use)."""
        return iter(self._rows[self._top :])

    @property
    def top(self) -> Row:
        if not self:
            raise IndexError("TEMP_S is empty")
        return self._rows[self._top]

    @property
    def bottom(self) -> Row:
        if not self:
            raise IndexError("TEMP_S is empty")
        return self._rows[-1]

    def covered_range(self) -> Optional[tuple]:
        """(lowest, highest) open prime index, or None when empty."""
        if not self:
            return None
        return (self.top.lo, self.bottom.hi)

    # ------------------------------------------------------------------
    # Head (TOP) operations — completing prime subpaths
    # ------------------------------------------------------------------
    def pop_completed(self, first_open_prime: int) -> Optional[Row]:
        """Retire all primes with index below ``first_open_prime``.

        Returns the row that covered prime ``first_open_prime - 1`` (whose
        W/S columns are that prime's final solution ``S_gamma``), or
        ``None`` when nothing was retired at this step.  Rows fully below
        the threshold are dropped; a row straddling it is trimmed in
        place (the paper's "increase the L column of the TOP row").
        """
        completed: Optional[Row] = None
        rows = self._rows
        top = self._top
        size = len(rows)
        while top < size:
            row = rows[top]
            if row.lo >= first_open_prime:
                break
            completed = row
            if row.hi < first_open_prime:
                top += 1  # entire row retired
            else:
                row.lo = first_open_prime  # trim and stop
                break
        self._top = top
        if top > 64 and top * 2 > size:  # repro-mutate: equivalent=flip-compare -- the compaction trigger is a pure performance heuristic; any threshold is semantically transparent
            # Compact the backing list so long runs keep O(live) memory.
            self._rows = rows[top:]
            self._top = 0
        return completed

    # ------------------------------------------------------------------
    # Tail (BOTTOM) operations — the per-edge update
    # ------------------------------------------------------------------
    def update(self, w: float, sol: SolutionNode, new_lo: int, new_hi: int) -> None:
        """Process one edge with W-value ``w``: fold it into the minima of
        all open subpaths and open the subpaths up to ``new_hi``.

        ``new_lo .. new_hi`` is the edge's prime-subpath membership range
        (``new_lo`` is only consulted when the queue drained completely,
        to anchor the fresh row).

        Implements step 2a of Algorithm 4.1: find the first row whose
        W is >= ``w``, replace that row and everything below it with a
        single row carrying ``w``, then extend the BOTTOM row (or create
        one) to cover newly opened subpaths, whose first processed edge
        is this one.
        """
        rows = self._rows
        prev_hi = rows[-1].hi if len(rows) > self._top else None
        split = self._find_first_ge(w)
        if split is not None:
            old_bottom_hi = rows[-1].hi
            merged = rows[split]
            merged.hi = old_bottom_hi if old_bottom_hi > new_hi else new_hi  # repro-mutate: equivalent=flip-compare -- max() tie: both branches store the same hi
            merged.w = w
            merged.sol = sol
            del rows[split + 1 :]
        elif prev_hi is None:
            # Queue drained: every earlier prime completed, so the new
            # row covers exactly this edge's membership range.
            rows.append(Row(new_lo, new_hi, w, sol))
        elif new_hi > prev_hi:
            rows.append(Row(prev_hi + 1, new_hi, w, sol))
        # else: w exceeds every open minimum and opens nothing — no-op.
        if self.counter is not None:
            self.counter.trace("temp_s_len", len(self))

    def _find_first_ge(self, w: float) -> Optional[int]:
        """Index (into ``_rows``) of the first row with ``row.w >= w``."""
        lo, hi = self._top, len(self._rows)
        if lo == hi:
            return None
        if self.search == "linear":
            idx = hi
            while idx > lo and self._rows[idx - 1].w >= w:
                idx -= 1
                if self.counter is not None:
                    self.counter.add("search_steps")
            return idx if idx < hi else None
        # Binary search on the (strictly increasing) W column.
        first = hi
        while lo < hi:
            mid = (lo + hi) // 2
            if self.counter is not None:
                self.counter.add("search_steps")
            if self._rows[mid].w >= w:
                first = mid
                hi = mid
            else:
                lo = mid + 1
        return first if first < len(self._rows) else None

    # ------------------------------------------------------------------
    # Invariant checking (used by tests, not by the algorithm)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        rows = self._rows[self._top :]
        for row in rows:
            if row.lo > row.hi:
                raise AssertionError(f"empty row {row}")
        for left, right in zip(rows, rows[1:]):
            if right.lo != left.hi + 1:
                raise AssertionError(f"gap/overlap between {left} and {right}")
            if not right.w > left.w:
                raise AssertionError(
                    f"W column not strictly increasing: {left} -> {right}"
                )

    def __repr__(self) -> str:
        return f"TempSQueue({list(self.rows())!r})"
