"""The combined partitioning pipeline of Section 2.

The paper composes its algorithms: bottleneck minimization first
(Section 2.1) fixes the smallest achievable bottleneck but "may fragment
the task graph into unnecessarily many small components"; Section 2.2
then lumps each component into a super-node — the resulting graph is
still a tree whose edges are exactly the bottleneck cut — and runs
processor minimization on it, re-joining components wherever the bound
allows.  The final cut is a *subset* of the bottleneck cut, so the
optimal bottleneck value is preserved while the processor count becomes
minimal among refinements of that cut.

For chains, :func:`partition_chain` exposes all three objectives behind
one API (bottleneck / processors / bandwidth), since a chain is a tree
and the bandwidth objective additionally admits Algorithm 4.1.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Set

from repro.core.bandwidth import ChainCutResult, bandwidth_min
from repro.core.bottleneck import TreeCutResult, bottleneck_min
from repro.core.processor_min import processor_min
from repro.graphs.chain import Chain
from repro.graphs.partition import Partition
from repro.graphs.task_graph import Edge
from repro.graphs.tree import Tree


@dataclass
class TreePartitionPlan:
    """Result of the bottleneck → processor-minimization pipeline."""

    __slots__ = (
        "tree",
        "bound",
        "bottleneck_cut",
        "final_cut",
        "bottleneck",
        "num_processors",
    )

    tree: Tree
    bound: float
    bottleneck_cut: Set[Edge]
    final_cut: Set[Edge]
    bottleneck: float
    num_processors: int

    def partition(self) -> Partition:
        from repro.graphs.partition import Cut

        return Cut(self.tree, self.final_cut).partition()

    def summary(self) -> str:
        return (
            f"bound K={self.bound:g}: bottleneck={self.bottleneck:g} "
            f"(|S| {len(self.bottleneck_cut)} -> {len(self.final_cut)}), "
            f"{self.num_processors} processors"
        )


def partition_tree(tree: Tree, bound: float) -> TreePartitionPlan:
    """Bottleneck-optimal, processor-minimal load-bounded tree partition.

    Runs Algorithm 2.1, contracts each component into a super-node
    (Section 2.2's construction), runs Algorithm 2.2 on the super-node
    tree, and maps the surviving cuts back to original edges.
    """
    bottleneck_result = bottleneck_min(tree, bound)
    first_cut = set(bottleneck_result.cut_edges)
    if not first_cut:
        return TreePartitionPlan(
            tree, bound, first_cut, set(), 0.0, 1
        )
    super_tree, _components, edge_origin = tree.contract_components(first_cut)
    refined = processor_min(super_tree, bound)
    final_cut = {edge_origin[e] for e in refined.cut_edges}
    bottleneck = (
        max(tree.edge_weight(u, v) for u, v in final_cut) if final_cut else 0.0
    )
    if "REPRO_VERIFY" in os.environ:
        from repro.verify.runtime import maybe_verify_tree_cut

        maybe_verify_tree_cut(
            tree, sorted(final_cut), bound, claimed_bottleneck=bottleneck
        )
    return TreePartitionPlan(
        tree,
        bound,
        first_cut,
        final_cut,
        bottleneck,
        len(final_cut) + 1,
    )


def partition_chain(
    chain: Chain, bound: float, objective: str = "bandwidth"
) -> ChainCutResult:
    """Load-bounded chain partitioning under any of the paper's objectives.

    ``objective`` is one of:

    - ``"bandwidth"`` — Algorithm 4.1 (minimum total cut weight);
    - ``"bottleneck"`` — Algorithm 2.1 on the chain seen as a tree
      (minimum heaviest cut edge);
    - ``"processors"`` — Algorithm 2.2 (fewest components);
    - ``"bottleneck+processors"`` — the Section 2.2 pipeline;
    - ``"bottleneck+bandwidth"`` — lexicographic: optimal bottleneck,
      then minimum total weight (the Section 3 real-time combination).
    """
    if objective == "bandwidth":
        result = bandwidth_min(chain, bound)
    elif objective == "bottleneck+bandwidth":
        from repro.core.bicriteria import lexicographic_chain_partition

        result = lexicographic_chain_partition(chain, bound).cut
    else:
        tree = Tree.from_task_graph(chain.to_task_graph())
        if objective == "bottleneck":
            tree_result: TreeCutResult = bottleneck_min(tree, bound)
            cut_edges = tree_result.cut_edges
        elif objective == "processors":
            cut_edges = processor_min(tree, bound).cut_edges
        elif objective == "bottleneck+processors":
            cut_edges = partition_tree(tree, bound).final_cut
        else:
            raise ValueError(f"unknown objective {objective!r}")
        indices = sorted(u for u, _v in cut_edges)
        result = ChainCutResult(chain, indices, chain.cut_weight(indices))
    if "REPRO_VERIFY" in os.environ:
        from repro.verify.runtime import maybe_verify_chain_result

        maybe_verify_chain_result(
            chain,
            result.cut_indices,
            bound,
            claimed_weight=result.weight,
            optimal_bandwidth=objective == "bandwidth",
        )
    return result
