"""Bottleneck minimization for tree task graphs — Algorithm 2.1.

Given a tree ``T`` with vertex weights and edge weights and a bound
``K``, find an edge cut ``S`` such that no component of ``T - S`` weighs
more than ``K`` and the *heaviest* edge of ``S`` is as light as possible
(Section 2.1).  The paper's greedy adds edges to ``S`` in increasing
weight order and stops at the first feasible prefix; its correctness
proof shows any feasible prefix of the sorted order whose last edge is
no heavier than an optimal solution's heaviest edge works.

Two implementations with identical output:

- :func:`bottleneck_min_naive` — the paper's loop verbatim: after each
  added edge, re-check all component weights (``O(n)`` BFS), ``O(n^2)``
  total.
- :func:`bottleneck_min` — observes that ``T - S_i`` (removing the ``i``
  lightest edges) equals the forest built from the ``n-1-i`` *heaviest*
  edges, so a single union-find sweep adding edges heaviest-first finds
  the break-even point in ``O(n log n)`` (sorting dominates).

Both use the same deterministic tie-break (weight, then canonical edge),
so their outputs are identical sets, which the test suite asserts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.core.feasibility import validate_bound
from repro.graphs.partition import Cut, Partition
from repro.graphs.task_graph import Edge
from repro.graphs.tree import Tree
from repro.verify.contracts import complexity


@dataclass
class TreeCutResult:
    """A cut on a tree: edges, bottleneck value and induced partition."""

    __slots__ = ("tree", "cut_edges", "bottleneck")

    tree: Tree
    cut_edges: Set[Edge]
    bottleneck: float

    @property
    def num_components(self) -> int:
        return len(self.cut_edges) + 1

    def as_cut(self) -> Cut:
        return Cut(self.tree, self.cut_edges)

    def partition(self) -> Partition:
        return self.as_cut().partition()

    def is_feasible(self, bound: float) -> bool:
        return all(w <= bound for w in self.tree.component_weights(self.cut_edges))


def _sorted_edges(tree: Tree) -> List[Tuple[float, Edge]]:
    """Edges sorted by (weight, canonical index) — the shared tie-break."""
    return sorted(
        ((weight, edge) for edge, weight in tree.weighted_edges()),
        key=lambda item: (item[0], item[1]),
    )


@complexity("n^2")
def bottleneck_min_naive(tree: Tree, bound: float) -> TreeCutResult:
    """Algorithm 2.1 exactly as printed: grow ``S`` one sorted edge at a
    time, re-checking feasibility after each addition.  ``O(n^2)``."""
    validate_bound(tree.vertex_weights, bound)
    ordered = _sorted_edges(tree)
    cut: Set[Edge] = set()
    if all(w <= bound for w in tree.component_weights(cut)):
        return _certified(TreeCutResult(tree, cut, 0.0), bound)
    for weight, edge in ordered:
        cut.add(edge)
        if all(w <= bound for w in tree.component_weights(cut)):
            return _certified(TreeCutResult(tree, set(cut), weight), bound)
    raise AssertionError("unreachable: cutting all edges is always feasible")


def _certified(result: TreeCutResult, bound: float) -> TreeCutResult:
    """Self-certify a tree cut when ``REPRO_VERIFY=1`` (no-op otherwise).

    The verify layer sits above core, so it is imported lazily and only
    when the environment opts in.
    """
    if "REPRO_VERIFY" in os.environ:  # repro-lint: disable=REPRO023 opt-in verification gate; raises on failure, never alters outputs
        from repro.verify.runtime import maybe_verify_tree_result

        maybe_verify_tree_result(result.tree, result, bound)
    return result


class _UnionFind:
    """Weighted union-find tracking component vertex weights."""

    __slots__ = ("parent", "size", "weight")

    def __init__(self, vertex_weights: List[float]) -> None:
        n = len(vertex_weights)
        self.parent = list(range(n))
        self.size = [1] * n
        self.weight = list(vertex_weights)

    def find(self, v: int) -> int:
        root = v
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[v] != root:  # path compression
            self.parent[v], v = root, self.parent[v]
        return root

    def union(self, u: int, v: int) -> float:
        """Merge the components of u and v; return the merged weight."""
        ru, rv = self.find(u), self.find(v)
        if ru == rv:
            raise AssertionError("tree edges never merge the same component")
        if self.size[ru] < self.size[rv]:  # repro-mutate: equivalent=flip-compare -- union-by-size tie direction is arbitrary; either root keeps the bound
            ru, rv = rv, ru
        self.parent[rv] = ru
        self.size[ru] += self.size[rv]
        self.weight[ru] += self.weight[rv]
        return self.weight[ru]


@complexity("n log n")
def bottleneck_min(tree: Tree, bound: float) -> TreeCutResult:
    """Optimized Algorithm 2.1: identical output, one union-find sweep.

    ``T - S_i`` (the ``i`` lightest edges removed) is the forest spanned
    by the ``n-1-i`` heaviest edges.  Component weights only grow as
    heavier-first edges are added, so the feasible prefix boundary is
    found by adding edges heaviest-first until a merge would exceed the
    bound; the cut is everything not yet added.
    """
    max_weight = validate_bound(tree.vertex_weights, bound)
    ordered = _sorted_edges(tree)
    uf = _UnionFind(list(tree.vertex_weights))
    # Walk from the heaviest edge downwards; stop before the first merge
    # that creates an over-weight component.
    boundary = 0  # edges ordered[0:boundary] form the cut
    # REPRO017: the component-weight list and find() are loop-stable —
    # union() mutates the list in place, never rebinds the attribute.
    uf_weight = uf.weight
    uf_find = uf.find
    for idx in range(len(ordered) - 1, -1, -1):
        weight, (u, v) = ordered[idx]
        if uf_weight[uf_find(u)] + uf_weight[uf_find(v)] > bound:
            boundary = idx + 1
            break
        uf.union(u, v)
    cut = {edge for _, edge in ordered[:boundary]}
    bottleneck = ordered[boundary - 1][0] if boundary else 0.0
    # max_weight <= bound guarantees feasibility even when every edge is cut.
    assert max_weight <= bound
    return _certified(TreeCutResult(tree, cut, bottleneck), bound)
