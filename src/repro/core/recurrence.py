"""Naive evaluation of the Section 2.3 recurrence.

The paper first presents the recurrence

.. math::

    \\beta(S_1) = \\min_{a_1 \\le j \\le b_1} \\beta_j, \\qquad
    \\beta(S_{i+1}) = \\min_{a_{i+1} \\le j \\le b_{i+1}}
        \\big(\\beta_j + \\beta(S_{\\gamma_j})\\big)

"in this naive way", costing ``O(sum_i |P_i|)`` (up to ``O(np)``), and
only then develops the TEMP_S implementation.  This module is that naive
version — valuable both as an independent correctness cross-check for
Algorithm 4.1 and as the baseline in the ablation benchmark that shows
what TEMP_S buys.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.bandwidth import ChainCutResult
from repro.core.feasibility import validate_bound
from repro.core.prime_subpaths import (
    PrimeStructure,
    edge_membership_intervals,
    find_prime_subpaths,
)
from repro.core.temp_s import SolutionNode, solution_weight
from repro.graphs.chain import Chain
from repro.verify.contracts import complexity


@complexity("n + r q")
def bandwidth_min_naive(
    chain: Chain, bound: float, *, apply_reduction: bool = True
) -> ChainCutResult:
    """Minimum-bandwidth load-bounded cut via the naive recurrence.

    Identical output objective to
    :func:`repro.core.bandwidth.bandwidth_min` (the certified tie-break
    may differ), at ``O(sum_i |P_i|)`` cost.
    """
    validate_bound(chain.alpha, bound)
    structure = PrimeStructure.compute(chain, bound, apply_reduction=apply_reduction)
    primes = structure.primes
    if not primes:
        return ChainCutResult(chain, [], 0.0)

    # Group the reduced edges by prime subpath: edge j belongs to primes
    # first_prime .. last_prime.
    edges_of_prime: List[List[int]] = [[] for _ in primes]
    reduced = structure.edges
    for idx, edge in enumerate(reduced):
        for prime_idx in range(edge.first_prime, edge.last_prime + 1):
            edges_of_prime[prime_idx].append(idx)

    # solutions[i] = S_i as a parent-pointer chain; W-values computed on
    # demand from beta_j + beta(S_{gamma_j}).
    solutions: List[Optional[SolutionNode]] = [None] * len(primes)
    for i in range(len(primes)):
        best_node: Optional[SolutionNode] = None
        best_w = float("inf")
        for edge_pos in edges_of_prime[i]:
            edge = reduced[edge_pos]
            prev = solutions[edge.gamma] if edge.gamma >= 0 else None
            w_value = edge.weight + solution_weight(prev)
            if w_value < best_w:
                best_w = w_value
                best_node = SolutionNode(edge.index, edge.weight, prev)
        assert best_node is not None, "every prime subpath contains an edge"
        solutions[i] = best_node

    final = solutions[-1]
    assert final is not None
    return ChainCutResult(chain, final.edge_indices(), final.weight)


def hitting_set_cost_naive(chain: Chain, bound: float) -> float:
    """Objective value only, via the recurrence — the cheapest
    cross-check used inside property tests."""
    return bandwidth_min_naive(chain, bound).weight
