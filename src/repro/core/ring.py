"""Bandwidth minimization on circular task graphs.

An extension in the spirit of the paper's Section 3, which notes that
"circular type" systems reduce to the linear case.  The reduction is
exact rather than approximate:

* if the whole ring fits the bound, the empty cut is optimal;
* otherwise every feasible cut contains at least one edge of every
  *critical arc* (contiguous run of tasks heavier than ``K``), in
  particular of the minimal critical arc starting at task 0.  Trying
  each edge of that one arc as "the" cut that opens the ring, and
  solving the remaining chain with Algorithm 4.1, covers every feasible
  solution.

The candidate arc has at most ``ceil(2K / (w1 + w2)) + 1`` edges on
average (the paper's prime-length bound), so the expected cost is that
many chain solves — ``O(L · (n + p log q))`` with small ``L`` in the
regimes Figure 2 studies.  A brute-force oracle validates optimality in
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.bandwidth import bandwidth_min
from repro.core.feasibility import validate_bound
from repro.graphs.ring import Ring
from repro.verify.contracts import complexity


@dataclass
class RingCutResult:  # repro-lint: disable=REPRO002 (field default blocks slots on py39)
    """A cut on a ring: ring edge indices and total weight."""

    ring: Ring
    cut_indices: List[int]
    weight: float
    candidates_tried: int = field(default=0, repr=False)

    @property
    def num_components(self) -> int:
        # Cutting k >= 1 edges of a cycle leaves k arcs.
        return max(len(self.cut_indices), 1)

    def component_weights(self) -> List[float]:
        return self.ring.component_weights(self.cut_indices)

    def is_feasible(self, bound: float) -> bool:
        return self.ring.is_feasible_cut(self.cut_indices, bound)


def _minimal_critical_arc(ring: Ring, bound: float) -> Optional[int]:
    """Length of the minimal critical arc starting at task 0, or None
    when no arc (including the full ring) exceeds the bound."""
    for length in range(1, ring.num_tasks + 1):
        if ring.arc_weight(0, length) > bound:
            return length
    return None


@complexity("l n + l p log q")
def ring_bandwidth_min(ring: Ring, bound: float) -> RingCutResult:
    """Minimum-weight edge cut of a ring with all arcs bounded by ``K``.

    Exact.  Raises
    :class:`~repro.core.feasibility.InfeasibleBoundError` when a single
    task exceeds the bound.
    """
    validate_bound(ring.alpha, bound)
    if ring.total_weight() <= bound:
        return RingCutResult(ring, [], 0.0, candidates_tried=0)

    length = _minimal_critical_arc(ring, bound)
    assert length is not None  # total weight > bound guarantees one
    # The critical arc covers tasks 0 .. length-1; its internal edges
    # are ring edges 0 .. length-2, plus the entry edge n-1 (between
    # task n-1 and task 0)?  No: a cut must split the arc's *tasks*
    # apart, i.e. remove one of the edges joining consecutive tasks of
    # the arc: ring edges 0 .. length-2.  (Cutting the boundary edges
    # n-1 or length-1 leaves the arc's tasks connected.)
    candidates = list(range(length - 1))
    # Edge case: a minimal critical arc of a single task cannot happen
    # (validate_bound), so candidates is never empty... unless length
    # == 1, excluded above.  Still, the arc might be the entire ring:
    # then every edge is a candidate, which the range covers (n-1
    # edges; by symmetry the n-th adds nothing since some candidate
    # among the first n-1 appears in every feasible cut of size >= 2).
    best: Optional[RingCutResult] = None
    for edge in candidates:
        chain = ring.open_at(edge)
        chain_result = bandwidth_min(chain, bound)
        total = ring.edge_weight(edge) + chain_result.weight
        if best is None or total < best.weight:
            cut = [edge] + [
                ring.chain_edge_to_ring_edge(edge, j)
                for j in chain_result.cut_indices
            ]
            best = RingCutResult(
                ring, sorted(cut), total, candidates_tried=len(candidates)
            )
    assert best is not None
    return best
