"""Linear task graphs (chains).

Section 2.3 of the paper works on a path ``P = (V, E)`` with
``V = {v_1, ..., v_n}``, ``E = {e_i = (v_i, v_{i+1})}``, vertex weights
``alpha: V -> R+`` and edge weights ``beta: E -> R+``.  This module keeps
the same notation: ``alpha[i]`` is the weight of vertex ``i`` and
``beta[i]`` the weight of the edge between vertices ``i`` and ``i+1``
(0-based; the paper is 1-based).

A *cut* on a chain is naturally a set of edge indices.  The
:meth:`Chain.cut_components` helper converts a cut into the contiguous
blocks it induces, which is what the execution-time-bound condition is
stated over.
"""

from __future__ import annotations

import hashlib
import struct
from itertools import accumulate
from typing import Iterable, List, Sequence, Tuple

from repro.graphs.task_graph import TaskGraph


class Chain:
    """A linear task graph with ``n`` tasks and ``n - 1`` dependency edges.

    Parameters
    ----------
    alpha:
        Vertex weights, ``alpha[i] > 0`` is the execution requirement of
        task ``i``.
    beta:
        Edge weights, ``beta[i] > 0`` is the communication volume between
        task ``i`` and task ``i + 1``.  Must have length ``len(alpha) - 1``
        (or 0 when the chain has a single task).
    """

    __slots__ = ("_alpha", "_beta", "_prefix", "_fingerprint")

    def __init__(self, alpha: Sequence[float], beta: Sequence[float]) -> None:
        if not alpha:
            raise ValueError("a chain needs at least one task")
        self._alpha: List[float] = [float(a) for a in alpha]
        self._beta: List[float] = [float(b) for b in beta]
        if len(self._beta) != len(self._alpha) - 1:
            raise ValueError(
                f"chain with {len(self._alpha)} tasks needs "
                f"{len(self._alpha) - 1} edge weights, got {len(self._beta)}"
            )
        for i, a in enumerate(self._alpha):
            if a <= 0:
                raise ValueError(f"task {i} has non-positive weight {a}")
        for i, b in enumerate(self._beta):
            if b < 0:
                raise ValueError(f"edge {i} has negative weight {b}")
        # prefix[i] = alpha[0] + ... + alpha[i-1]; prefix[0] = 0.
        self._prefix: List[float] = [0.0]
        self._prefix.extend(accumulate(self._alpha))
        self._fingerprint: str = ""  # computed lazily

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self._alpha)

    @property
    def num_edges(self) -> int:
        return len(self._beta)

    @property
    def alpha(self) -> List[float]:
        """Vertex weights (do not mutate)."""
        return self._alpha

    @property
    def beta(self) -> List[float]:
        """Edge weights (do not mutate)."""
        return self._beta

    def vertex_weight(self, i: int) -> float:
        return self._alpha[i]

    def edge_weight(self, i: int) -> float:
        return self._beta[i]

    def total_weight(self) -> float:
        return self._prefix[-1]

    def max_vertex_weight(self) -> float:
        return max(self._alpha)

    def segment_weight(self, lo: int, hi: int) -> float:
        """Total vertex weight of tasks ``lo .. hi`` inclusive, in O(1).

        A single-task segment returns its exact weight: the prefix
        difference can exceed ``alpha[lo]`` by cancellation noise, which
        would make a singleton block look infeasible under a bound equal
        to the maximum vertex weight.
        """
        if not (0 <= lo <= hi < self.num_tasks):
            raise IndexError(f"segment [{lo}, {hi}] out of range")
        if lo == hi:
            return self._alpha[lo]
        return self._prefix[hi + 1] - self._prefix[lo]

    def prefix_weights(self) -> List[float]:
        """``prefix[i]`` = total weight of tasks ``0 .. i-1`` (len ``n + 1``)."""
        return self._prefix

    def cut_weight(self, cut: Iterable[int]) -> float:
        """Total edge weight of a cut given as edge indices (the *bandwidth*)."""
        return sum(self._beta[i] for i in cut)

    def fingerprint(self) -> str:
        """Content hash of the chain (hex digest, cached after first call).

        Two chains with bit-identical ``alpha``/``beta`` share a
        fingerprint, even across processes — the key the engine's
        :class:`~repro.engine.cache.PrimeStructureCache` uses to share
        preprocessing between queries on equal chains.
        """
        if not self._fingerprint:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(struct.pack("<q", len(self._alpha)))
            digest.update(struct.pack(f"<{len(self._alpha)}d", *self._alpha))
            if self._beta:
                digest.update(struct.pack(f"<{len(self._beta)}d", *self._beta))
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Cuts and blocks
    # ------------------------------------------------------------------
    def cut_components(self, cut: Iterable[int]) -> List[Tuple[int, int]]:
        """Contiguous blocks ``(lo, hi)`` induced by cutting the given edges.

        A block ``(lo, hi)`` covers tasks ``lo .. hi`` inclusive.  Edge
        index ``i`` separates task ``i`` from task ``i + 1``.
        """
        boundaries = sorted(set(cut))
        for i in boundaries:
            if not (0 <= i < self.num_edges):
                raise IndexError(f"edge index {i} out of range")
        blocks: List[Tuple[int, int]] = []
        lo = 0
        for i in boundaries:
            blocks.append((lo, i))
            lo = i + 1
        blocks.append((lo, self.num_tasks - 1))
        return blocks

    def component_weights(self, cut: Iterable[int]) -> List[float]:
        """Vertex weight of every block induced by the cut."""
        return [self.segment_weight(lo, hi) for lo, hi in self.cut_components(cut)]

    def is_feasible_cut(self, cut: Iterable[int], bound: float) -> bool:
        """True when every block induced by ``cut`` weighs at most ``bound``."""
        return all(w <= bound for w in self.component_weights(cut))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_task_graph(self) -> TaskGraph:
        """The equivalent general :class:`TaskGraph` (vertices ``0..n-1``)."""
        edges = [(i, i + 1) for i in range(self.num_edges)]
        return TaskGraph(self._alpha, edges, self._beta)

    @classmethod
    def from_task_graph(cls, graph: TaskGraph) -> "Chain":
        """Build a chain from a path-shaped :class:`TaskGraph`.

        The task graph must be a simple path; its vertices are relabelled
        along the path starting from the lowest-id endpoint.
        """
        if not graph.is_path():
            raise ValueError("task graph is not a simple path")
        if graph.num_vertices == 1:
            return cls([graph.vertex_weight(0)], [])
        endpoints = [v for v in range(graph.num_vertices) if graph.degree(v) == 1]
        order = [min(endpoints)]
        prev = -1
        while len(order) < graph.num_vertices:
            current = order[-1]
            nxt = [v for v in graph.neighbors(current) if v != prev]
            prev = current
            order.append(nxt[0])
        alpha = [graph.vertex_weight(v) for v in order]
        beta = [
            graph.edge_weight(order[i], order[i + 1])
            for i in range(len(order) - 1)
        ]
        return cls(alpha, beta)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Chain):
            return NotImplemented
        return self._alpha == other._alpha and self._beta == other._beta

    def __repr__(self) -> str:
        return f"Chain(n={self.num_tasks}, W={self.total_weight():g})"
