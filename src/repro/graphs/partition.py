"""Edge cuts and the partitions they induce.

The paper states all three optimization problems over an *edge cut*
``S subset-of E`` and the connected components of ``G - S``:

- *execution-time bound*: every component's vertex weight is at most K;
- *bottleneck*: ``max_{e in S} delta(e)`` (Section 2.1);
- *processor count*: number of components (Section 2.2);
- *bandwidth*: ``sum_{e in S} beta(e)`` (Section 2.3).

:class:`Cut` is a thin immutable wrapper over a set of canonical edges
bound to a graph; :class:`Partition` materializes the induced components
and exposes all the objectives.  Both work for general
:class:`~repro.graphs.task_graph.TaskGraph` instances; chain algorithms
use plain edge-index lists internally and convert at the API boundary
via :func:`cut_from_chain_indices`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.graphs.chain import Chain
from repro.graphs.task_graph import Edge, TaskGraph, canonical_edge


class Cut:
    """An immutable edge cut ``S`` on a task graph."""

    __slots__ = ("_graph", "_edges")

    def __init__(self, graph: TaskGraph, edges: Iterable[Edge]) -> None:
        self._graph = graph
        canonical = frozenset(canonical_edge(u, v) for u, v in edges)
        known = set(graph.edges())
        missing = canonical - known
        if missing:
            raise ValueError(f"cut contains edges not in the graph: {sorted(missing)}")
        self._edges: FrozenSet[Edge] = canonical

    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def edges(self) -> FrozenSet[Edge]:
        return self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[Edge]:
        return iter(sorted(self._edges))

    def __contains__(self, edge: Edge) -> bool:
        return canonical_edge(*edge) in self._edges

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cut):
            return NotImplemented
        return self._edges == other._edges and self._graph is other._graph

    def __hash__(self) -> int:
        return hash(self._edges)

    # -- objectives ----------------------------------------------------
    def bottleneck(self) -> float:
        """``max_{e in S} delta(e)``; 0 for the empty cut."""
        if not self._edges:
            return 0.0
        return max(self._graph.edge_weight(u, v) for u, v in self._edges)

    def bandwidth(self) -> float:
        """``sum_{e in S} beta(e)`` — total communication crossing the cut."""
        return sum(self._graph.edge_weight(u, v) for u, v in self._edges)

    def partition(self) -> "Partition":
        return Partition(self._graph, self)

    def is_feasible(self, bound: float) -> bool:
        """Execution-time-bound check: all components of ``G - S`` weigh <= bound."""
        return all(
            w <= bound for w in self._graph.component_weights(set(self._edges))
        )

    def __repr__(self) -> str:
        return f"Cut(|S|={len(self._edges)}, bandwidth={self.bandwidth():g})"


class Partition:
    """The connected components induced by removing a cut from its graph."""

    __slots__ = ("_graph", "_cut", "_components", "_weights")

    def __init__(self, graph: TaskGraph, cut: Cut) -> None:
        if cut.graph is not graph:
            raise ValueError("cut belongs to a different graph")
        self._graph = graph
        self._cut = cut
        self._components: List[List[int]] = graph.connected_components(
            set(cut.edges)
        )
        self._weights: List[float] = [
            sum(graph.vertex_weight(v) for v in component)
            for component in self._components
        ]

    @property
    def graph(self) -> TaskGraph:
        return self._graph

    @property
    def cut(self) -> Cut:
        return self._cut

    @property
    def components(self) -> List[List[int]]:
        return self._components

    @property
    def component_weights(self) -> List[float]:
        return self._weights

    @property
    def num_processors(self) -> int:
        """Number of components = processors required (Section 2.2)."""
        return len(self._components)

    def max_component_weight(self) -> float:
        return max(self._weights)

    def bottleneck(self) -> float:
        return self._cut.bottleneck()

    def bandwidth(self) -> float:
        return self._cut.bandwidth()

    def satisfies_bound(self, bound: float) -> bool:
        return self.max_component_weight() <= bound

    def load_imbalance(self) -> float:
        """Ratio of max to mean component weight (1.0 = perfectly balanced)."""
        mean = sum(self._weights) / len(self._weights)
        return self.max_component_weight() / mean if mean else 1.0

    def component_of(self) -> List[int]:
        """``component_of[v]`` = index of the component containing vertex v."""
        owner = [0] * self._graph.num_vertices
        for idx, component in enumerate(self._components):
            for v in component:
                owner[v] = idx
        return owner

    def __repr__(self) -> str:
        return (
            f"Partition(k={self.num_processors}, "
            f"max_w={self.max_component_weight():g}, "
            f"bandwidth={self.bandwidth():g})"
        )


def cut_from_chain_indices(
    graph: TaskGraph, indices: Sequence[int]
) -> Cut:
    """Convert chain edge indices (edge ``i`` joins vertices ``i, i+1``)
    into a :class:`Cut` on the chain's task-graph form."""
    return Cut(graph, [(i, i + 1) for i in indices])


def chain_blocks_to_assignment(
    chain: Chain, cut_indices: Sequence[int]
) -> List[int]:
    """Map every chain task to the index of its block under the cut."""
    assignment = [0] * chain.num_tasks
    for block_idx, (lo, hi) in enumerate(chain.cut_components(cut_indices)):
        for v in range(lo, hi + 1):
            assignment[v] = block_idx
    return assignment


def blocks_as_ranges(blocks: Iterable[Tuple[int, int]]) -> str:
    """Human-readable rendering of chain blocks, e.g. ``[0..3 | 4..7]``."""
    return "[" + " | ".join(f"{lo}..{hi}" for lo, hi in blocks) + "]"
