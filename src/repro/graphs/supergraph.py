"""Linear supergraph approximation of general task graphs — Section 3.

The paper's distributed-simulation application notes that when the
simulated system is not linear, "we may first approximate the original
system by generating a super-graph, which is linear, from the process
graph, then apply the algorithm to the super-graph".  This module
provides that construction:

- :func:`bfs_linear_supergraph` — group vertices by BFS layer.  For an
  undirected connected graph, every edge joins vertices in the same or
  adjacent layers, so the quotient over layers is *exactly* a chain and
  the chain's edge weights equal the true inter-layer traffic (no
  over-counting).
- :func:`order_linear_supergraph` — group an arbitrary vertex order into
  given contiguous groups.  Edges spanning non-adjacent groups are
  charged to every boundary they cross, a conservative (over-)estimate
  of the traffic a cut at that boundary pays; the resulting chain is an
  upper-bound model, which keeps the partitioning safe.
- :func:`ring_to_chain` — specialize cycles ("circular type logic
  circuit or network"): break the lightest edge and return the resulting
  exact chain.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.graphs.chain import Chain
from repro.graphs.task_graph import Edge, TaskGraph


@dataclass
class Supergraph:
    """A linear supergraph: the chain, its groups, and projection helpers."""

    graph: TaskGraph
    chain: Chain
    groups: List[List[int]]  # groups[i] = original vertices in chain task i
    exact: bool  # True when chain edge weights equal true crossing traffic

    def group_of(self) -> List[int]:
        owner = [0] * self.graph.num_vertices
        for idx, group in enumerate(self.groups):
            for v in group:
                owner[v] = idx
        return owner

    def project_cut(self, chain_cut: Iterable[int]) -> Set[Edge]:
        """Original edges crossing the chosen chain boundaries.

        Chain edge ``k`` separates groups ``0..k`` from ``k+1..``; the
        projected cut contains every original edge whose endpoints fall
        on opposite sides of *any* chosen boundary.
        """
        boundaries = sorted(set(chain_cut))
        owner = self.group_of()
        cut: Set[Edge] = set()
        for (u, v), _w in self.graph.weighted_edges():
            gu, gv = owner[u], owner[v]
            lo, hi = (gu, gv) if gu <= gv else (gv, gu)
            if any(lo <= b < hi for b in boundaries):
                cut.add((u, v))
        return cut

    def assignment_from_cut(self, chain_cut: Iterable[int]) -> List[int]:
        """Map every original vertex to its block index under the cut."""
        blocks = self.chain.cut_components(chain_cut)
        owner = self.group_of()
        block_of_group = [0] * self.chain.num_tasks
        for b, (lo, hi) in enumerate(blocks):
            for g in range(lo, hi + 1):
                block_of_group[g] = b
        return [block_of_group[owner[v]] for v in range(self.graph.num_vertices)]


def bfs_linear_supergraph(graph: TaskGraph, source: int = 0) -> Supergraph:
    """Exact linear supergraph via BFS layering from ``source``.

    Requires a connected graph.  Layer ``i``'s super-node weight is the
    sum of its vertex weights; the super-edge between layers ``i`` and
    ``i+1`` carries the total weight of edges joining them.  Intra-layer
    edges never cross any chain boundary and are therefore free (they
    stay on one processor for any contiguous chain partition).
    """
    n = graph.num_vertices
    if n == 0:
        raise ValueError("empty graph")
    level = [-1] * n
    level[source] = 0
    queue = deque((source,))
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if level[v] == -1:
                level[v] = level[u] + 1
                queue.append(v)
    if any(lv == -1 for lv in level):
        raise ValueError("graph must be connected for BFS layering")
    num_layers = max(level) + 1
    groups: List[List[int]] = [[] for _ in range(num_layers)]
    for v in range(n):
        groups[level[v]].append(v)
    alpha = [
        sum(graph.vertex_weight(v) for v in group) or 1e-9 for group in groups
    ]
    beta = [0.0] * max(num_layers - 1, 0)
    for (u, v), w in graph.weighted_edges():
        lu, lv = level[u], level[v]
        if abs(lu - lv) == 1:
            beta[min(lu, lv)] += w
        elif abs(lu - lv) > 1:
            raise AssertionError("BFS layering violated — non-adjacent edge")
    return Supergraph(graph, Chain(alpha, beta), groups, exact=True)


def order_linear_supergraph(
    graph: TaskGraph, order: Sequence[int], group_sizes: Sequence[int]
) -> Supergraph:
    """Linear supergraph over an arbitrary vertex order.

    ``order`` is a permutation of the vertices; ``group_sizes`` splits it
    into consecutive groups (must sum to ``n``).  Each boundary's edge
    weight is the total weight of original edges crossing it, so an edge
    spanning several groups is charged once per crossed boundary —
    a conservative traffic estimate (``exact=False``).
    """
    n = graph.num_vertices
    if sorted(order) != list(range(n)):
        raise ValueError("order must be a permutation of the vertices")
    if sum(group_sizes) != n or any(s <= 0 for s in group_sizes):
        raise ValueError("group sizes must be positive and sum to n")
    groups: List[List[int]] = []
    pos = 0
    for size in group_sizes:
        groups.append(list(order[pos : pos + size]))
        pos += size
    owner = [0] * n
    for idx, group in enumerate(groups):
        for v in group:
            owner[v] = idx
    alpha = [sum(graph.vertex_weight(v) for v in group) for group in groups]
    beta = [0.0] * (len(groups) - 1)
    exact = True
    for (u, v), w in graph.weighted_edges():
        lo, hi = sorted((owner[u], owner[v]))
        if hi - lo > 1:
            exact = False
        for b in range(lo, hi):
            beta[b] += w
    return Supergraph(graph, Chain(alpha, beta), groups, exact=exact)


def ring_to_chain(graph: TaskGraph) -> Tuple[Supergraph, Edge]:
    """Break a cycle graph at its lightest edge, yielding an exact chain.

    Returns the supergraph (groups are singletons along the ring) and
    the broken edge.  The broken edge's traffic is *not* represented in
    the chain; callers treat it as permanently local by keeping its two
    endpoints' blocks on one processor or accounting for it separately.
    """
    n = graph.num_vertices
    if n < 3 or graph.num_edges != n or any(graph.degree(v) != 2 for v in range(n)):
        raise ValueError("graph is not a simple cycle")
    broken = min(graph.weighted_edges(), key=lambda item: (item[1], item[0]))[0]
    start, end = broken
    # Walk the ring from `start` away from `end`.
    order = [start]
    prev = end
    while len(order) < n:
        current = order[-1]
        nxt = [v for v in graph.neighbors(current) if v != prev][0]
        prev = current
        order.append(nxt)
    alpha = [graph.vertex_weight(v) for v in order]
    beta = [
        graph.edge_weight(order[i], order[i + 1]) for i in range(n - 1)
    ]
    groups = [[v] for v in order]
    return (
        Supergraph(graph, Chain(alpha, beta), groups, exact=True),
        broken,
    )
