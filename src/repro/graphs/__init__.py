"""Task-graph substrate: weighted graphs, chains, trees, partitions.

This package provides the data structures that every algorithm in
:mod:`repro.core` and :mod:`repro.baselines` operates on:

- :class:`~repro.graphs.task_graph.TaskGraph` — a general undirected,
  vertex- and edge-weighted task graph (tasks = vertices, data
  dependencies = edges), as defined in Section 1 of the paper.
- :class:`~repro.graphs.chain.Chain` — a linear task graph
  ``v_1 - v_2 - ... - v_n`` with vertex weights ``alpha`` and edge
  weights ``beta`` (Section 2.3).
- :class:`~repro.graphs.tree.Tree` — a tree task graph (Sections 2.1,
  2.2).
- :class:`~repro.graphs.partition.Cut` /
  :class:`~repro.graphs.partition.Partition` — an edge cut ``S`` and
  the induced connected components of ``G - S``, together with the
  three objectives the paper optimizes (bottleneck, component count,
  bandwidth).
- :mod:`~repro.graphs.generators` — seeded random instance generators
  used by the Figure-2 experiments.
- :mod:`~repro.graphs.supergraph` — linear *supergraph* approximation
  of a general task graph (Section 3, distributed simulation study).
"""

from repro.graphs.chain import Chain
from repro.graphs.partition import Cut, Partition
from repro.graphs.ring import Ring
from repro.graphs.task_graph import Edge, TaskGraph
from repro.graphs.tree import Tree

__all__ = [
    "Chain",
    "Cut",
    "Edge",
    "Partition",
    "Ring",
    "TaskGraph",
    "Tree",
]
