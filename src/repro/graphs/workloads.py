"""Domain workload generators from the paper's motivating applications.

Section 1 motivates linear task graphs with concrete workloads: "image
processing, signal processing, generic algorithms, and scientific and
engineering computing ... naturally structured for pipelined, or
iterative (parallel) computation", and PDE solvers that "decompose the
problem into strips of grid points of simple iterative calculations
where each strip needs data from neighbouring strips".  These
generators produce those shapes with controlled, documented weight
profiles, so the examples and benchmarks exercise the algorithms on
workloads with realistic *structure* rather than only uniform noise.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from repro.graphs.chain import Chain
from repro.graphs.ring import Ring


def pde_strip_chain(
    num_strips: int,
    grid_rows: int,
    rng: Optional[random.Random] = None,
    hotspot: Optional[float] = None,
) -> Chain:
    """Strips of a PDE grid solved iteratively (Section 1's example).

    Each strip holds ``grid_rows`` rows of points; compute cost is
    proportional to its point count, communication to the shared
    boundary (one row).  ``hotspot`` (0..1) optionally concentrates
    extra refinement around that relative position, producing the
    non-uniform strips that make partitioning interesting.
    """
    if num_strips < 1 or grid_rows < 1:
        raise ValueError("need at least one strip and one row")
    r = rng or random.Random(0)
    alpha: List[float] = []
    for s in range(num_strips):
        rows = grid_rows * (0.9 + 0.2 * r.random())
        if hotspot is not None:
            position = s / max(num_strips - 1, 1)
            # Gaussian refinement bump: up to 4x the base resolution.
            rows *= 1.0 + 3.0 * math.exp(-((position - hotspot) / 0.1) ** 2)
        alpha.append(rows)
    # Boundary exchange: one row of ghost cells each way, mildly noisy.
    beta = [
        grid_rows * (0.95 + 0.1 * r.random()) / 4.0
        for _ in range(num_strips - 1)
    ]
    return Chain(alpha, beta)


def image_pipeline_chain(
    stages: Optional[List[Tuple[str, float, float]]] = None,
) -> Chain:
    """A typical image-processing pipeline (Section 1's example).

    ``stages`` is a list of ``(name, compute_cost, output_volume)``;
    the default models a classic pipeline: decode -> denoise ->
    transform -> feature extraction -> classify, where intermediate
    volumes shrink towards the end.
    """
    if stages is None:
        stages = [
            ("decode", 4.0, 100.0),
            ("denoise", 10.0, 100.0),
            ("white-balance", 3.0, 100.0),
            ("downscale", 2.0, 25.0),
            ("gradient", 6.0, 25.0),
            ("edges", 5.0, 12.0),
            ("features", 12.0, 2.0),
            ("descriptor", 8.0, 1.0),
            ("classify", 9.0, 0.1),
        ]
    if not stages:
        raise ValueError("pipeline needs at least one stage")
    alpha = [cost for _name, cost, _vol in stages]
    beta = [vol for _name, _cost, vol in stages[:-1]]
    return Chain(alpha, beta)


def signal_chain(
    num_taps: int,
    sample_rate: float = 1.0,
    decimation_every: int = 8,
    rng: Optional[random.Random] = None,
) -> Chain:
    """A software-radio style signal chain: filter taps at a sample
    rate, with periodic decimation stages that halve downstream volume.

    Compute per tap is uniform-ish; communication volume drops by half
    after every ``decimation_every``-th stage — the strongly non-uniform
    edge-weight profile where bandwidth minimization visibly beats
    weight-oblivious splits (cut at the decimated edges!).
    """
    if num_taps < 1:
        raise ValueError("need at least one tap")
    r = rng or random.Random(0)
    alpha = [sample_rate * (0.8 + 0.4 * r.random()) for _ in range(num_taps)]
    beta: List[float] = []
    volume = 64.0 * sample_rate
    for tap in range(num_taps - 1):
        beta.append(volume * (0.9 + 0.2 * r.random()))
        if (tap + 1) % decimation_every == 0:
            volume /= 2.0
    return Chain(alpha, beta)


def iterative_solver_ring(
    num_domains: int,
    rng: Optional[random.Random] = None,
) -> Ring:
    """A periodic-boundary iterative solver: domains on a ring exchange
    halos with both neighbours (the "circular ... in nature" case)."""
    if num_domains < 3:
        raise ValueError("need at least three domains")
    r = rng or random.Random(0)
    alpha = [10.0 * (0.7 + 0.6 * r.random()) for _ in range(num_domains)]
    beta = [2.0 * (0.8 + 0.4 * r.random()) for _ in range(num_domains)]
    return Ring(alpha, beta)
