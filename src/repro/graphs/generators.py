"""Seeded random instance generators.

The Figure-2 simulations in the paper are run on synthetic chains with
"module execution weights" drawn from a bounded range; Section 2.3.2
analyses the case of vertex weights uniform on ``[w1, w2]``.  These
generators reproduce that family, plus the tree families needed by the
Algorithm 2.1/2.2 experiments and the worked examples.

Every generator takes a ``random.Random`` instance (or a seed) so that
experiments are deterministic and reproducible.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple, Union

from repro.graphs.chain import Chain
from repro.graphs.tree import Tree

RandomLike = Union[random.Random, int, None]


def _resolve_rng(rng: RandomLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


# ----------------------------------------------------------------------
# Chains
# ----------------------------------------------------------------------
def random_chain(
    n: int,
    rng: RandomLike = None,
    vertex_range: Tuple[float, float] = (1.0, 10.0),
    edge_range: Tuple[float, float] = (1.0, 10.0),
    integer_weights: bool = False,
) -> Chain:
    """A chain of ``n`` tasks with uniform weights.

    ``vertex_range = (w1, w2)`` matches the paper's uniform-weight model;
    set ``integer_weights=True`` for instances where exact tie behaviour
    matters (oracle cross-checks).
    """
    if n < 1:
        raise ValueError("chain needs at least one task")
    r = _resolve_rng(rng)
    if integer_weights:
        lo_v, hi_v = int(vertex_range[0]), int(vertex_range[1])
        lo_e, hi_e = int(edge_range[0]), int(edge_range[1])
        alpha = [float(r.randint(lo_v, hi_v)) for _ in range(n)]
        beta = [float(r.randint(lo_e, hi_e)) for _ in range(n - 1)]
    else:
        alpha = [r.uniform(*vertex_range) for _ in range(n)]
        beta = [r.uniform(*edge_range) for _ in range(n - 1)]
    return Chain(alpha, beta)


def uniform_chain(n: int, vertex_weight: float = 1.0, edge_weight: float = 1.0) -> Chain:
    """A chain with identical weights everywhere (worst case for primes)."""
    return Chain([vertex_weight] * n, [edge_weight] * (n - 1))


def pipeline_chain(
    stage_costs: Sequence[float], message_volumes: Sequence[float]
) -> Chain:
    """A chain built directly from pipeline stage costs and message volumes
    (the Section 3 real-time workload shape)."""
    return Chain(list(stage_costs), list(message_volumes))


# ----------------------------------------------------------------------
# Trees
# ----------------------------------------------------------------------
def random_tree(
    n: int,
    rng: RandomLike = None,
    vertex_range: Tuple[float, float] = (1.0, 10.0),
    edge_range: Tuple[float, float] = (1.0, 10.0),
    attachment: str = "uniform",
    integer_weights: bool = False,
) -> Tree:
    """A random tree on ``n`` vertices.

    ``attachment`` controls the shape:

    - ``"uniform"`` — each new vertex attaches to a uniformly random
      earlier vertex (random recursive tree; logarithmic depth).
    - ``"preferential"`` — attaches proportionally to current degree
      (star-like hubs; stresses Algorithm 2.2's leaf sorting).
    - ``"path"`` — attaches to the previous vertex (degenerate chain).
    """
    if n < 1:
        raise ValueError("tree needs at least one vertex")
    r = _resolve_rng(rng)

    def draw(lo: float, hi: float) -> float:
        if integer_weights:
            return float(r.randint(int(lo), int(hi)))
        return r.uniform(lo, hi)

    weights = [draw(*vertex_range) for _ in range(n)]
    edges: List[Tuple[int, int]] = []
    edge_weights: List[float] = []
    degree = [0] * n
    for v in range(1, n):
        if attachment == "uniform":
            parent = r.randrange(v)
        elif attachment == "path":
            parent = v - 1
        elif attachment == "preferential":
            # Degree + 1 weighting over the first v vertices.
            total = v + sum(degree[:v])
            pick = r.uniform(0, total)
            acc = 0.0
            parent = v - 1
            for u in range(v):
                acc += degree[u] + 1
                if pick <= acc:
                    parent = u
                    break
        else:
            raise ValueError(f"unknown attachment model {attachment!r}")
        edges.append((parent, v))
        edge_weights.append(draw(*edge_range))
        degree[parent] += 1
        degree[v] += 1
    return Tree(weights, edges, edge_weights)


def random_star(
    num_leaves: int,
    rng: RandomLike = None,
    leaf_range: Tuple[float, float] = (1.0, 10.0),
    edge_range: Tuple[float, float] = (1.0, 10.0),
    center_weight: float = 0.0,
) -> Tree:
    """A star graph as used in the Theorem 1 knapsack reduction."""
    r = _resolve_rng(rng)
    leaf_weights = [r.uniform(*leaf_range) for _ in range(num_leaves)]
    edge_weights = [r.uniform(*edge_range) for _ in range(num_leaves)]
    return Tree.star(center_weight, leaf_weights, edge_weights)


def balanced_binary_tree(
    depth: int,
    rng: RandomLike = None,
    vertex_range: Tuple[float, float] = (1.0, 10.0),
    edge_range: Tuple[float, float] = (1.0, 10.0),
) -> Tree:
    """A complete binary tree of the given depth (divide-and-conquer shape
    motivating tree task graphs in Section 1)."""
    r = _resolve_rng(rng)
    n = 2 ** (depth + 1) - 1
    weights = [r.uniform(*vertex_range) for _ in range(n)]
    edges = [((v - 1) // 2, v) for v in range(1, n)]
    edge_weights = [r.uniform(*edge_range) for _ in range(n - 1)]
    return Tree(weights, edges, edge_weights)


def caterpillar_tree(
    spine: int,
    legs_per_vertex: int,
    rng: RandomLike = None,
    vertex_range: Tuple[float, float] = (1.0, 10.0),
    edge_range: Tuple[float, float] = (1.0, 10.0),
) -> Tree:
    """A caterpillar: a spine path with ``legs_per_vertex`` leaves hanging
    off every spine vertex — the shape Algorithm 2.2 peels efficiently."""
    if spine < 1:
        raise ValueError("caterpillar needs at least one spine vertex")
    r = _resolve_rng(rng)
    n = spine + spine * legs_per_vertex
    weights = [r.uniform(*vertex_range) for _ in range(n)]
    edges: List[Tuple[int, int]] = []
    edge_weights: List[float] = []
    for s in range(1, spine):
        edges.append((s - 1, s))
        edge_weights.append(r.uniform(*edge_range))
    leaf = spine
    for s in range(spine):
        for _ in range(legs_per_vertex):
            edges.append((s, leaf))
            edge_weights.append(r.uniform(*edge_range))
            leaf += 1
    return Tree(weights, edges, edge_weights)


# ----------------------------------------------------------------------
# Figure-2 instance family
# ----------------------------------------------------------------------
def figure2_chain(
    n: int,
    w_max: float,
    rng: RandomLike = None,
    w_min: float = 1.0,
) -> Chain:
    """The instance family of the paper's simulations: vertex weights
    uniform on ``[w_min, w_max]`` ("module execution time"), unit-range
    edge weights."""
    r = _resolve_rng(rng)
    alpha = [r.uniform(w_min, w_max) for _ in range(n)]
    beta = [r.uniform(1.0, w_max) for _ in range(max(n - 1, 0))]
    return Chain(alpha, beta)


def bound_for_ratio(chain: Chain, ratio: float) -> float:
    """An execution-time bound ``K = ratio * max_i alpha_i``.

    The paper requires ``K > max alpha_i``, so ``ratio`` must exceed 1;
    Section 2.3.2's average-case analysis is parameterized by ``K / w2``.
    """
    if ratio <= 1.0:
        raise ValueError("K must exceed the maximum vertex weight (ratio > 1)")
    return ratio * chain.max_vertex_weight()
