"""Partition-quality metrics over arbitrary vertex assignments.

The machine and simulation benchmarks compare partitions produced by
different algorithms; this module computes the quantities the paper
argues about — total crossing traffic (bandwidth demand on the
interconnection network), the heaviest single inter-component flow
(bottleneck), per-component loads and balance — from a plain
``vertex -> component`` assignment, independent of how it was produced.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.graphs.task_graph import TaskGraph


@dataclass(frozen=True)
class PartitionMetrics:
    """Aggregate quality figures for one assignment."""

    num_components: int
    component_loads: Tuple[float, ...]
    external_bandwidth: float
    internal_bandwidth: float
    bottleneck_flow: float
    max_load: float
    mean_load: float

    @property
    def load_imbalance(self) -> float:
        return self.max_load / self.mean_load if self.mean_load else 1.0

    @property
    def communication_fraction(self) -> float:
        total = self.external_bandwidth + self.internal_bandwidth
        return self.external_bandwidth / total if total else 0.0


def evaluate_assignment(
    graph: TaskGraph, assignment: Sequence[int]
) -> PartitionMetrics:
    """Compute :class:`PartitionMetrics` for ``assignment[v] -> component``."""
    if len(assignment) != graph.num_vertices:
        raise ValueError("assignment must cover every vertex")
    loads: Dict[int, float] = defaultdict(float)
    for v in range(graph.num_vertices):
        loads[assignment[v]] += graph.vertex_weight(v)

    external = 0.0
    internal = 0.0
    flows: Dict[Tuple[int, int], float] = defaultdict(float)
    for (u, v), w in graph.weighted_edges():
        cu, cv = assignment[u], assignment[v]
        if cu == cv:
            internal += w
        else:
            external += w
            key = (cu, cv) if cu < cv else (cv, cu)
            flows[key] += w

    load_values = tuple(loads[c] for c in sorted(loads))
    return PartitionMetrics(
        num_components=len(loads),
        component_loads=load_values,
        external_bandwidth=external,
        internal_bandwidth=internal,
        bottleneck_flow=max(flows.values()) if flows else 0.0,
        max_load=max(load_values),
        mean_load=sum(load_values) / len(load_values),
    )


def pairwise_flows(
    graph: TaskGraph, assignment: Sequence[int]
) -> Dict[Tuple[int, int], float]:
    """Traffic between every pair of components (canonical pair keys)."""
    flows: Dict[Tuple[int, int], float] = defaultdict(float)
    for (u, v), w in graph.weighted_edges():
        cu, cv = assignment[u], assignment[v]
        if cu != cv:
            key = (cu, cv) if cu < cv else (cv, cu)
            flows[key] += w
    return dict(flows)


def compare_assignments(
    graph: TaskGraph, assignments: Dict[str, Sequence[int]]
) -> List[Tuple[str, PartitionMetrics]]:
    """Evaluate several named assignments, sorted by external bandwidth."""
    rows = [
        (name, evaluate_assignment(graph, assignment))
        for name, assignment in assignments.items()
    ]
    rows.sort(key=lambda item: item[1].external_bandwidth)
    return rows
