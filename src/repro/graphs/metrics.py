"""Partition-quality metrics over arbitrary vertex assignments.

The machine and simulation benchmarks compare partitions produced by
different algorithms; this module computes the quantities the paper
argues about — total crossing traffic (bandwidth demand on the
interconnection network), the heaviest single inter-component flow
(bottleneck), per-component loads and balance — from a plain
``vertex -> component`` assignment, independent of how it was produced.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.graphs.chain import Chain
from repro.graphs.task_graph import TaskGraph


@dataclass(frozen=True)
class PartitionMetrics:
    """Aggregate quality figures for one assignment."""

    num_components: int
    component_loads: Tuple[float, ...]
    external_bandwidth: float
    internal_bandwidth: float
    bottleneck_flow: float
    max_load: float
    mean_load: float

    @property
    def load_imbalance(self) -> float:
        return self.max_load / self.mean_load if self.mean_load else 1.0

    @property
    def communication_fraction(self) -> float:
        total = self.external_bandwidth + self.internal_bandwidth
        return self.external_bandwidth / total if total else 0.0


def evaluate_assignment(
    graph: TaskGraph, assignment: Sequence[int]
) -> PartitionMetrics:
    """Compute :class:`PartitionMetrics` for ``assignment[v] -> component``."""
    if len(assignment) != graph.num_vertices:
        raise ValueError("assignment must cover every vertex")
    loads: Dict[int, float] = defaultdict(float)
    for v in range(graph.num_vertices):
        loads[assignment[v]] += graph.vertex_weight(v)

    external = 0.0
    internal = 0.0
    flows: Dict[Tuple[int, int], float] = defaultdict(float)
    for (u, v), w in graph.weighted_edges():
        cu, cv = assignment[u], assignment[v]
        if cu == cv:
            internal += w
        else:
            external += w
            key = (cu, cv) if cu < cv else (cv, cu)
            flows[key] += w

    load_values = tuple(loads[c] for c in sorted(loads))
    return PartitionMetrics(
        num_components=len(loads),
        component_loads=load_values,
        external_bandwidth=external,
        internal_bandwidth=internal,
        bottleneck_flow=max(flows.values()) if flows else 0.0,
        max_load=max(load_values),
        mean_load=sum(load_values) / len(load_values),
    )


def pairwise_flows(
    graph: TaskGraph, assignment: Sequence[int]
) -> Dict[Tuple[int, int], float]:
    """Traffic between every pair of components (canonical pair keys)."""
    flows: Dict[Tuple[int, int], float] = defaultdict(float)
    for (u, v), w in graph.weighted_edges():
        cu, cv = assignment[u], assignment[v]
        if cu != cv:
            key = (cu, cv) if cu < cv else (cv, cu)
            flows[key] += w
    return dict(flows)


def chain_bandwidth_lower_bound(chain: Chain, bound: float) -> float:
    """Combinatorial lower bound on the optimal chain bandwidth at ``bound``.

    Träff–Wimmer-style counting argument (arXiv 1410.0462): any
    partition of the chain into components of weight at most ``bound``
    needs at least ``m = ceil(total_weight / bound)`` components, hence
    at least ``m - 1`` cut edges — and no choice of cut edges can cost
    less than the ``m - 1`` smallest edge weights.  The bound is cheap
    (``O(n log n)``), valid for every feasible partition, and usually
    loose; its value is that ``achieved == lower_bound`` *proves*
    optimality, and the gap between them is an honest per-solve quality
    signal (the ``solve.optimality_gap`` gauge).

    Returns 0.0 when one component suffices or ``bound`` is not a
    positive finite weight limit (no cut is forced, so the only safe
    bound is the trivial one).
    """
    if not math.isfinite(bound) or bound <= 0.0:
        return 0.0
    total = chain.total_weight()
    min_components = math.ceil(total / bound)
    if min_components <= 1:
        return 0.0
    forced_cuts = min(min_components - 1, chain.num_edges)
    return math.fsum(sorted(chain.beta)[:forced_cuts])


def optimality_gap(achieved: float, lower_bound: float) -> float:
    """Relative gap ``(achieved - lower_bound) / achieved`` in ``[0, 1]``.

    0.0 means the solution is *provably* optimal (it meets the lower
    bound — including the ``achieved == 0`` no-cut case); values near
    1.0 mean the bound certifies almost nothing.  Clamped so a loose
    bound can never report a negative gap.
    """
    if achieved <= 0.0:
        return 0.0
    gap = (achieved - lower_bound) / achieved
    return min(max(gap, 0.0), 1.0)


def compare_assignments(
    graph: TaskGraph, assignments: Dict[str, Sequence[int]]
) -> List[Tuple[str, PartitionMetrics]]:
    """Evaluate several named assignments, sorted by external bandwidth."""
    rows = [
        (name, evaluate_assignment(graph, assignment))
        for name, assignment in assignments.items()
    ]
    rows.sort(key=lambda item: item[1].external_bandwidth)
    return rows
