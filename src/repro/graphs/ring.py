"""Circular (ring) task graphs.

Section 3 motivates systems that are "circular or linear in nature",
e.g. circular logic circuits; a ring is the natural task graph of such
systems before any linearization.  Vertices ``0 .. n-1`` sit on a
cycle; edge ``i`` joins task ``i`` and task ``(i+1) mod n`` (so there
are exactly ``n`` edges, unlike a chain's ``n-1``).

Cutting a set of ring edges leaves arcs; cutting nothing leaves the
whole ring as one (cyclic) component.  :class:`Ring` provides the arc
arithmetic and :meth:`Ring.open_at` builds the chain obtained by
removing one edge — the reduction both the exact partitioner
(:mod:`repro.core.ring`) and the supergraph linearizer rely on.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Iterable, List, Sequence, Tuple

from repro.graphs.chain import Chain
from repro.graphs.task_graph import TaskGraph


class Ring:
    """A circular task graph with ``n`` tasks and ``n`` edges."""

    __slots__ = ("_alpha", "_beta", "_prefix")

    def __init__(self, alpha: Sequence[float], beta: Sequence[float]) -> None:
        if len(alpha) < 3:
            raise ValueError("a ring needs at least three tasks")
        self._alpha: List[float] = [float(a) for a in alpha]
        self._beta: List[float] = [float(b) for b in beta]
        if len(self._beta) != len(self._alpha):
            raise ValueError(
                f"ring with {len(self._alpha)} tasks needs "
                f"{len(self._alpha)} edge weights, got {len(self._beta)}"
            )
        for i, a in enumerate(self._alpha):
            if a <= 0:
                raise ValueError(f"task {i} has non-positive weight {a}")
        for i, b in enumerate(self._beta):
            if b < 0:
                raise ValueError(f"edge {i} has negative weight {b}")
        self._prefix = [0.0]
        self._prefix.extend(accumulate(self._alpha))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_tasks(self) -> int:
        return len(self._alpha)

    @property
    def num_edges(self) -> int:
        return len(self._beta)

    @property
    def alpha(self) -> List[float]:
        return self._alpha

    @property
    def beta(self) -> List[float]:
        return self._beta

    def total_weight(self) -> float:
        return self._prefix[-1]

    def max_vertex_weight(self) -> float:
        return max(self._alpha)

    def edge_weight(self, i: int) -> float:
        return self._beta[i % self.num_tasks]

    def arc_weight(self, start: int, length: int) -> float:
        """Weight of the arc of ``length`` tasks beginning at ``start``
        (clockwise, wrapping).  ``length`` may not exceed ``n``."""
        n = self.num_tasks
        if not 1 <= length <= n:
            raise ValueError(f"arc length {length} out of range")
        start %= n
        end = start + length
        if end <= n:
            return self._prefix[end] - self._prefix[start]
        return (self._prefix[n] - self._prefix[start]) + self._prefix[end - n]

    def cut_weight(self, cut: Iterable[int]) -> float:
        return sum(self._beta[i % self.num_tasks] for i in set(
            i % self.num_tasks for i in cut
        ))

    # ------------------------------------------------------------------
    # Cuts and arcs
    # ------------------------------------------------------------------
    def cut_components(self, cut: Iterable[int]) -> List[Tuple[int, int]]:
        """Arcs induced by cutting the given edges, as ``(start, length)``.

        Edge ``i`` separates task ``i`` from task ``i+1 (mod n)``.  An
        empty cut leaves the whole ring: ``[(0, n)]``.
        """
        n = self.num_tasks
        boundaries = sorted({i % n for i in cut})
        if not boundaries:
            return [(0, n)]
        arcs: List[Tuple[int, int]] = []
        for idx, b in enumerate(boundaries):
            nxt = boundaries[(idx + 1) % len(boundaries)]
            start = (b + 1) % n
            length = (nxt - b) % n
            if length == 0:
                length = n
            arcs.append((start, length))
        return arcs

    def component_weights(self, cut: Iterable[int]) -> List[float]:
        return [
            self.arc_weight(start, length)
            for start, length in self.cut_components(cut)
        ]

    def is_feasible_cut(self, cut: Iterable[int], bound: float) -> bool:
        return all(w <= bound for w in self.component_weights(cut))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def open_at(self, edge: int) -> Chain:
        """The chain obtained by deleting ring edge ``edge``.

        The chain's tasks are ring tasks ``edge+1, edge+2, ..., edge``
        (clockwise); its edge ``j`` is ring edge ``(edge + 1 + j) mod n``.
        """
        n = self.num_tasks
        edge %= n
        order = [(edge + 1 + k) % n for k in range(n)]
        alpha = [self._alpha[v] for v in order]
        beta = [self._beta[(edge + 1 + j) % n] for j in range(n - 1)]
        return Chain(alpha, beta)

    def chain_edge_to_ring_edge(self, opened_at: int, chain_edge: int) -> int:
        """Map an edge index of ``open_at(opened_at)`` back to the ring."""
        return (opened_at + 1 + chain_edge) % self.num_tasks

    def to_task_graph(self) -> TaskGraph:
        n = self.num_tasks
        edges = [(i, (i + 1) % n) for i in range(n)]
        return TaskGraph(self._alpha, edges, self._beta)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ring):
            return NotImplemented
        return self._alpha == other._alpha and self._beta == other._beta

    def __repr__(self) -> str:
        return f"Ring(n={self.num_tasks}, W={self.total_weight():g})"
