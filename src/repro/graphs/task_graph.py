"""General weighted task graphs.

A task graph ``G_task = (N, MD)`` (paper, Section 1) models a parallel
application: each vertex is a task carrying a processing requirement
``w(t_i)`` and each edge is a data dependency carrying a communication
volume ``w(m_i)``.  Vertices are integers ``0 .. n-1``; an edge is an
unordered pair stored in canonical ``(min, max)`` order.

The class is deliberately simple and allocation-light: adjacency is a
list of lists, weights are plain ``float`` lists/dicts.  All partitioning
algorithms in this repository run on millions-of-edge instances inside
benchmarks, so hot helpers (component sweeps, weight sums) avoid per-call
object churn.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

Edge = Tuple[int, int]


def canonical_edge(u: int, v: int) -> Edge:
    """Return the canonical ``(min, max)`` form of the undirected edge ``{u, v}``."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not a valid task-graph edge")
    return (u, v) if u < v else (v, u)


class TaskGraph:
    """An undirected task graph with vertex and edge weights.

    Parameters
    ----------
    vertex_weights:
        Processing requirement ``w(t_i)`` for each task, indexed by vertex id.
        All weights must be non-negative.
    edges:
        Iterable of ``(u, v)`` pairs (any order; stored canonically).
    edge_weights:
        Communication volume ``w(m_i)`` per edge.  Either a mapping from
        canonical edge to weight, or a sequence aligned with ``edges``.
        Defaults to weight ``1.0`` on every edge.
    """

    __slots__ = ("_vertex_weights", "_edge_weights", "_adjacency")

    def __init__(
        self,
        vertex_weights: Sequence[float],
        edges: Iterable[Edge] = (),
        edge_weights: Optional[object] = None,
    ) -> None:
        self._vertex_weights: List[float] = [float(w) for w in vertex_weights]
        for i, w in enumerate(self._vertex_weights):
            if w < 0:
                raise ValueError(f"vertex {i} has negative weight {w}")
        n = len(self._vertex_weights)
        self._adjacency: List[List[int]] = [[] for _ in range(n)]
        self._edge_weights: Dict[Edge, float] = {}

        edge_list = [canonical_edge(u, v) for u, v in edges]
        weights = self._resolve_edge_weights(edge_list, edge_weights)
        for edge, weight in zip(edge_list, weights):
            self.add_edge(edge[0], edge[1], weight)

    @staticmethod
    def _resolve_edge_weights(
        edge_list: List[Edge], edge_weights: Optional[object]
    ) -> List[float]:
        if edge_weights is None:
            return [1.0] * len(edge_list)
        if isinstance(edge_weights, dict):
            return [
                float(edge_weights[canonical_edge(*edge)]) for edge in edge_list
            ]
        weights = [float(w) for w in edge_weights]
        if len(weights) != len(edge_list):
            raise ValueError(
                f"{len(weights)} edge weights given for {len(edge_list)} edges"
            )
        return weights

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> Edge:
        """Insert edge ``{u, v}`` with the given weight and return its canonical form."""
        edge = canonical_edge(u, v)
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            raise ValueError(f"edge ({u}, {v}) references a vertex out of range")
        if edge in self._edge_weights:
            raise ValueError(f"duplicate edge {edge}")
        if weight < 0:
            raise ValueError(f"edge {edge} has negative weight {weight}")
        self._edge_weights[edge] = float(weight)
        self._adjacency[edge[0]].append(edge[1])
        self._adjacency[edge[1]].append(edge[0])
        return edge

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertex_weights)

    @property
    def num_edges(self) -> int:
        return len(self._edge_weights)

    @property
    def vertex_weights(self) -> List[float]:
        """The vertex-weight list (do not mutate)."""
        return self._vertex_weights

    def vertex_weight(self, v: int) -> float:
        return self._vertex_weights[v]

    def edge_weight(self, u: int, v: int) -> float:
        return self._edge_weights[canonical_edge(u, v)]

    def has_edge(self, u: int, v: int) -> bool:
        return canonical_edge(u, v) in self._edge_weights

    def edges(self) -> Iterator[Edge]:
        """Iterate over canonical edges in insertion order."""
        return iter(self._edge_weights)

    def weighted_edges(self) -> Iterator[Tuple[Edge, float]]:
        return iter(self._edge_weights.items())

    def edge_weight_map(self) -> Dict[Edge, float]:
        """A copy of the edge-weight mapping."""
        return dict(self._edge_weights)

    def neighbors(self, v: int) -> List[int]:
        return self._adjacency[v]

    def degree(self, v: int) -> int:
        return len(self._adjacency[v])

    def total_vertex_weight(self) -> float:
        return sum(self._vertex_weights)

    def total_edge_weight(self) -> float:
        return sum(self._edge_weights.values())

    def max_vertex_weight(self) -> float:
        return max(self._vertex_weights) if self._vertex_weights else 0.0

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def connected_components(
        self, removed_edges: Optional[Set[Edge]] = None
    ) -> List[List[int]]:
        """Connected components of ``G - removed_edges`` as vertex lists.

        ``removed_edges`` must contain canonical edges.  Runs one BFS sweep
        in ``O(n + m)``.
        """
        removed = removed_edges or frozenset()
        seen = [False] * self.num_vertices
        components: List[List[int]] = []
        for start in range(self.num_vertices):
            if seen[start]:
                continue
            seen[start] = True
            component = [start]
            queue = deque((start,))
            while queue:
                u = queue.popleft()
                for v in self._adjacency[u]:
                    if seen[v]:
                        continue
                    edge = (u, v) if u < v else (v, u)
                    if edge in removed:
                        continue
                    seen[v] = True
                    component.append(v)
                    queue.append(v)
            components.append(component)
        return components

    def component_weights(
        self, removed_edges: Optional[Set[Edge]] = None
    ) -> List[float]:
        """Total vertex weight of each component of ``G - removed_edges``."""
        return [
            sum(self._vertex_weights[v] for v in component)
            for component in self.connected_components(removed_edges)
        ]

    def is_connected(self) -> bool:
        return self.num_vertices <= 1 or len(self.connected_components()) == 1

    def is_tree(self) -> bool:
        return (
            self.num_vertices >= 1
            and self.num_edges == self.num_vertices - 1
            and self.is_connected()
        )

    def is_path(self) -> bool:
        """True when the graph is a simple path ``v_0 - v_1 - ... - v_{n-1}``
        in *some* vertex order."""
        if self.num_vertices == 0:
            return False
        if self.num_vertices == 1:
            return self.num_edges == 0
        if not self.is_tree():
            return False
        degrees = [self.degree(v) for v in range(self.num_vertices)]
        return max(degrees) <= 2 and degrees.count(1) == 2

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def copy(self) -> "TaskGraph":
        clone = TaskGraph(self._vertex_weights)
        for edge, weight in self._edge_weights.items():
            clone.add_edge(edge[0], edge[1], weight)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskGraph):
            return NotImplemented
        return (
            self._vertex_weights == other._vertex_weights
            and self._edge_weights == other._edge_weights
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are not hashable
        raise TypeError("TaskGraph is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"TaskGraph(n={self.num_vertices}, m={self.num_edges}, "
            f"W={self.total_vertex_weight():g})"
        )
