"""Tree task graphs.

Sections 2.1 and 2.2 of the paper partition *tree* task graphs.  This
class wraps :class:`~repro.graphs.task_graph.TaskGraph` with a
tree-structure guarantee and the traversal helpers the tree algorithms
need (rooting, post-order, subtree weights, leaf/internal queries).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.graphs.task_graph import Edge, TaskGraph, canonical_edge


class Tree(TaskGraph):
    """A connected, acyclic task graph.

    Construction validates the tree property (``m = n - 1`` and connected).
    All :class:`TaskGraph` operations remain available.
    """

    def __init__(
        self,
        vertex_weights: Sequence[float],
        edges: Iterable[Edge],
        edge_weights: Optional[object] = None,
    ) -> None:
        super().__init__(vertex_weights, edges, edge_weights)
        if not self.is_tree():
            raise ValueError(
                f"graph with n={self.num_vertices}, m={self.num_edges} "
                "is not a tree (must be connected and acyclic)"
            )

    # ------------------------------------------------------------------
    # Rooted views
    # ------------------------------------------------------------------
    def bfs_order(self, root: int = 0) -> Tuple[List[int], List[int]]:
        """Return ``(order, parent)`` for a BFS from ``root``.

        ``order`` visits every vertex exactly once starting at the root;
        ``parent[root] == -1``.
        """
        parent = [-2] * self.num_vertices
        parent[root] = -1
        order = [root]
        queue = deque((root,))
        while queue:
            u = queue.popleft()
            for v in self.neighbors(u):
                if parent[v] == -2:
                    parent[v] = u
                    order.append(v)
                    queue.append(v)
        return order, parent

    def post_order(self, root: int = 0) -> Tuple[List[int], List[int]]:
        """Return ``(post_order, parent)`` — children always before parents."""
        order, parent = self.bfs_order(root)
        return order[::-1], parent

    def subtree_weights(self, root: int = 0) -> List[float]:
        """``w[v]`` = total vertex weight of the subtree rooted at ``v``
        (with the tree rooted at ``root``)."""
        order, parent = self.post_order(root)
        weights = list(self.vertex_weights)
        for v in order:
            if parent[v] >= 0:
                weights[parent[v]] += weights[v]
        return weights

    # ------------------------------------------------------------------
    # Leaf / internal structure (Algorithm 2.2 vocabulary)
    # ------------------------------------------------------------------
    def leaves(self) -> List[int]:
        """All vertices of degree <= 1 (a single-vertex tree has one leaf)."""
        if self.num_vertices == 1:
            return [0]
        return [v for v in range(self.num_vertices) if self.degree(v) == 1]

    def internal_vertices(self) -> List[int]:
        return [v for v in range(self.num_vertices) if self.degree(v) >= 2]

    def is_star(self) -> bool:
        """True when some vertex is adjacent to all others."""
        if self.num_vertices <= 2:
            return True
        return any(
            self.degree(v) == self.num_vertices - 1
            for v in range(self.num_vertices)
        )

    # ------------------------------------------------------------------
    # Contraction (super-node construction of Section 2.2)
    # ------------------------------------------------------------------
    def contract_components(
        self, cut: Set[Edge]
    ) -> Tuple["Tree", List[List[int]], Dict[Edge, Edge]]:
        """Lump each component of ``T - cut`` into a super-node.

        Section 2.2: after bottleneck minimization splits the tree into
        components, merging each component into a single weighted
        super-node yields a smaller tree whose edges are exactly the cut
        edges.  Returns ``(super_tree, components, edge_origin)`` where
        ``components[i]`` lists the original vertices inside super-node
        ``i`` and ``edge_origin`` maps each super-tree edge back to the
        original cut edge it came from.
        """
        cut = {canonical_edge(*e) for e in cut}
        known = set(self.edges())
        missing = cut - known
        if missing:
            raise ValueError(f"cut edges not present in tree: {sorted(missing)}")
        components = self.connected_components(cut)
        component_of = [0] * self.num_vertices
        for idx, component in enumerate(components):
            for v in component:
                component_of[v] = idx
        weights = [
            sum(self.vertex_weight(v) for v in component)
            for component in components
        ]
        super_edges: List[Edge] = []
        super_edge_weights: List[float] = []
        edge_origin: Dict[Edge, Edge] = {}
        for u, v in cut:
            super_edge = canonical_edge(component_of[u], component_of[v])
            super_edges.append(super_edge)
            super_edge_weights.append(self.edge_weight(u, v))
            edge_origin[super_edge] = (u, v) if u < v else (v, u)
        super_tree = Tree(weights, super_edges, super_edge_weights)
        return super_tree, components, edge_origin

    @classmethod
    def from_task_graph(cls, graph: TaskGraph) -> "Tree":
        if not graph.is_tree():
            raise ValueError("task graph is not a tree")
        return cls(
            graph.vertex_weights,
            list(graph.edges()),
            graph.edge_weight_map(),
        )

    @classmethod
    def star(
        cls,
        center_weight: float,
        leaf_weights: Sequence[float],
        edge_weights: Sequence[float],
    ) -> "Tree":
        """A star with vertex 0 as centre and leaves ``1 .. r`` (Theorem 1)."""
        if len(leaf_weights) != len(edge_weights):
            raise ValueError("one edge weight per leaf required")
        weights = [center_weight] + [float(w) for w in leaf_weights]
        edges = [(0, i + 1) for i in range(len(leaf_weights))]
        return cls(weights, edges, list(edge_weights))

    def __repr__(self) -> str:
        return (
            f"Tree(n={self.num_vertices}, leaves={len(self.leaves())}, "
            f"W={self.total_vertex_weight():g})"
        )
