"""JSON-dict serialization for task graphs, chains and trees.

Experiments persist generated instances (and the benchmarks ship a few
fixed ones) as plain dictionaries so they can be dumped with ``json``
without custom encoders.  Round-tripping is exact for the float values
``repr`` preserves (all of them, in CPython).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.graphs.chain import Chain
from repro.graphs.task_graph import TaskGraph
from repro.graphs.tree import Tree


def chain_to_dict(chain: Chain) -> Dict[str, Any]:
    return {"type": "chain", "alpha": list(chain.alpha), "beta": list(chain.beta)}


def chain_from_dict(data: Dict[str, Any]) -> Chain:
    if data.get("type") != "chain":
        raise ValueError(f"not a chain payload: {data.get('type')!r}")
    return Chain(data["alpha"], data["beta"])


def graph_to_dict(graph: TaskGraph) -> Dict[str, Any]:
    kind = "tree" if isinstance(graph, Tree) else "graph"
    edges = []
    weights = []
    for (u, v), w in graph.weighted_edges():
        edges.append([u, v])
        weights.append(w)
    return {
        "type": kind,
        "vertex_weights": list(graph.vertex_weights),
        "edges": edges,
        "edge_weights": weights,
    }


def graph_from_dict(data: Dict[str, Any]) -> TaskGraph:
    kind = data.get("type")
    edges = [tuple(e) for e in data["edges"]]
    if kind == "tree":
        return Tree(data["vertex_weights"], edges, data["edge_weights"])
    if kind == "graph":
        return TaskGraph(data["vertex_weights"], edges, data["edge_weights"])
    raise ValueError(f"unknown graph payload type {kind!r}")
