"""Dynamic race hammer: seeded multi-thread stress over shared state.

The static pass (:mod:`repro.verify.concurrency`) proves the *declared*
lock discipline is followed; this module checks the discipline actually
*works*.  A :class:`ConcurrencyHarness` drives every ``@shared_state``
object through N threads of seeded random operations with the
interpreter's thread switch interval cranked down (so the scheduler
interleaves at bytecode granularity — the Träff–Wimmer stance from
PAPERS.md applied to scheduling: hunt for the adversarial interleaving
rather than hoping the default one is representative), then audits the
end state with exact invariants:

- **no lost updates** — every counter/stat equals the op count the
  threads performed;
- **no torn stats** — cache accounting identities
  (``lookups = hits + interval_hits + misses``,
  ``len = misses - evictions``) hold exactly;
- **no corrupted LRU order** — capacity bounds hold and every served
  result still passes the O(n) paper certificates
  (:func:`repro.verify.certificates.check_chain_partition`) and equals
  the serially-computed reference.

Schedules are deterministic per ``seed`` *at the op level* (each thread
draws from its own ``random.Random(seed, tid)`` stream); the OS still
chooses the interleaving, so the hammer explores a different schedule
each run while the workload itself stays reproducible.

Scenario functions (``hammer_*``) each return a summary dict of what
was verified; they raise :class:`RaceConditionError` on any violation.
The scenarios cover exactly the objects :data:`SHARED_REGISTRY`
declares: ``PrimeStructureCache``, ``PlanCache``, ``TelemetryHub``,
``MetricsRegistry`` (+ instruments), ``Histogram``,
``StreamingJsonlSink`` and ``ProfileSampler``.
"""

from __future__ import annotations

import math
import random
import sys
import threading
import traceback
from typing import Any, Callable, Dict, List, Tuple

from repro.verify.markers import SHARED_REGISTRY  # noqa: F401 - re-export


class RaceConditionError(AssertionError):
    """A hammer run violated a shared-state invariant."""


#: Op callback signature: ``(thread_id, op_index, rng) -> None``.
HammerOp = Callable[[int, int, random.Random], None]


class ConcurrencyHarness:
    """Run one op callback from N threads under an adversarial scheduler.

    Parameters
    ----------
    threads:
        Worker thread count (the acceptance runs use 8).
    ops_per_thread:
        Ops each thread performs.
    seed:
        Seeds each thread's private ``random.Random(seed, tid)`` stream,
        so the *workload* is bit-reproducible even though the OS-level
        interleaving is not.
    switch_interval:
        Value passed to :func:`sys.setswitchinterval` for the duration
        of the run (restored afterwards).  The tiny default forces
        thread switches every few bytecodes — races that hide for years
        under the 5 ms default surface in one hammer run.
    """

    __slots__ = ("threads", "ops_per_thread", "seed", "switch_interval")

    def __init__(
        self,
        threads: int = 8,
        ops_per_thread: int = 100,
        seed: int = 0,
        switch_interval: float = 1e-5,
    ) -> None:
        if threads < 2:
            raise ValueError(f"need >= 2 threads to race, got {threads}")
        if ops_per_thread <= 0:
            raise ValueError(f"ops_per_thread must be positive, got {ops_per_thread}")
        self.threads = threads
        self.ops_per_thread = ops_per_thread
        self.seed = seed
        self.switch_interval = switch_interval

    @property
    def total_ops(self) -> int:
        return self.threads * self.ops_per_thread

    def run(self, op: HammerOp) -> None:
        """Drive ``op`` from all threads; raise on any thread exception.

        All threads block on a barrier first so they enter the hammer
        loop together — staggered starts would serialize short runs.
        """
        barrier = threading.Barrier(self.threads)
        failures: List[Tuple[int, str]] = []

        def body(tid: int) -> None:
            rng = random.Random(self.seed * 1_000_003 + tid)
            try:
                barrier.wait()
                for i in range(self.ops_per_thread):
                    op(tid, i, rng)
            except BaseException:
                failures.append((tid, traceback.format_exc()))

        workers = [
            threading.Thread(target=body, args=(tid,), name=f"hammer-{tid}")
            for tid in range(self.threads)
        ]
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(self.switch_interval)
        try:
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            sys.setswitchinterval(old_interval)
        if failures:
            detail = "\n".join(f"[thread {tid}]\n{tb}" for tid, tb in failures)
            raise RaceConditionError(
                f"{len(failures)} hammer thread(s) raised:\n{detail}"
            )


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise RaceConditionError(message)


def _make_chains(rng: random.Random, count: int, n: int) -> List[Any]:
    from repro.graphs.chain import Chain

    return [
        Chain(
            alpha=[rng.randint(1, 9) for _ in range(n)],
            beta=[rng.randint(1, 5) for _ in range(n - 1)],
        )
        for _ in range(count)
    ]


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def hammer_prime_structure_cache(
    harness: ConcurrencyHarness, *, chains: int = 4, tasks: int = 60
) -> Dict[str, Any]:
    """Hammer ``PrimeStructureCache.solve`` and certify every answer.

    Invariants checked: each served result is element-identical to the
    serially-computed reference *and* passes the O(n) chain-partition
    certificate; ``stats.lookups`` equals the exact op count (no lost
    stat updates); both LRU levels respect their capacity bounds and
    never hold more structures than misses built (no torn LRU
    bookkeeping).
    """
    from repro.core.bandwidth import bandwidth_min
    from repro.engine.cache import PrimeStructureCache
    from repro.verify.certificates import check_chain_partition

    rng = random.Random(f"{harness.seed}-queries")
    pool = _make_chains(rng, chains, tasks)
    queries: List[Tuple[Any, float]] = []
    for chain in pool:
        alpha_max = int(chain.max_vertex_weight())
        for _ in range(6):
            queries.append((chain, float(rng.randint(alpha_max, 4 * alpha_max))))
    reference = [
        bandwidth_min(chain, bound, apply_reduction=True)
        for chain, bound in queries
    ]

    cache = PrimeStructureCache(max_chains=max(2, chains // 2))
    mistakes: List[str] = []

    def op(tid: int, i: int, op_rng: random.Random) -> None:
        q = op_rng.randrange(len(queries))
        chain, bound = queries[q]
        result = cache.solve(chain, bound)
        expected = reference[q]
        if (
            result.weight != expected.weight
            or list(result.cut_indices) != list(expected.cut_indices)
        ):
            mistakes.append(
                f"query {q}: got weight {result.weight} cut "
                f"{list(result.cut_indices)}, expected {expected.weight}"
            )
            return
        check_chain_partition(
            chain, result.cut_indices, bound, result.weight
        ).raise_if_failed()

    harness.run(op)
    _require(not mistakes, "served results diverged from reference:\n" + "\n".join(mistakes[:5]))
    stats = cache.stats
    _require(
        stats.lookups == harness.total_ops,
        f"lost stat updates: {stats.lookups} lookups != {harness.total_ops} ops",
    )
    _require(
        stats.hits + stats.interval_hits + stats.misses == stats.lookups,
        f"torn stats: {stats!r}",
    )
    stored = len(cache)
    _require(
        stored <= stats.misses,
        f"LRU invented structures: {stored} stored > {stats.misses} misses",
    )
    _require(
        len(cache._entries) <= cache.max_chains,
        f"chain LRU over capacity: {len(cache._entries)}",
    )
    for entry in cache._entries.values():
        _require(
            len(entry.structures) <= cache.max_structures_per_chain,
            f"structure LRU over capacity: {len(entry.structures)}",
        )
    return {
        "ops": harness.total_ops,
        "queries": len(queries),
        "stats": repr(stats),
        "stored_structures": stored,
    }


def hammer_plan_cache(
    harness: ConcurrencyHarness, *, chains: int = 8, tasks: int = 40
) -> Dict[str, Any]:
    """Hammer ``PlanCache.get`` from all threads, then audit the LRU.

    Every returned plan must be compiled for the requested fingerprint
    (a torn get-or-create would hand a plan for chain A to a request
    for chain B); capacity and the ``len = misses - evictions`` identity
    must hold; and each surviving cached plan must still answer a solve
    identically to the pure reference.
    """
    from repro.core.bandwidth import bandwidth_min
    from repro.engine.cache import PlanCache

    rng = random.Random(f"{harness.seed}-plans")
    pool = _make_chains(rng, chains, tasks)
    fingerprints = [chain.fingerprint() for chain in pool]
    cache = PlanCache(max_plans=max(2, chains // 2))
    mismatches: List[str] = []

    def op(tid: int, i: int, op_rng: random.Random) -> None:
        c = op_rng.randrange(len(pool))
        plan = cache.get(pool[c])
        if plan.fingerprint != fingerprints[c]:
            mismatches.append(
                f"asked for chain {c}, got plan for {plan.fingerprint[:12]}"
            )

    harness.run(op)
    _require(not mismatches, "plan cache served wrong plans:\n" + "\n".join(mismatches[:5]))
    stats = cache.stats
    _require(
        stats.lookups == harness.total_ops,
        f"lost stat updates: {stats.lookups} lookups != {harness.total_ops} ops",
    )
    _require(len(cache) <= cache.max_plans, f"over capacity: {len(cache)}")
    _require(
        stats.misses - stats.evictions == len(cache),
        f"LRU accounting broken: len={len(cache)}, {stats!r}",
    )
    # Serial post-validation: surviving plans still answer correctly.
    validated = 0
    for chain in pool:
        key = chain.fingerprint()
        if key in cache._plans:
            plan = cache._plans[key]
            bound = float(2 * chain.max_vertex_weight())
            weight = float(plan.solve_bounds([bound])[0])
            expected = bandwidth_min(chain, bound, apply_reduction=True)
            _require(
                weight == expected.weight,
                f"cached plan diverged: {weight} != {expected.weight}",
            )
            validated += 1
    return {
        "ops": harness.total_ops,
        "stats": repr(stats),
        "plans_cached": len(cache),
        "plans_validated": validated,
    }


def hammer_telemetry_hub(harness: ConcurrencyHarness) -> Dict[str, Any]:
    """Publish from all threads; every event must arrive exactly once.

    A ring buffer sized for the whole run and a counting callback both
    subscribe; afterwards the received multiset must equal the sent
    multiset exactly — no drops (lost appends), no duplicates (torn
    subscriber-list mutation), and no subscriber errors.
    """
    from repro.observability.live import (
        CallbackSubscriber,
        RingBufferSubscriber,
        TelemetryHub,
    )

    total = harness.total_ops
    ring = RingBufferSubscriber(capacity=2 * total)
    # The counting callback is deliberately a bare read-modify-write:
    # the hub's lock serializes the fan-out, and this count equalling
    # the op total is the proof.
    seen_count = [0]

    def count(event: Dict[str, Any]) -> None:
        seen_count[0] = seen_count[0] + 1

    hub = TelemetryHub([ring, CallbackSubscriber(count)])

    def op(tid: int, i: int, op_rng: random.Random) -> None:
        hub.publish(
            {"kind": "event", "event": "race", "tid": tid, "seq": i}
        )

    harness.run(op)
    _require(not hub.errors, f"subscriber errors: {hub.errors}")
    events = [e for e in ring.events() if e.get("event") == "race"]
    _require(
        len(events) == total,
        f"fan-out lost events: ring has {len(events)}, published {total}",
    )
    _require(
        seen_count[0] == total,
        f"callback missed events: {seen_count[0]} != {total}",
    )
    pairs = {(e["tid"], e["seq"]) for e in events}
    _require(
        len(pairs) == total,
        f"duplicated/torn events: {total - len(pairs)} collisions",
    )
    stamped = sum(1 for e in events if "t" in e)
    _require(stamped == total, f"unstamped events: {total - stamped}")
    return {"ops": total, "events": len(events), "errors": len(hub.errors)}


def hammer_metrics_registry(harness: ConcurrencyHarness) -> Dict[str, Any]:
    """Increment/observe through one shared registry from all threads.

    Counters must equal the exact op totals (the classic lost-update
    check: ``value += 1`` without a lock measurably drops increments at
    this switch interval), gauges must hold a value some thread wrote,
    get-or-create must never mint duplicate instruments, and histogram
    count/sum must match the seeded observation multiset exactly.
    """
    from repro.observability.metrics import MetricsRegistry

    registry = MetricsRegistry()
    expected_obs: List[List[float]] = [
        [float(tid * harness.ops_per_thread + i) % 97 + 0.5 for i in range(harness.ops_per_thread)]
        for tid in range(harness.threads)
    ]

    def op(tid: int, i: int, op_rng: random.Random) -> None:
        registry.counter("race.ops").inc()
        registry.counter("race.weighted").inc(2.0)
        registry.gauge("race.last_tid").set(float(tid))
        registry.histogram("race.latency").observe(expected_obs[tid][i])

    harness.run(op)
    total = harness.total_ops
    _require(
        registry.counter("race.ops").value == total,
        f"lost counter updates: {registry.counter('race.ops').value} != {total}",
    )
    _require(
        registry.counter("race.weighted").value == 2.0 * total,
        f"lost weighted updates: {registry.counter('race.weighted').value}",
    )
    _require(
        0.0 <= registry.gauge("race.last_tid").value < harness.threads,
        f"gauge tore: {registry.gauge('race.last_tid').value}",
    )
    _require(
        len(registry.counters) == 2
        and len(registry.gauges) == 1
        and len(registry.histograms) == 1,
        "get-or-create minted duplicate instruments",
    )
    hist = registry.histogram("race.latency")
    _require(hist.count == total, f"lost observations: {hist.count} != {total}")
    flat = [v for row in expected_obs for v in row]
    _require(
        hist.min == min(flat) and hist.max == max(flat),
        f"extrema tore: [{hist.min}, {hist.max}]",
    )
    if hist.exact:
        _require(
            hist.sum == math.fsum(flat),
            f"torn histogram sum: {hist.sum} != {math.fsum(flat)}",
        )
    return {"ops": total, "histogram_count": hist.count, "exact": hist.exact}


def hammer_histogram(harness: ConcurrencyHarness) -> Dict[str, Any]:
    """Race one histogram across its exact→bucketed spill boundary.

    Threads observe while others read percentiles (racing the memoized
    sorted/CDF views).  Afterwards the count, extrema and total bucket
    mass must match the observation multiset exactly — a torn spill
    would double- or drop-count whole batches.
    """
    from repro.observability.metrics import EXACT_LIMIT, Histogram

    hist = Histogram("race.spill")
    # Size the run to cross the spill boundary mid-hammer.
    assert harness.total_ops > EXACT_LIMIT, "hammer must cross EXACT_LIMIT"

    def op(tid: int, i: int, op_rng: random.Random) -> None:
        hist.observe(float(tid + 1) * 10.0 + (i % 7))
        if i % 16 == 0:
            hist.percentile(95)  # race the memo against writers

    harness.run(op)
    total = harness.total_ops
    _require(hist.count == total, f"lost observations: {hist.count} != {total}")
    _require(not hist.exact, "histogram never spilled despite crossing limit")
    payload = hist.to_payload()
    assert isinstance(payload, dict)
    mass = (
        int(payload["zero"])
        + sum(int(c) for c in payload["pos"].values())
        + sum(int(c) for c in payload["neg"].values())
    )
    _require(
        mass == total,
        f"torn spill: bucket mass {mass} != count {total}",
    )
    _require(hist.min == 10.0, f"min tore: {hist.min}")
    _require(
        hist.max == harness.threads * 10.0 + 6.0,
        f"max tore: {hist.max}",
    )
    return {"ops": total, "bucket_mass": mass, "p95": hist.percentile(95)}


def hammer_streaming_sink(
    harness: ConcurrencyHarness, path: str
) -> Dict[str, Any]:
    """Concurrent writers on one ``StreamingJsonlSink``; file must parse.

    Every line must be complete JSON (no mid-record interleaving), every
    ``(tid, seq)`` record must appear exactly once, ``lines_written``
    must match, and a ``resume=True`` reopen must append parseable
    records without a second header.
    """
    import json

    from repro.observability.live import StreamingJsonlSink

    sink = StreamingJsonlSink(path, meta={"source": "race-hammer"})
    padding = "x" * 64  # long enough that torn writes would split JSON

    def op(tid: int, i: int, op_rng: random.Random) -> None:
        sink.emit(
            {"kind": "event", "event": "race", "tid": tid, "seq": i,
             "pad": padding}
        )

    harness.run(op)
    sink.close()
    total = harness.total_ops
    _require(
        sink.lines_written == total + 1,  # + meta header
        f"lines_written tore: {sink.lines_written} != {total + 1}",
    )

    def parse_all() -> List[Dict[str, Any]]:
        records = []
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise RaceConditionError(
                        f"line {lineno} is torn mid-record: {exc}"
                    ) from exc
        return records

    records = parse_all()
    _require(records[0].get("kind") == "meta", "missing meta header")
    pairs = {(r["tid"], r["seq"]) for r in records if r.get("event") == "race"}
    _require(
        len(pairs) == total,
        f"lost/duplicated records: {len(pairs)} != {total}",
    )

    # Resume and hammer again: still one header, everything parses.
    resumed = StreamingJsonlSink(path, resume=True)

    def op2(tid: int, i: int, op_rng: random.Random) -> None:
        resumed.emit({"kind": "event", "event": "race2", "tid": tid, "seq": i})

    harness.run(op2)
    resumed.close()
    records = parse_all()
    headers = sum(1 for r in records if r.get("kind") == "meta")
    _require(headers == 1, f"resume wrote {headers} headers")
    second = {(r["tid"], r["seq"]) for r in records if r.get("event") == "race2"}
    _require(
        len(second) == total,
        f"lost/duplicated resumed records: {len(second)} != {total}",
    )
    return {"ops": 2 * total, "lines": len(records), "headers": headers}


def hammer_all(
    harness: ConcurrencyHarness, *, sink_path: str
) -> Dict[str, Dict[str, Any]]:
    """Run every scenario; the one-call entry point used by tooling."""
    return {
        "prime_structure_cache": hammer_prime_structure_cache(harness),
        "plan_cache": hammer_plan_cache(harness),
        "telemetry_hub": hammer_telemetry_hub(harness),
        "metrics_registry": hammer_metrics_registry(harness),
        "histogram": hammer_histogram(harness),
        "streaming_sink": hammer_streaming_sink(harness, sink_path),
    }
