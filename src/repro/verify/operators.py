"""Domain-aware AST mutation operators for the solver kill pipeline.

Each operator seeds one family of semantic faults that Algorithm 4.1's
``O(n + p log q)`` construction invites — boundary comparisons in the
critical-window predicate, ±1 shifts in prime-subpath index arithmetic,
dropped cut-set elements, omitted cache-key fields, inverted heap
priorities, unsorted greedy sweeps.  The registry is deliberately small
and *targeted*: every operator models a bug class the verification
stack (tier-1 tests, certificate checkers, NumPy-vs-python cross-check,
contract passes) claims to catch, so a surviving mutant is direct
evidence of a hole in that net.

Sites are enumerated by a deterministic pre-order walk (grammar field
order) of the parsed module, so a ``(module, operator, index)`` triple
names the same mutation on every run and every machine — the property
the seeded sampler and the committed CI baseline both rely on.

Subtrees that cannot carry runtime semantics are never mutated:
annotations (``PEP 563`` strings at runtime), ``returns`` clauses, and
dunder assignments such as ``__slots__``/``__all__``.  Tuples appearing
as a ``Subscript`` slice are excluded from the tuple-field operator —
they are overwhelmingly typing expressions (``Tuple[int, bool]``),
which would only breed equivalent mutants.

Genuinely equivalent mutants are annotated in the *target* source with::

    # repro-mutate: equivalent=<op>[,<op>...] -- reason

on the mutated line (bare ``equivalent`` covers every operator).  The
engine excludes annotated sites from the score denominator and reports
them separately, mirroring the ``# repro-lint: disable=`` pragma
grammar.
"""

from __future__ import annotations

import ast
import copy
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MutationSite",
    "MutationOperator",
    "OPERATORS",
    "operator_catalog",
    "enumerate_sites",
    "apply_site",
    "equivalent_annotations",
]


class MutationSite:
    """One applicable mutation: ``(operator, index)`` plus provenance.

    ``index`` is the occurrence number of the operator within the
    module's deterministic walk — together with the module name it is a
    stable mutant identifier across runs.
    """

    __slots__ = ("operator", "index", "lineno", "col_offset", "description")

    def __init__(
        self,
        operator: str,
        index: int,
        lineno: int,
        col_offset: int,
        description: str,
    ) -> None:
        self.operator = operator
        self.index = index
        self.lineno = lineno
        self.col_offset = col_offset
        self.description = description

    def key(self) -> Tuple[str, int]:
        return (self.operator, self.index)

    def __repr__(self) -> str:
        return (
            f"MutationSite({self.operator}#{self.index} "
            f"@{self.lineno}:{self.col_offset} {self.description!r})"
        )


class MutationOperator:
    """Base class: match AST nodes and produce mutated replacements.

    ``candidates`` returns ``(variant, description)`` pairs for one node
    (several when a node carries multiple mutable positions, e.g. a
    chained comparison).  ``mutate`` edits a *deep-copied* node in place
    or returns a replacement node.
    """

    __slots__ = ()

    name = ""
    summary = ""

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        raise NotImplementedError

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        raise NotImplementedError


_COMPARE_FLIPS: Dict[type, type] = {
    ast.Lt: ast.LtE,
    ast.LtE: ast.Lt,
    ast.Gt: ast.GtE,
    ast.GtE: ast.Gt,
}

_COMPARE_SYMBOLS: Dict[type, str] = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
}


class FlipComparison(MutationOperator):
    """``<`` ↔ ``<=`` / ``>`` ↔ ``>=`` — weight-bound boundary flips.

    Models the classic critical-window bug: treating a subpath of weight
    exactly ``K`` as critical (or vice versa).
    """

    __slots__ = ()

    name = "flip-compare"
    summary = "flip a strict/non-strict comparison (`<` <-> `<=`, `>` <-> `>=`)"

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        if not isinstance(node, ast.Compare):
            return ()
        out: List[Tuple[int, str]] = []
        for i, op in enumerate(node.ops):
            flip = _COMPARE_FLIPS.get(type(op))
            if flip is not None:
                out.append(
                    (i, f"`{_COMPARE_SYMBOLS[type(op)]}` -> `{_COMPARE_SYMBOLS[flip]}`")
                )
        return out

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        assert isinstance(node, ast.Compare)
        node.ops[variant] = _COMPARE_FLIPS[type(node.ops[variant])]()
        return node


class ShiftIndexBoundary(MutationOperator):
    """``x ± 1`` → ``x ± 2`` — off-by-one shifts in index arithmetic.

    Targets the prime-subpath endpoint arithmetic (``b + 1`` prefix
    offsets, ``a + 2`` window floors, ``lo[j] - 1`` gamma translation).
    """

    __slots__ = ()

    name = "shift-index"
    summary = "shift a +/-1 or +/-2 offset one further (off-by-one seeding)"

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        if (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.Add, ast.Sub))
            and isinstance(node.right, ast.Constant)
            and type(node.right.value) is int
            and 1 <= node.right.value <= 2
        ):
            sym = "+" if isinstance(node.op, ast.Add) else "-"
            v = node.right.value
            return ((0, f"`{sym} {v}` -> `{sym} {v + 1}`"),)
        return ()

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        assert isinstance(node, ast.BinOp) and isinstance(node.right, ast.Constant)
        node.right = ast.Constant(value=node.right.value + 1)
        return node


class SwapArithmetic(MutationOperator):
    """``+`` ↔ ``-`` on non-literal operands — prefix-sum sign bugs.

    Complements :class:`ShiftIndexBoundary`: hits the subtraction-form
    weight expressions (``prefix[b + 1] - prefix[a]``) rather than the
    literal offsets inside them.
    """

    __slots__ = ()

    name = "swap-arith"
    summary = "swap `+` <-> `-` where the right operand is not a small literal"

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub))):
            return ()
        # Small-literal offsets belong to shift-index; skip to keep the
        # two operators' site sets disjoint.
        if (
            isinstance(node.right, ast.Constant)
            and type(node.right.value) is int
            and 1 <= node.right.value <= 2
        ):
            return ()
        if isinstance(node.op, ast.Add):
            return ((0, "`+` -> `-`"),)
        return ((0, "`-` -> `+`"),)

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        assert isinstance(node, ast.BinOp)
        node.op = ast.Sub() if isinstance(node.op, ast.Add) else ast.Add()
        return node


class DropAppend(MutationOperator):
    """Delete an ``x.append(...)`` / ``x.add(...)`` statement.

    Models dropped cut-set elements (a cut edge never emitted), dropped
    prime candidates, and lost op-count accounting.
    """

    __slots__ = ()

    name = "drop-append"
    summary = "delete a statement-level `.append(...)` / `.add(...)` call"

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr in ("append", "add")
        ):
            return ((0, f"delete `.{node.value.func.attr}(...)` statement"),)
        return ()

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        return ast.Pass()


class DropTupleField(MutationOperator):
    """Drop the last element of a literal tuple — cache-key omissions.

    Models a fingerprint/cache key missing a distinguishing field
    (``(bound, apply_reduction)`` → ``(bound,)``) and truncated
    multi-value returns.
    """

    __slots__ = ()

    name = "drop-tuple-field"
    summary = "drop the final element of a literal tuple (cache-key omission)"

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        if (
            isinstance(node, ast.Tuple)
            and isinstance(node.ctx, ast.Load)
            and len(node.elts) >= 2
            and field != "slice"  # Subscript slices are typing expressions
            and not any(isinstance(e, ast.Starred) for e in node.elts)
        ):
            return ((0, f"drop final element of {len(node.elts)}-tuple"),)
        return ()

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        assert isinstance(node, ast.Tuple)
        node.elts = node.elts[:-1]
        return node


class InvertHeapOrder(MutationOperator):
    """Negate the priority pushed onto a heap — min-heap → max-heap.

    Targets ``heapq.heappush(heap, (priority, payload))`` call sites in
    the baselines and simulators.
    """

    __slots__ = ()

    name = "heap-invert"
    summary = "negate the first tuple element pushed via `heappush`"

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        if not isinstance(node, ast.Call):
            return ()
        func = node.func
        named = (
            (isinstance(func, ast.Attribute) and func.attr == "heappush")
            or (isinstance(func, ast.Name) and func.id == "heappush")
        )
        if (
            named
            and len(node.args) >= 2
            and isinstance(node.args[1], ast.Tuple)
            and len(node.args[1].elts) >= 1
        ):
            return ((0, "negate heap priority (min-heap -> max-heap)"),)
        return ()

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        assert isinstance(node, ast.Call)
        tup = node.args[1]
        assert isinstance(tup, ast.Tuple)
        tup.elts[0] = ast.UnaryOp(op=ast.USub(), operand=tup.elts[0])
        return node


class DropSorted(MutationOperator):
    """``sorted(x, ...)`` → ``list(x)`` — unsorted greedy sweeps.

    Models the bottleneck greedy consuming edges in arbitrary order
    (key functions and ``reverse=`` flags are dropped along with the
    sort).
    """

    __slots__ = ()

    name = "drop-sorted"
    summary = "replace `sorted(x, ...)` with `list(x)`"

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
            and len(node.args) >= 1
        ):
            return ((0, "`sorted(x, ...)` -> `list(x)`"),)
        return ()

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        assert isinstance(node, ast.Call)
        return ast.Call(
            func=ast.Name(id="list", ctx=ast.Load()),
            args=[node.args[0]],
            keywords=[],
        )


class FlipMinMax(MutationOperator):
    """``min(...)`` ↔ ``max(...)`` — extremum selection bugs.

    Targets the cache stability interval (``min_prime_weight``) and the
    TEMP_S minimum-weight selection.
    """

    __slots__ = ()

    name = "flip-minmax"
    summary = "swap a builtin `min(...)` <-> `max(...)` call"

    def candidates(
        self, node: ast.AST, parent: ast.AST, field: str
    ) -> Sequence[Tuple[int, str]]:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("min", "max")
        ):
            other = "max" if node.func.id == "min" else "min"
            return ((0, f"`{node.func.id}(...)` -> `{other}(...)`"),)
        return ()

    def mutate(self, node: ast.AST, variant: int) -> ast.AST:
        assert isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
        node.func.id = "max" if node.func.id == "min" else "min"
        return node


#: Registry in canonical order — enumeration, sampling and reporting all
#: iterate this tuple, so its order is part of the determinism contract.
OPERATORS: Tuple[MutationOperator, ...] = (
    FlipComparison(),
    ShiftIndexBoundary(),
    SwapArithmetic(),
    DropAppend(),
    DropTupleField(),
    InvertHeapOrder(),
    DropSorted(),
    FlipMinMax(),
)

_OPERATORS_BY_NAME: Dict[str, MutationOperator] = {op.name: op for op in OPERATORS}


def operator_catalog() -> List[Tuple[str, str]]:
    """``(name, summary)`` pairs for docs and ``--help`` style output."""
    return [(op.name, op.summary) for op in OPERATORS]


# ----------------------------------------------------------------------
# Deterministic traversal
# ----------------------------------------------------------------------

#: Node fields whose subtrees carry no runtime semantics worth mutating.
_SKIPPED_FIELDS = frozenset(("annotation", "returns"))


def _is_dunder_assign(node: ast.AST) -> bool:
    """True for ``__slots__ = ...`` style statements (never mutated)."""
    targets: List[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, ast.AnnAssign):
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Name)
            and target.id.startswith("__")
            and target.id.endswith("__")
        ):
            return True
    return False


def _walk(
    node: ast.AST,
) -> Iterator[Tuple[ast.AST, ast.AST, str]]:
    """Pre-order ``(child, parent, field)`` walk in grammar field order."""
    for field, value in ast.iter_fields(node):
        if field in _SKIPPED_FIELDS:
            continue
        if isinstance(value, ast.AST):
            children: List[ast.AST] = [value]
        elif isinstance(value, list):
            children = [v for v in value if isinstance(v, ast.AST)]
        else:
            continue
        for child in children:
            if _is_dunder_assign(child):
                continue
            yield child, node, field
            yield from _walk(child)


def enumerate_sites(tree: ast.Module) -> List[MutationSite]:
    """All mutation sites of the module, in canonical order.

    Canonical order is the pre-order walk, with the operator registry
    order breaking ties on a single node; per-operator indices count up
    in that same order, so ``(operator, index)`` is a stable address.
    """
    counters: Dict[str, int] = {op.name: 0 for op in OPERATORS}
    sites: List[MutationSite] = []
    for node, parent, field in _walk(tree):
        lineno = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        for op in OPERATORS:
            for _variant, description in op.candidates(node, parent, field):
                sites.append(
                    MutationSite(op.name, counters[op.name], lineno, col, description)
                )
                counters[op.name] += 1
    return sites


def apply_site(tree: ast.Module, site: MutationSite) -> ast.Module:
    """Return a deep-copied module with the site's mutation applied.

    Raises :class:`LookupError` when the site does not exist in the
    tree (stale index — e.g. source drifted under a saved baseline).
    """
    op = _OPERATORS_BY_NAME.get(site.operator)
    if op is None:
        raise LookupError(f"unknown mutation operator {site.operator!r}")
    clone = copy.deepcopy(tree)
    seen = 0
    for node, parent, field in _walk(clone):
        for variant, _description in op.candidates(node, parent, field):
            if seen == site.index:
                replacement = op.mutate(node, variant)
                if replacement is not node:
                    _replace_child(parent, field, node, replacement)
                ast.fix_missing_locations(clone)
                return clone
            seen += 1
    raise LookupError(
        f"mutation site {site.operator}#{site.index} not found "
        f"({seen} sites of that operator exist)"
    )


def _replace_child(
    parent: ast.AST, field: str, old: ast.AST, new: ast.AST
) -> None:
    value = getattr(parent, field)
    if isinstance(value, list):
        value[value.index(old)] = new
    else:
        setattr(parent, field, new)


# ----------------------------------------------------------------------
# Equivalent-mutant annotations
# ----------------------------------------------------------------------

_PRAGMA_RE = re.compile(
    r"#\s*repro-mutate:\s*equivalent(?:=(?P<ops>[A-Za-z0-9_,\- ]+?))?\s*(?:--|$)"
)


def equivalent_annotations(source: str) -> Dict[int, FrozenSet[str]]:
    """Per-line equivalent-mutant annotations from the original source.

    Maps 1-based line numbers to the set of operator names annotated as
    equivalent on that line; the sentinel ``"*"`` covers every operator
    (bare ``# repro-mutate: equivalent``).  Unknown operator names are
    kept verbatim — the engine reports them rather than crashing, so a
    typo shows up as an annotation that never matches.
    """
    out: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        ops = match.group("ops")
        if ops is None:
            out[lineno] = frozenset(("*",))
        else:
            names = frozenset(p.strip() for p in ops.split(",") if p.strip())
            out[lineno] = names if names else frozenset(("*",))
    return out


def site_is_annotated(
    site: MutationSite, annotations: Dict[int, FrozenSet[str]]
) -> bool:
    """True when the site's line carries a matching equivalence pragma."""
    names: Optional[FrozenSet[str]] = annotations.get(site.lineno)
    if names is None:
        return False
    return "*" in names or site.operator in names
