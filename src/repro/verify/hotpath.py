"""Hot-path allocation & dispatch analysis over ``@complexity`` code.

PR 6 made the engine's compiled plans answer warm sweeps ~14000x faster
than the seed loop, and the bench ratchet defends that number — but
only on the few paths it times.  Nothing stopped a refactor from
quietly re-introducing per-query allocations or Python-level dispatch
into any *other* hot loop.  Algorithm-engineering work on cut problems
(Noe, arXiv 2108.04566) and memory-bounded tree scheduling (Marchal et
al., arXiv 1210.2580) both make the same point: constant-factor memory
traffic, not asymptotics, decides real throughput.  This pass enforces
that insight statically, the way :mod:`repro.verify.concurrency`
enforces lock discipline.

The analysis roots at every ``@complexity``-decorated function — the
code that *declared itself* a hot path — and follows the same
within-module call-graph machinery ``concurrency.py`` uses (module
functions reached through ``Name`` calls, same-class methods reached
through ``self.<m>()`` calls) so helpers inherit their callers'
hot-path status.  Four rules run over every reached function:

==========  ==========================================================
Code        Rule
==========  ==========================================================
REPRO016    Loop-invariant allocation rebuilt every iteration: a
            non-empty list/dict/set/tuple literal, a comprehension, or
            an ``np.zeros``/``np.empty``/``np.array``-style allocator
            call whose name dependencies are all bound outside the
            loop.  Hoist it (or preallocate a scratch buffer).
REPRO017    The same dotted attribute path loaded >= 2 times per
            iteration of one loop (``edge.first_prime`` three times a
            lap, ``self._memo`` on every pass).  Bind it to a local
            before — or at the top of — the loop body.
REPRO018    Accidentally-quadratic idioms inside a loop: list
            ``insert(0, ...)``, membership tests against a list
            literal, and ``+=`` list/str concatenation.
REPRO019    A chained NumPy expression inside a loop builds >= 2
            intermediate arrays on array operands — an ``out=``/
            in-place form on a preallocated buffer exists.
==========  ==========================================================

REPRO016-REPRO018 are *loop-scoped* rules: a ``# repro-lint:
disable=`` pragma on any enclosing loop header suppresses them for the
whole loop body (nested loops included), so one justified pragma
covers a whole remediated-by-design loop instead of dotting every
line.  REPRO019 keeps the usual line-anchored pragma.

When pointed at a tree that contains the installed ``repro`` package,
only ``core``/``engine``/``graphs`` files are analyzed — the packages
whose ``@complexity`` contracts the empirical gate enforces.  Files
outside a ``repro`` package (fixtures, tests) are always analyzed.

The static pass *claims*; :mod:`repro.verify.allocs` *certifies* —
its ``AllocationHarness`` pins the analyzer-clean paths to committed
allocation budgets in ``BENCH_engine.json``, gated by ``repro
ratchet`` (exactly the concurrency-analyzer/race-hammer pairing).

Run it as a module::

    python -m repro.verify.hotpath src/
    python -m repro.verify.hotpath --list-rules

Exit status: 0 clean, 1 findings, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.verify.codes import messages_for
from repro.verify.lint import Finding, iter_python_files, pragma_disables

#: Drawn from the central registry (:mod:`repro.verify.codes`).
HOTPATH_RULES: Dict[str, str] = messages_for("repro.verify.hotpath")

#: Rules whose pragmas are loop-scoped: a pragma on any enclosing loop
#: header suppresses findings anywhere inside that loop's body.
LOOP_SCOPED_RULES: FrozenSet[str] = frozenset(
    ("REPRO016", "REPRO017", "REPRO018")
)

#: Packages analyzed when the file lives under the ``repro`` package —
#: the @complexity-bearing solver layers the ISSUE scopes this pass to.
_SCOPED_PACKAGES = frozenset(("core", "engine", "graphs"))

#: Module aliases NumPy is conventionally imported as.
_NUMPY_ALIASES = frozenset(("np", "numpy"))

#: ``np.<name>(...)`` calls that allocate a fresh array (REPRO016).
_NUMPY_ALLOCATORS = frozenset(
    (
        "array",
        "asarray",
        "arange",
        "empty",
        "empty_like",
        "full",
        "full_like",
        "linspace",
        "ones",
        "ones_like",
        "zeros",
        "zeros_like",
    )
)

#: ``np.<name>(...)`` elementwise calls that build one temporary each
#: (REPRO019) — every one of them accepts ``out=``.
_NUMPY_ELEMENTWISE = frozenset(
    ("abs", "add", "divide", "maximum", "minimum", "multiply", "subtract",
     "where")
)

#: Loads of one dotted path per iteration tolerated before REPRO017.
_ATTR_LOAD_THRESHOLD = 2

#: Intermediate-producing operations per expression tolerated before
#: REPRO019.
_TEMP_CHAIN_THRESHOLD = 2

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While)
_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_BINOP_TEMP_OPS = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
                   ast.Mod, ast.Pow, ast.BitAnd, ast.BitOr, ast.BitXor)


def _is_complexity_decorator(node: ast.expr) -> bool:
    """True for ``@complexity(...)`` / ``@contracts.complexity(...)``."""
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "complexity"
    if isinstance(target, ast.Attribute):
        return target.attr == "complexity"
    return False


def _has_complexity_contract(node: ast.AST) -> bool:
    decorators = getattr(node, "decorator_list", [])
    return any(_is_complexity_decorator(deco) for deco in decorators)


def _attr_path(node: ast.expr) -> Optional[str]:
    """Dotted path of a pure ``Name.attr.attr...`` chain, else None.

    Subscripts or calls anywhere in the chain break it — the load is
    then not a rebindable constant path.
    """
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


def _load_names(node: ast.AST) -> Set[str]:
    """Names read by an expression, minus comprehension-local targets."""
    comp_targets: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.comprehension):
            for name in ast.walk(sub.target):
                if isinstance(name, ast.Name):
                    comp_targets.add(name.id)
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    } - comp_targets


def _assigned_names(nodes: Sequence[ast.stmt]) -> Set[str]:
    """Every name stored/deleted anywhere under ``nodes``.

    Deliberately coarse (includes nested scopes and comprehension
    targets): a name that *might* change inside the loop must count as
    loop-variant, or REPRO016 would claim false hoists.
    """
    assigned: Set[str] = set()
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(
                sub.ctx, (ast.Store, ast.Del)
            ):
                assigned.add(sub.id)
    return assigned


def _numpy_callee(node: ast.Call) -> Optional[str]:
    """``"zeros"`` for ``np.zeros(...)`` / ``numpy.zeros(...)``."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in _NUMPY_ALIASES
    ):
        return func.attr
    return None


def _allocation_label(node: ast.expr) -> Optional[str]:
    """What kind of allocation ``node`` is, or None.

    Empty literals are exempt: ``row = []`` inside a loop is the
    accumulator-reset idiom, not a hoist candidate.  All-constant
    tuples are exempt too — the compiler folds them to one object.
    """
    if isinstance(node, ast.List) and node.elts:
        return "list literal"
    if isinstance(node, ast.Set) and node.elts:
        return "set literal"
    if isinstance(node, ast.Dict) and node.keys:
        return "dict literal"
    if (
        isinstance(node, ast.Tuple)
        and isinstance(node.ctx, ast.Load)
        and node.elts
        and not all(isinstance(elt, ast.Constant) for elt in node.elts)
    ):
        return "tuple literal"
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.DictComp):
        return "dict comprehension"
    if isinstance(node, ast.Call):
        callee = _numpy_callee(node)
        if callee in _NUMPY_ALLOCATORS:
            return f"np.{callee}(...)"
    return None


class _LoopFrame:
    """One enclosing loop while walking a function body."""

    __slots__ = ("node", "header_line", "variant", "attr_loads",
                 "attr_stores", "first_load")

    def __init__(self, node: ast.stmt, variant: Set[str]) -> None:
        self.node = node
        self.header_line = node.lineno
        self.variant = variant
        #: dotted path -> load count within this loop's per-iteration
        #: region (body, plus the test for while loops).
        self.attr_loads: Dict[str, int] = {}
        #: dotted paths written inside the loop — binding those to a
        #: local would go stale, so they are exempt from REPRO017.
        self.attr_stores: Set[str] = set()
        #: dotted path -> first load node, for finding anchors.
        self.first_load: Dict[str, ast.expr] = {}


class _FunctionScanner:
    """Run the four hot-path rules over one reached function."""

    def __init__(
        self,
        path: Path,
        disables: Dict[int, FrozenSet[str]],
        findings: List[Finding],
        qualname: str,
    ) -> None:
        self.path = path
        self.disables = disables
        self.findings = findings
        self.qualname = qualname
        self.loops: List[_LoopFrame] = []
        self.array_names: Set[str] = set()
        #: node ids of ``in``/``not in`` comparators — the peephole
        #: optimizer folds constant list/set comparators to tuple/
        #: frozenset constants, so they are not per-iteration
        #: allocations (REPRO018 owns the membership finding).
        self._comparator_skip: Set[int] = set()

    # -- pragma plumbing ------------------------------------------------

    def _suppressed(self, code: str, line: int) -> bool:
        if code in self.disables.get(line, frozenset()):
            return True
        if code in LOOP_SCOPED_RULES:
            # Loop-scoped rules honour a pragma on any enclosing loop
            # header: one justified pragma covers the whole body.
            for frame in self.loops:
                if code in self.disables.get(frame.header_line, frozenset()):
                    return True
        return False

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._suppressed(code, line):
            return
        self.findings.append(
            Finding(self.path, line, getattr(node, "col_offset", 0),
                    code, message)
        )

    # -- array-likeness for REPRO019 ------------------------------------

    def _seed_array_names(self, func: ast.AST) -> None:
        """Names that demonstrably hold NumPy arrays in this function.

        A name qualifies when it is assigned from an ``np.*`` call, is
        passed *to* an ``np.*`` call, or is assigned from an expression
        that reads an already-qualified name (one fixpoint sweep per
        round, run to closure).
        """
        body = getattr(func, "body", [])
        np_call_args: Set[str] = set()
        assigns: List[Tuple[Set[str], Set[str]]] = []
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) and _numpy_callee(sub) is not None:
                    for arg in sub.args:
                        np_call_args |= _load_names(arg)
                if isinstance(sub, ast.Assign):
                    targets = {
                        t.id for t in sub.targets if isinstance(t, ast.Name)
                    }
                    if targets:
                        if isinstance(sub.value, ast.Call) and _numpy_callee(
                            sub.value
                        ) is not None:
                            self.array_names |= targets
                        else:
                            assigns.append((targets, _load_names(sub.value)))
        self.array_names |= np_call_args
        changed = True
        while changed:
            changed = False
            for targets, reads in assigns:
                if reads & self.array_names and not targets <= self.array_names:
                    self.array_names |= targets
                    changed = True

    # -- walking --------------------------------------------------------

    def scan(self, func: ast.AST) -> None:
        self._seed_array_names(func)
        for stmt in getattr(func, "body", []):
            self._walk(stmt)

    def _walk(self, node: ast.AST) -> None:
        if isinstance(node, _FUNC_NODES) or isinstance(node, ast.Lambda):
            return  # nested defs run later, on their own clock
        if isinstance(node, _LOOP_NODES):
            self._enter_loop(node)
            return
        if self.loops:
            self._inspect(node)
        if isinstance(node, ast.Attribute) and _attr_path(node) is not None:
            # A pure chain's children are the same load, not new ones —
            # stopping here is what makes REPRO017 count maximal chains.
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _enter_loop(self, node: ast.stmt) -> None:
        variant = _assigned_names(node.body)
        if isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    variant.add(sub.id)
            # The iterable is evaluated once, before the first lap:
            # nothing in it runs per iteration.
            per_iteration: List[ast.AST] = list(node.body)
        else:
            per_iteration = [node.test, *node.body]
        frame = _LoopFrame(node, variant)
        self.loops.append(frame)
        for region_node in per_iteration:
            self._walk(region_node)
        self.loops.pop()
        self._flush_attr_loads(frame)

    def _inspect(self, node: ast.AST) -> None:
        """Per-node rule evaluation inside at least one loop."""
        frame = self.loops[-1]
        if isinstance(node, ast.Compare):
            for op, comparator in zip(node.ops, node.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    self._comparator_skip.add(id(comparator))
        if isinstance(node, ast.expr) and id(node) not in self._comparator_skip:
            label = _allocation_label(node)
            if label is not None and not any(
                _load_names(node) & outer.variant for outer in self.loops
            ):
                self._add(
                    node,
                    "REPRO016",
                    f"{label} is loop-invariant but rebuilt every "
                    f"iteration of the loop at line "
                    f"{self.loops[0].header_line} — hoist it "
                    f"(in {self.qualname})",
                )
        if isinstance(node, ast.Attribute):
            self._record_attr(node, frame)
        if isinstance(node, ast.Call):
            self._check_insert_front(node)
        if isinstance(node, ast.Compare):
            self._check_list_membership(node)
        if isinstance(node, ast.AugAssign):
            self._check_concat_growth(node)
        if isinstance(node, (ast.Assign, ast.Expr, ast.AugAssign)):
            self._check_temp_chain(node)

    # -- REPRO017 -------------------------------------------------------

    def _record_attr(self, node: ast.Attribute, frame: _LoopFrame) -> None:
        path = _attr_path(node)
        if path is None:
            return
        if isinstance(node.ctx, ast.Load):
            # Only maximal chains count: ``a.b`` inside ``a.b.c`` is
            # the same load, not a second one.  _walk visits parents
            # before children, so suppress children here.
            frame.attr_loads[path] = frame.attr_loads.get(path, 0) + 1
            frame.first_load.setdefault(path, node)
        else:
            frame.attr_stores.add(path)

    def _flush_attr_loads(self, frame: _LoopFrame) -> None:
        for path, count in frame.attr_loads.items():
            if count < _ATTR_LOAD_THRESHOLD:
                continue
            root = path.split(".", 1)[0]
            stored_prefix = any(
                store == path or path.startswith(store + ".")
                for store in frame.attr_stores
            )
            # A rebound root (other than the for-target itself) or a
            # stored prefix would make the local binding stale.
            target_names: Set[str] = set()
            if isinstance(frame.node, (ast.For, ast.AsyncFor)):
                target_names = {
                    sub.id
                    for sub in ast.walk(frame.node.target)
                    if isinstance(sub, ast.Name)
                }
            rebound_root = (
                root in _assigned_names(frame.node.body)
                and root not in target_names
            )
            if stored_prefix or rebound_root:
                continue
            anchor = frame.first_load[path]
            self._add(
                anchor,
                "REPRO017",
                f"'{path}' is loaded {count}x per iteration of the loop "
                f"at line {frame.header_line} — bind it to a local "
                f"(in {self.qualname})",
            )

    # -- REPRO018 -------------------------------------------------------

    def _check_insert_front(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "insert"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == 0
        ):
            self._add(
                node,
                "REPRO018",
                "insert(0, ...) inside a loop shifts the whole list "
                f"every call — build reversed and flip once, or use a "
                f"deque (in {self.qualname})",
            )

    def _check_list_membership(self, node: ast.Compare) -> None:
        for op, comparator in zip(node.ops, node.comparators):
            if isinstance(op, (ast.In, ast.NotIn)) and isinstance(
                comparator, ast.List
            ):
                self._add(
                    node,
                    "REPRO018",
                    "membership test against a list inside a loop is a "
                    f"linear scan per lap — use a set or frozenset "
                    f"(in {self.qualname})",
                )

    def _check_concat_growth(self, node: ast.AugAssign) -> None:
        if not isinstance(node.op, ast.Add):
            return
        value = node.value
        grows = (
            isinstance(value, (ast.List, ast.ListComp, ast.JoinedStr))
            or (isinstance(value, ast.Constant) and isinstance(value.value, str))
        )
        if grows:
            self._add(
                node,
                "REPRO018",
                "+= concatenation inside a loop recopies the "
                f"accumulator every lap — append/extend and join once "
                f"(in {self.qualname})",
            )

    # -- REPRO019 -------------------------------------------------------

    def _check_temp_chain(self, node: ast.stmt) -> None:
        value = getattr(node, "value", None)
        if value is None or not self.array_names:
            return
        temps = self._count_temps(value)
        if temps < _TEMP_CHAIN_THRESHOLD:
            return
        if not (_load_names(value) & self.array_names):
            return
        self._add(
            node,
            "REPRO019",
            f"expression chains {temps} array-producing operations "
            f"inside a loop — reuse a scratch buffer via out= "
            f"(in {self.qualname})",
        )

    def _count_temps(self, expr: ast.expr) -> int:
        count = 0
        for sub in ast.walk(expr):
            if isinstance(sub, ast.BinOp) and isinstance(
                sub.op, _BINOP_TEMP_OPS
            ):
                count += 1
            elif isinstance(sub, ast.Call) and (
                _numpy_callee(sub) in _NUMPY_ELEMENTWISE
            ):
                count += 1
        return count


# ----------------------------------------------------------------------
# Call-graph rooting
# ----------------------------------------------------------------------


def _collect_functions(
    tree: ast.Module,
) -> Tuple[Dict[str, ast.AST], Dict[str, Set[str]], List[str]]:
    """Module functions and same-class methods, with resolved calls.

    Keys are ``name`` for module-level functions and ``Class.name``
    for methods — the same within-module machinery the concurrency
    analyzer uses, extended with ``self.<m>()`` edges so decorated
    methods (``CompiledChainPlan.solve_bounds``) reach their private
    ``_impl`` helpers.
    """
    functions: Dict[str, ast.AST] = {}
    owners: Dict[str, Optional[str]] = {}
    for stmt in tree.body:
        if isinstance(stmt, _FUNC_NODES):
            functions[stmt.name] = stmt
            owners[stmt.name] = None
        elif isinstance(stmt, ast.ClassDef):
            for member in stmt.body:
                if isinstance(member, _FUNC_NODES):
                    key = f"{stmt.name}.{member.name}"
                    functions[key] = member
                    owners[key] = stmt.name

    calls: Dict[str, Set[str]] = {}
    for key, node in functions.items():
        owner = owners[key]
        reached: Set[str] = set()
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if isinstance(func, ast.Name) and func.id in functions:
                reached.add(func.id)
            elif (
                owner is not None
                and isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and f"{owner}.{func.attr}" in functions
            ):
                reached.add(f"{owner}.{func.attr}")
        calls[key] = reached

    roots = [key for key, node in functions.items()
             if _has_complexity_contract(node)]
    return functions, calls, roots


def _reachable(calls: Dict[str, Set[str]], roots: List[str]) -> Set[str]:
    reached: Set[str] = set()
    frontier = list(roots)
    while frontier:
        key = frontier.pop()
        if key in reached:
            continue
        reached.add(key)
        frontier.extend(calls.get(key, ()))
    return reached


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def hotpath_check_source(source: str, path: Path) -> List[Finding]:
    """Analyze one module's source; raises ``SyntaxError`` on bad input."""
    tree = ast.parse(source, filename=str(path))
    disables = pragma_disables(source)
    functions, calls, roots = _collect_functions(tree)
    findings: List[Finding] = []
    for key in sorted(_reachable(calls, roots)):  # repro-mutate: equivalent=drop-sorted -- findings are fully re-sorted by (line, col, code) below; scan order is immaterial
        scanner = _FunctionScanner(path, disables, findings, key)
        scanner.scan(functions[key])
    findings.sort(key=lambda f: (f.line, f.col, f.code))  # repro-mutate: equivalent=drop-tuple-field -- rules run in code order; the stable sort keeps it
    return findings


def _in_scope(path: Path) -> bool:
    """Scope repo files to the @complexity-bearing solver packages."""
    parts = path.parts
    if "repro" not in parts:
        return True
    inner = parts[parts.index("repro") + 1:-1]
    return bool(_SCOPED_PACKAGES.intersection(inner))


def check_hotpath(paths: Iterable[Path]) -> Tuple[List[Finding], int]:
    """Analyze files/trees; returns (findings, files_checked)."""
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        if not _in_scope(path):
            continue
        findings.extend(
            hotpath_check_source(path.read_text(encoding="utf-8"), path)
        )
        checked += 1
    return findings, checked


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.hotpath",
        description=(
            "Hot-path allocation & dispatch analysis "
            "(REPRO016-REPRO019) over @complexity-decorated code."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(HOTPATH_RULES):  # repro-mutate: equivalent=drop-sorted -- registry insertion order is already sorted by code
            print(f"{code}  {HOTPATH_RULES[code]}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try 'src/')", file=sys.stderr)
        return 2

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2
    try:
        findings, checked = check_hotpath(targets)
    except SyntaxError as exc:
        print(
            f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
            file=sys.stderr,
        )
        return 2
    for finding in findings:
        print(finding.render())
    summary = (
        f"{len(findings)} finding(s) in {checked} file(s)"
        if findings
        else f"clean: {checked} file(s)"
    )
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
