"""Machine-readable complexity contracts for the paper's solvers.

The paper's headline result is an asymptotic claim — Algorithm 4.1
partitions a chain in ``O(n + p log q)`` against Nicol & O'Hallaron's
``O(n log n)`` — and this module turns such claims into data the build
can check.  Every public solver carries a :func:`complexity` decorator::

    @complexity("n + p log q", counters=("prime_tasks_scanned", "search_steps"))
    def bandwidth_min(chain, bound, ...):
        ...

The decorator parses the budget into a :class:`ComplexityBudget`
(canonical sum-of-products form), attaches it to the function as
``__complexity_contract__`` and records it in a process-wide registry —
at zero per-call cost, the function object itself is returned unchanged.

Three consumers read the contracts:

- the AST pass in this module (:func:`check_contracts`), which fails
  when an exported solver lacks a contract (**REPRO010**) or when its
  docstring states ``O(...)`` claims that all disagree with the declared
  budget (**REPRO011**);
- the empirical gate (:mod:`repro.verify.empirical`), which fits
  measured :class:`~repro.instrumentation.counters.OpCounter` telemetry
  against ``budget.evaluate(...)`` at geometric scales (**REPRO009**);
- humans, via ``repro analyze`` and the docs.

Budget grammar (whitespace-separated product factors, ``+``-separated
terms; see ``docs/verification.md``)::

    budget  := term ("+" term)*
    term    := factor factor*
    factor  := VAR            # n, p, q, r, m, s, c, l  (any [a-z]+ name)
             | VAR "^" INT    # n^2
             | "log" VAR      # log n   (also accepts log(n))
             | INT "^" VAR    # 2^n     (exponential brute-force budgets)
             | INT            # constant factors, ignored asymptotically

This module is deliberately stdlib-only: solver modules in
:mod:`repro.core` and :mod:`repro.baselines` import it at definition
time, so it must not import them (or anything that does) back.
"""

from __future__ import annotations

import ast
import math
import re
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.verify.codes import messages_for
from repro.verify.lint import Finding, pragma_disables

#: Rule codes enforced by the contract AST pass (the empirical gate owns
#: REPRO009; see :mod:`repro.verify.empirical`).
#: Drawn from the central registry (:mod:`repro.verify.codes`).
CONTRACT_RULES: Dict[str, str] = messages_for("repro.verify.contracts")


class BudgetSyntaxError(ValueError):
    """A budget string does not conform to the contract grammar."""


_VAR_RE = re.compile(r"[a-z]+$")
_POW_RE = re.compile(r"([a-z]+)\^(\d+)$")
_EXP_RE = re.compile(r"(\d+)\^([a-z]+)$")
_INT_RE = re.compile(r"\d+$")
_LOG_CALL_RE = re.compile(r"log\s*\(\s*([a-z]+)\s*\)")

#: One canonical product term: sorted polynomial factors ``(var, exp)``,
#: sorted log factors ``(var, exp)`` and sorted exponential factors
#: ``(base, var)``.
Term = Tuple[
    Tuple[Tuple[str, int], ...],
    Tuple[Tuple[str, int], ...],
    Tuple[Tuple[int, str], ...],
]


def _parse_term(text: str) -> Optional[Term]:
    """One product term -> canonical form, or ``None`` if malformed."""
    poly: Dict[str, int] = {}
    logs: Dict[str, int] = {}
    exps: Dict[Tuple[int, str], int] = {}
    tokens = text.split()
    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token == "log":
            if i + 1 >= len(tokens) or not _VAR_RE.match(tokens[i + 1]):
                return None
            logs[tokens[i + 1]] = logs.get(tokens[i + 1], 0) + 1
            i += 2
            continue
        match = _POW_RE.match(token)
        if match:
            var, exp = match.group(1), int(match.group(2))
            poly[var] = poly.get(var, 0) + exp
            i += 1
            continue
        match = _EXP_RE.match(token)
        if match:
            base, var = int(match.group(1)), match.group(2)
            exps[(base, var)] = 1
            i += 1
            continue
        if _INT_RE.match(token):
            i += 1  # constant factor: asymptotically irrelevant
            continue
        if _VAR_RE.match(token):
            poly[token] = poly.get(token, 0) + 1
            i += 1
            continue
        return None
    return (
        tuple(sorted(poly.items())),
        tuple(sorted(logs.items())),
        tuple(sorted(exps)),
    )


class ComplexityBudget:
    """A parsed asymptotic budget in canonical sum-of-products form."""

    __slots__ = ("source", "terms")

    def __init__(self, source: str, terms: FrozenSet[Term]) -> None:
        self.source = source
        self.terms = terms

    @classmethod
    def parse(cls, text: str) -> "ComplexityBudget":
        """Parse a budget string; :class:`BudgetSyntaxError` on bad input."""
        budget = cls.try_parse(text)
        if budget is None:
            raise BudgetSyntaxError(
                f"cannot parse complexity budget {text!r}; expected e.g. "
                "'n + p log q', 'n log n', 'n^2', '2^n n'"
            )
        return budget

    @classmethod
    def try_parse(cls, text: str) -> Optional["ComplexityBudget"]:
        """Lenient variant used on docstring claims: ``None`` on failure."""
        cleaned = text.lower()
        for noise in ("·", "*", "\\cdot", "⋅"):
            cleaned = cleaned.replace(noise, " ")
        cleaned = _LOG_CALL_RE.sub(r"log \1", cleaned)
        if any(ch in cleaned for ch in "()[]{}|_"):
            return None  # nested/structured claims are out of grammar
        terms: List[Term] = []
        parts = cleaned.split("+")
        if not any(part.strip() for part in parts):
            return None
        for part in parts:
            if not part.strip():
                return None
            term = _parse_term(part)
            if term is None:
                return None
            terms.append(term)
        return cls(text, frozenset(terms))

    def canonical(self) -> FrozenSet[Term]:
        return self.terms

    def variables(self) -> FrozenSet[str]:
        names: set = set()
        for poly, logs, exps in self.terms:
            names.update(var for var, _ in poly)
            names.update(var for var, _ in logs)
            names.update(var for _, var in exps)
        return frozenset(names)

    def evaluate(self, **values: float) -> float:
        """The budget's value at concrete sizes, floored at 1.

        ``log`` factors evaluate to ``log2`` and contribute 0 when their
        argument is at most 1 (a term like ``p log q`` vanishes when
        every edge sits in one prime).  The floor keeps the empirical
        gate's log-log fit defined on degenerate instances.
        """
        total = 0.0
        for poly, logs, exps in self.terms:
            value = 1.0
            for var, exp in poly:
                value *= float(values[var]) ** exp
            for var, exp in logs:
                arg = float(values[var])
                value *= (math.log2(arg) if arg > 1.0 else 0.0) ** exp
            for base, var in exps:
                value *= float(base) ** float(values[var])
            total += value
        return max(total, 1.0)

    def matches(self, other: "ComplexityBudget") -> bool:
        return self.terms == other.terms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComplexityBudget):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.terms)

    def __repr__(self) -> str:
        return f"ComplexityBudget({self.source!r})"


class ComplexityContract:
    """The machine-readable contract attached to a solver."""

    __slots__ = ("budget", "counters", "qualname")

    def __init__(
        self,
        budget: ComplexityBudget,
        counters: Tuple[str, ...] = (),
        qualname: str = "",
    ) -> None:
        self.budget = budget
        self.counters = counters
        self.qualname = qualname

    def __repr__(self) -> str:
        return (
            f"ComplexityContract({self.qualname or '<anonymous>'}: "
            f"O({self.budget.source}))"
        )


#: qualname -> contract, filled as solver modules import.
_REGISTRY: Dict[str, ComplexityContract] = {}

F = TypeVar("F", bound=Callable[..., Any])


def complexity(
    budget: str, *, counters: Sequence[str] = ()
) -> Callable[[F], F]:
    """Declare a solver's asymptotic budget (see module docstring).

    ``counters`` names the :class:`OpCounter` keys whose sum measures
    the solver's dominant work — documentation for the empirical gate's
    probes, not enforced per call.  The budget string is parsed once at
    decoration time; the wrapped function is returned unchanged, so the
    contract costs nothing on any call path.
    """
    parsed = ComplexityBudget.parse(budget)

    def mark(fn: F) -> F:
        contract = ComplexityContract(
            parsed,
            counters=tuple(counters),
            qualname=f"{fn.__module__}.{fn.__qualname__}",
        )
        fn.__complexity_contract__ = contract  # type: ignore[attr-defined]
        _REGISTRY[contract.qualname] = contract
        return fn

    return mark


def get_contract(fn: Callable[..., Any]) -> Optional[ComplexityContract]:
    return getattr(fn, "__complexity_contract__", None)


def registered_contracts() -> Dict[str, ComplexityContract]:
    """A snapshot of every contract registered so far, by qualname."""
    return dict(_REGISTRY)


# ----------------------------------------------------------------------
# Static enforcement: REPRO010 / REPRO011
# ----------------------------------------------------------------------

#: Path suffix (posix) -> function names that MUST carry a contract.
#: This is the exported-solver surface of the reproduction: the paper's
#: three algorithms, every baseline it is compared against, and the
#: engine's fast-path kernels.
REQUIRED_CONTRACTS: Dict[str, FrozenSet[str]] = {
    "repro/core/bandwidth.py": frozenset({"bandwidth_min"}),
    "repro/core/bottleneck.py": frozenset(
        {"bottleneck_min", "bottleneck_min_naive"}
    ),
    "repro/core/processor_min.py": frozenset({"processor_min"}),
    "repro/core/prime_subpaths.py": frozenset(
        {"find_prime_subpaths", "compute_prime_structure"}
    ),
    "repro/core/recurrence.py": frozenset({"bandwidth_min_naive"}),
    "repro/core/ring.py": frozenset({"ring_bandwidth_min"}),
    "repro/baselines/nicol.py": frozenset({"bandwidth_min_nlogn"}),
    "repro/baselines/exact_dp.py": frozenset({"bandwidth_min_dp"}),
    "repro/baselines/tree_dp.py": frozenset({"min_cuts_exact"}),
    "repro/baselines/sliding_window.py": frozenset({"bandwidth_min_deque"}),
    "repro/baselines/hansen_lih.py": frozenset({"ccp_hansen_lih"}),
    "repro/baselines/bokhari.py": frozenset({"ccp_dp", "ccp_probe"}),
    "repro/baselines/kundu_misra.py": frozenset({"processor_min_bottom_up"}),
    "repro/baselines/heterogeneous.py": frozenset(
        {"ccp_hetero_dp", "ccp_hetero_probe"}
    ),
    "repro/baselines/brute_force.py": frozenset({"chain_min_bandwidth"}),
    "repro/baselines/greedy.py": frozenset({"first_fit_cut"}),
    "repro/baselines/star_knapsack.py": frozenset({"knapsack_01"}),
    "repro/engine/kernels.py": frozenset(
        {"compute_prime_structure_numpy", "bandwidth_sweep"}
    ),
    "repro/engine/plan.py": frozenset(
        {"compile_chain", "solve_bounds", "solve_beta_sweep"}
    ),
}


def _decorator_budget(node: ast.expr) -> Optional[str]:
    """The budget string of a ``@complexity(...)`` decorator, if that is
    what ``node`` is (``@complexity("...")`` or ``@contracts.complexity``)."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = (
        func.id
        if isinstance(func, ast.Name)
        else func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "complexity":
        return None
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return value
    return ""


def _oh_claims(docstring: str) -> List[str]:
    """Every ``O(...)`` claim in a docstring, parens balanced."""
    claims: List[str] = []
    i = 0
    while True:
        i = docstring.find("O(", i)
        if i < 0:
            return claims
        if i > 0 and (docstring[i - 1].isalnum() or docstring[i - 1] == "_"):
            i += 2  # part of a longer identifier, e.g. FOO(
            continue
        depth = 0
        for j in range(i + 1, len(docstring)):
            if docstring[j] == "(":
                depth += 1
            elif docstring[j] == ")":
                depth -= 1
                if depth == 0:
                    claims.append(docstring[i + 2 : j])
                    break
        else:
            return claims  # unbalanced tail; stop scanning
        i = j + 1


def _docstring_disagrees(budget: ComplexityBudget, docstring: str) -> bool:
    """True when the docstring makes parseable ``O(...)`` claims and not
    one of them matches the declared budget.  Docstrings routinely cite
    *other* bounds for comparison ("versus Nicol's O(n log n)"), so any
    single match clears the function; claims outside the grammar (sums
    over sets, nested parens) are ignored rather than guessed at."""
    parsed = [
        claim_budget
        for claim in _oh_claims(docstring)
        if (claim_budget := ComplexityBudget.try_parse(claim)) is not None
    ]
    if not parsed:
        return False
    return all(not budget.matches(claim) for claim in parsed)


class _ContractChecker(ast.NodeVisitor):
    """Per-file REPRO010/REPRO011 evaluation."""

    def __init__(
        self, path: Path, source: str, required: FrozenSet[str]
    ) -> None:
        self.path = path
        self.required = required
        self.findings: List[Finding] = []
        self._disables = pragma_disables(source)

    def _add(self, node: ast.AST, code: str, detail: str) -> None:
        line = getattr(node, "lineno", 0)
        if code in self._disables.get(line, frozenset()):
            return
        self.findings.append(
            Finding(
                self.path,
                line,
                getattr(node, "col_offset", 0),
                code,
                f"{CONTRACT_RULES[code]}: {detail}",
            )
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: Any) -> None:
        budget_src: Optional[str] = None
        for deco in node.decorator_list:
            budget_src = _decorator_budget(deco)
            if budget_src is not None:
                break
        if budget_src is None:
            if node.name in self.required:
                self._add(node, "REPRO010", node.name)
            return
        budget = ComplexityBudget.try_parse(budget_src)
        if budget is None:
            self._add(
                node, "REPRO011", f"{node.name} declares unparseable budget"
            )
            return
        docstring = ast.get_docstring(node) or ""
        if _docstring_disagrees(budget, docstring):
            self._add(
                node,
                "REPRO011",
                f"{node.name} declares O({budget_src}) but its docstring "
                "claims a different bound",
            )


def check_contracts_source(source: str, path: Path) -> List[Finding]:
    """Contract-check one module's source text.

    REPRO010 applies only to files on the :data:`REQUIRED_CONTRACTS`
    surface; REPRO011 applies to every ``@complexity``-decorated
    function anywhere.
    """
    posix = path.as_posix()
    required: FrozenSet[str] = frozenset()
    for suffix, names in REQUIRED_CONTRACTS.items():
        if posix.endswith(suffix):
            required = names
            break
    tree = ast.parse(source, filename=str(path))
    checker = _ContractChecker(path, source, required)
    checker.visit(tree)
    checker.findings.sort(key=lambda f: (f.line, f.col, f.code))
    return checker.findings


def check_contracts(paths: Iterable[Path]) -> Tuple[List[Finding], int]:
    """Contract-check files/trees; returns ``(findings, files_checked)``."""
    from repro.verify.lint import iter_python_files

    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        findings.extend(
            check_contracts_source(path.read_text(encoding="utf-8"), path)
        )
        checked += 1
    return findings, checked
