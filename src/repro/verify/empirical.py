"""The empirical complexity gate: ``repro analyze --complexity``.

Static contracts (:mod:`repro.verify.contracts`) say what a solver's
cost *should* be; this module checks what it *is*.  Each
:class:`ComplexityProbe` runs a solver on generated workloads (the
paper's Figure-2 instance family) at geometrically spaced scales,
reads the measured operation count out of
:class:`~repro.instrumentation.counters.OpCounter` telemetry, and fits

.. math::

    \\log_2 \\mathrm{ops}(n)
        \\;\\approx\\; \\beta \\cdot \\log_2 B(n, p, q, \\ldots) + c

by least squares, where ``B`` is the declared budget evaluated at the
measured instance parameters.  For an implementation that honours its
contract the growth exponent ``beta`` is at most 1 (up to constant
factors, which the log-log fit absorbs into ``c``); an implementation
that silently became quadratic fits ``beta`` near 2 against a linear
budget.  A probe fails — rule **REPRO009** — when ``beta`` exceeds
``1 + tolerance``.

Operation counts, not wall-clock: counters are exact, deterministic for
a seeded workload, immune to machine noise, and (by construction — see
:func:`repro.core.prime_subpaths.find_prime_subpaths`) monotone in the
instance size, so the fit never sees timer jitter.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.verify.codes import messages_for
from repro.verify.contracts import ComplexityBudget, get_contract

#: Drawn from the central registry (:mod:`repro.verify.codes`).
EMPIRICAL_RULES: Dict[str, str] = messages_for("repro.verify.empirical")

#: A probe measurement: (operation count, instance parameters by name).
Measurement = Tuple[float, Dict[str, float]]

#: Default geometric scales — big enough that asymptotics dominate,
#: small enough that the CI gate stays in the seconds.
DEFAULT_SCALES: Tuple[int, ...] = (512, 1024, 2048, 4096, 8192)
DEFAULT_TOLERANCE = 0.25
DEFAULT_REPS = 2


class ComplexityProbe:
    """One solver's empirical check: a budget plus a measurement hook."""

    __slots__ = ("name", "budget", "measure", "counters")

    def __init__(
        self,
        name: str,
        budget: ComplexityBudget,
        measure: Callable[[int, random.Random], Measurement],
        counters: Tuple[str, ...] = (),
    ) -> None:
        self.name = name
        self.budget = budget
        self.measure = measure
        self.counters = counters

    @classmethod
    def for_function(
        cls,
        name: str,
        fn: Callable[..., object],
        measure: Callable[[int, random.Random], Measurement],
    ) -> "ComplexityProbe":
        """Build a probe from a decorated solver's own contract, so the
        budget under test is the one the static pass enforces."""
        contract = get_contract(fn)
        if contract is None:
            raise ValueError(f"{name}: function carries no @complexity contract")
        return cls(name, contract.budget, measure, contract.counters)

    def __repr__(self) -> str:
        return f"ComplexityProbe({self.name}: O({self.budget.source}))"


class ProbeResult:
    """The fitted outcome of one probe across all scales."""

    __slots__ = (
        "name",
        "budget",
        "slope",
        "tolerance",
        "passed",
        "points",
        "code",
        "message",
    )

    def __init__(
        self,
        name: str,
        budget: str,
        slope: float,
        tolerance: float,
        points: List[Dict[str, float]],
    ) -> None:
        self.name = name
        self.budget = budget
        self.slope = slope
        self.tolerance = tolerance
        self.passed = slope <= 1.0 + tolerance
        self.points = points
        self.code: Optional[str] = None if self.passed else "REPRO009"
        self.message = (
            f"{name}: measured growth exponent {slope:.3f} against declared "
            f"O({budget}) (limit {1.0 + tolerance:.2f})"
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "budget": self.budget,
            "slope": round(self.slope, 4),
            "tolerance": self.tolerance,
            "passed": self.passed,
            "code": self.code,
            "points": self.points,
        }


class GateReport:
    """All probe results from one ``run_complexity_gate`` invocation."""

    __slots__ = ("results", "scales", "seed")

    def __init__(
        self, results: List[ProbeResult], scales: Tuple[int, ...], seed: int
    ) -> None:
        self.results = results
        self.scales = scales
        self.seed = seed

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[ProbeResult]:
        return [result for result in self.results if not result.passed]

    def as_dict(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "scales": list(self.scales),
            "seed": self.seed,
            "probes": [result.as_dict() for result in self.results],
        }

    def render(self) -> str:
        lines = []
        for result in self.results:
            status = "ok  " if result.passed else "FAIL"
            prefix = f"{result.code} " if result.code else ""
            lines.append(f"  {status} {prefix}{result.message}")
        verdict = "passed" if self.passed else "FAILED"
        lines.append(f"complexity gate {verdict} ({len(self.results)} probe(s))")
        return "\n".join(lines)


def _fit_slope(points: List[Tuple[float, float]]) -> float:
    """Least-squares slope of ``log2 ops`` against ``log2 budget``."""
    xs = [math.log2(max(budget, 1.0)) for budget, _ in points]
    ys = [math.log2(max(ops, 1.0)) for _, ops in points]
    k = len(points)
    mean_x = sum(xs) / k
    mean_y = sum(ys) / k
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x <= 1e-12:
        return 0.0  # budget did not grow over the scales; nothing to fit
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return cov / var_x


def run_complexity_gate(
    probes: Optional[Sequence[ComplexityProbe]] = None,
    *,
    scales: Sequence[int] = DEFAULT_SCALES,
    reps: int = DEFAULT_REPS,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: int = 0,
) -> GateReport:
    """Run every probe at every scale and fit the growth exponents.

    Workloads are seeded per ``(seed, probe, scale, rep)``, so the gate
    is reproducible run to run; ``reps`` instances per scale are
    averaged before fitting to smooth instance-to-instance variation in
    the derived parameters (``p``, ``q``).
    """
    if probes is None:
        probes = default_probes()
    results: List[ProbeResult] = []
    for probe in probes:
        fit_points: List[Tuple[float, float]] = []
        report_points: List[Dict[str, float]] = []
        for scale in scales:
            ops_total = 0.0
            var_totals: Dict[str, float] = {}
            for rep in range(reps):
                rng = random.Random(f"{seed}:{probe.name}:{scale}:{rep}")
                ops, variables = probe.measure(scale, rng)
                ops_total += ops
                for key, value in variables.items():
                    var_totals[key] = var_totals.get(key, 0.0) + value
            mean_ops = ops_total / reps
            mean_vars = {k: v / reps for k, v in var_totals.items()}
            budget_value = probe.budget.evaluate(**mean_vars)
            fit_points.append((budget_value, mean_ops))
            point: Dict[str, float] = {
                "scale": float(scale),
                "ops": mean_ops,
                "budget_value": budget_value,
            }
            point.update(mean_vars)
            report_points.append(point)
        slope = _fit_slope(fit_points)
        results.append(
            ProbeResult(
                probe.name, probe.budget.source, slope, tolerance, report_points
            )
        )
    return GateReport(results, tuple(scales), seed)


# ----------------------------------------------------------------------
# Built-in probes: the paper's headline claims
# ----------------------------------------------------------------------

_FIG2_W_MAX = 10.0
_FIG2_RATIO = 4.0


def _fig2_instance(n: int, rng: random.Random) -> Tuple[object, float]:
    from repro.graphs.generators import bound_for_ratio, figure2_chain

    chain = figure2_chain(n, w_max=_FIG2_W_MAX, rng=rng)
    return chain, bound_for_ratio(chain, _FIG2_RATIO)


def _measure_bandwidth_min(n: int, rng: random.Random) -> Measurement:
    """Algorithm 4.1 end to end: preprocessing counters + search steps."""
    from repro.core.bandwidth import bandwidth_min
    from repro.core.prime_subpaths import compute_prime_structure
    from repro.instrumentation.counters import OpCounter

    chain, bound = _fig2_instance(n, rng)
    counter = OpCounter()
    structure = compute_prime_structure(chain, bound, counter=counter)  # type: ignore[arg-type]
    result = bandwidth_min(
        chain, bound, structure=structure, collect_stats=True  # type: ignore[arg-type]
    )
    stats = result.stats
    assert stats is not None
    ops = float(sum(counter.as_dict().values()) + stats.search_steps)
    return ops, {
        "n": float(n),
        "p": float(stats.p),
        "q": float(stats.q),
    }


def _measure_prime_structure(n: int, rng: random.Random) -> Measurement:
    """The O(n) preprocessing alone (analytic sweep counters)."""
    from repro.core.prime_subpaths import compute_prime_structure
    from repro.instrumentation.counters import OpCounter

    chain, bound = _fig2_instance(n, rng)
    counter = OpCounter()
    compute_prime_structure(chain, bound, counter=counter)  # type: ignore[arg-type]
    return float(sum(counter.as_dict().values())), {"n": float(n)}


def _measure_nicol(n: int, rng: random.Random) -> Measurement:
    """The O(n log n) baseline, measured through its tracer span counts."""
    from repro.baselines.nicol import bandwidth_min_nlogn
    from repro.observability.spans import Tracer

    chain, bound = _fig2_instance(n, rng)
    tracer = Tracer()
    bandwidth_min_nlogn(chain, bound, tracer=tracer)
    heap_ops = 0.0
    for record in tracer.records():
        counts = record.get("counts", {})
        heap_ops += counts.get("heap_pushes", 0) + counts.get("heap_pops", 0)
    # The DP reads every task regardless of heap traffic: Omega(n).
    return float(n) + heap_ops, {"n": float(n)}


def default_probes() -> List[ComplexityProbe]:
    """The built-in probe set: Algorithm 4.1, its preprocessing, and the
    Nicol baseline — the three complexity claims the paper rests on."""
    from repro.baselines.nicol import bandwidth_min_nlogn
    from repro.core.bandwidth import bandwidth_min
    from repro.core.prime_subpaths import compute_prime_structure

    return [
        ComplexityProbe.for_function(
            "core.bandwidth_min", bandwidth_min, _measure_bandwidth_min
        ),
        ComplexityProbe.for_function(
            "core.compute_prime_structure",
            compute_prime_structure,
            _measure_prime_structure,
        ),
        ComplexityProbe.for_function(
            "baselines.bandwidth_min_nlogn", bandwidth_min_nlogn, _measure_nicol
        ),
    ]
