"""Fork-isolated execution of mutated solver modules.

A mutant must never touch the orchestrating process: a mutated
``repro.core.bandwidth`` left behind in ``sys.modules`` would corrupt
every later pipeline run (and the golden observations they compare
against).  The runner therefore forks a child per mutant — the child
inherits the parent's warm imports copy-on-write (so a targeted pytest
subset starts in ~0.2 s instead of paying cold-import cost), installs
the mutated source *in its own memory only*, runs the kill pipeline and
reports the verdict over a pipe.  The parent's module graph is never
mutated, by construction rather than by cleanup.

Two failure modes get first-class handling:

- **Timeouts.**  Flipping a ``while`` predicate in the two-pointer
  sweep or the NumPy fix-up loops produces a genuinely non-terminating
  mutant.  The parent polls the pipe with a deadline and kills the
  child; a timeout counts as a kill (attributed to the ``timeout``
  pseudo-layer).
- **Hard crashes.**  A child that dies without reporting (segfault,
  ``os._exit``) is likewise a kill, attributed to ``crash``.

Installation patches by *identity*, not by name: after executing the
mutated source into a fresh namespace, every module in the ``repro``/
``tests`` universe that holds a direct reference to a replaced object
(``from repro.core.bandwidth import bandwidth_min`` style bindings) is
rebound to the mutant's version.  Without this, mutants would silently
survive behind stale direct imports — a false survivor, the worst
failure mode a mutation engine can have.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import sys
import types
from typing import Any, Callable, Iterator, Tuple
from contextlib import contextmanager

__all__ = [
    "SandboxResult",
    "install_module_source",
    "run_sandboxed",
    "silenced_output",
]

#: Top-level package roots whose modules get identity-patched.  Covers
#: the library itself plus test/benchmark modules imported by pytest
#: (which binds solver callables directly at import time).
PATCH_ROOTS = frozenset(("repro", "tests", "conftest", "benchmarks"))

_MISSING = object()


class SandboxResult:
    """Outcome of one sandboxed call.

    ``status`` is ``"ok"`` (``value`` holds the callable's return
    value), ``"timeout"`` (deadline expired, child killed) or
    ``"crashed"`` (child died without reporting; ``value`` holds a
    short description).
    """

    __slots__ = ("status", "value")

    def __init__(self, status: str, value: Any = None) -> None:
        self.status = status
        self.value = value

    def __repr__(self) -> str:
        return f"SandboxResult({self.status!r}, {self.value!r})"


@contextmanager
def silenced_output() -> Iterator[None]:
    """Redirect OS-level stdout/stderr to ``/dev/null``.

    File-descriptor level (``dup2``), not ``sys.stdout`` swapping, so
    output written by pytest's terminal writer and C extensions is
    silenced too.  Used around in-child pytest runs and the parent's
    warm-up run, keeping ``--json`` output machine-clean.
    """
    sys.stdout.flush()
    sys.stderr.flush()
    saved_out = os.dup(1)
    saved_err = os.dup(2)
    devnull = os.open(os.devnull, os.O_WRONLY)
    try:
        os.dup2(devnull, 1)
        os.dup2(devnull, 2)
        yield
    finally:
        sys.stdout.flush()
        sys.stderr.flush()
        os.dup2(saved_out, 1)
        os.dup2(saved_err, 2)
        os.close(devnull)
        os.close(saved_out)
        os.close(saved_err)


def install_module_source(module_name: str, source: str) -> None:
    """Execute ``source`` as ``module_name`` and rebind all users.

    DANGER: this mutates the *current* process's module graph and is
    deliberately irreversible — call it only inside a sandbox child
    (:func:`run_sandboxed`), never in the orchestrating process.

    Steps:

    1. exec the source into a fresh namespace carrying the original
       module's ``__name__``/``__package__``/``__file__`` (so relative
       imports and ``__file__``-based paths keep working);
    2. build an identity map ``id(original attr) -> mutant attr`` for
       every public top-level binding that changed;
    3. sweep every loaded module under :data:`PATCH_ROOTS` and rebind
       any global that *is* (identity, not equality) a replaced object —
       this catches ``from X import f`` bindings made before the swap;
    4. overwrite the original module's ``__dict__`` so module-attribute
       access and lazy ``import X`` inside functions see the mutant.
    """
    original = importlib.import_module(module_name)
    mutant = types.ModuleType(module_name)
    mutant.__dict__["__name__"] = module_name
    mutant.__dict__["__package__"] = original.__package__
    original_file = getattr(original, "__file__", None)
    if original_file is not None:
        mutant.__dict__["__file__"] = original_file
    code = compile(source, original_file or f"<mutant:{module_name}>", "exec")
    exec(code, mutant.__dict__)

    remap: dict = {}
    for key, new_value in mutant.__dict__.items():
        if key.startswith("__"):
            continue
        old_value = original.__dict__.get(key, _MISSING)
        if old_value is not _MISSING and old_value is not new_value:
            remap[id(old_value)] = new_value
    for name, module in list(sys.modules.items()):
        if module is None or module is original:
            continue
        if name.split(".", 1)[0] not in PATCH_ROOTS:
            continue
        namespace = getattr(module, "__dict__", None)
        if namespace is None:
            continue
        for key, value in list(namespace.items()):
            replacement = remap.get(id(value), _MISSING)
            if replacement is not _MISSING:
                namespace[key] = replacement
    original.__dict__.update(mutant.__dict__)


def _child_main(
    conn: Any, fn: Callable[..., Any], args: Tuple[Any, ...]
) -> None:
    """Child entry: run ``fn`` silenced and ship the result back."""
    try:
        with silenced_output():
            value = fn(*args)
        conn.send(("ok", value))
    except BaseException as exc:  # noqa: BLE001 - verdict, not control flow
        try:
            conn.send(("crashed", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def run_sandboxed(
    fn: Callable[..., Any],
    args: Tuple[Any, ...] = (),
    timeout_s: float = 120.0,
) -> SandboxResult:
    """Run ``fn(*args)`` in a killed-on-deadline child process.

    Uses the ``fork`` start method when the platform offers it (the
    warm-import speedup and identity patching both rely on inheriting
    the parent's modules); falls back to ``spawn`` elsewhere, where
    ``fn``/``args`` must be picklable and each call pays cold imports.
    """
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    process = ctx.Process(target=_child_main, args=(child_conn, fn, args))
    process.start()
    child_conn.close()
    try:
        if not parent_conn.poll(timeout_s):
            return SandboxResult("timeout", f"no verdict within {timeout_s:g}s")
        try:
            status, value = parent_conn.recv()
        except EOFError:
            return SandboxResult(
                "crashed", f"child exited without verdict (code {process.exitcode})"
            )
        return SandboxResult(status, value)
    finally:
        if process.is_alive():
            process.kill()
        process.join(10.0)
        parent_conn.close()
