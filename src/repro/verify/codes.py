"""Single registry of every ``REPROxxx`` verification rule.

Before this module existed each analyzer kept its own private
``{code: message}`` dict (``lint.py``, ``flow.py``, ``empirical.py``,
``contracts.py``, ``concurrency.py``, ``hotpath.py``,
``faultflow.py``) and nothing
guaranteed the set stayed coherent: codes could collide, drift from
``docs/verification.md``, or ship without a test ever exercising them.
Now the analyzers *derive* their rule tables from this one place via
:func:`messages_for`, and ``tests/verify/test_codes.py`` asserts every
registered code is documented and exercised.

This is a stdlib-only leaf module (like ``repro.verify.markers``): the
analyzers import it at module load, so it must not import anything from
the rest of the package.
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Tuple


class RuleSpec(NamedTuple):
    """Everything the docs/rule-index table needs to know about a rule.

    ``scope`` is how a ``# repro-lint: disable=`` pragma anchors:
    ``"line"`` (the pragma must sit on the finding's own line) or
    ``"loop"`` (a pragma on any enclosing loop header also suppresses
    findings inside that loop's body — the REPRO016–REPRO018 rules).
    ``certifier`` names the dynamic counterpart that proves the static
    claim at runtime, or ``""`` when the rule is purely static.
    """

    message: str
    module: str
    scope: str
    certifier: str


#: Every verification rule the repository ships, by code.  Analyzer
#: modules build their own tables with :func:`messages_for`; adding a
#: rule here without documenting and testing it fails
#: ``tests/verify/test_codes.py``.
REGISTRY: Dict[str, RuleSpec] = {
    "REPRO001": RuleSpec(
        "print() call in library code (use observability, or return data)",
        "repro.verify.lint", "line", "",
    ),
    "REPRO002": RuleSpec(
        "class in a slotted package without __slots__ (hot-path allocation)",
        "repro.verify.lint", "line", "",
    ),
    "REPRO003": RuleSpec(
        "bare time.time() outside the instrumentation/observability layer",
        "repro.verify.lint", "line", "",
    ),
    "REPRO004": RuleSpec(
        "mutable default argument",
        "repro.verify.lint", "line", "",
    ),
    "REPRO005": RuleSpec(
        "disabled OpCounter constructed directly (use NULL_COUNTER)",
        "repro.verify.lint", "line", "",
    ),
    "REPRO006": RuleSpec(
        "worker code mutates a module-level global (per-process copy)",
        "repro.verify.flow", "line", "",
    ),
    "REPRO007": RuleSpec(
        "unpicklable callable or capture submitted to a process pool",
        "repro.verify.flow", "line", "",
    ),
    "REPRO008": RuleSpec(
        "unseeded random stream in process-pool worker code",
        "repro.verify.flow", "line", "",
    ),
    "REPRO009": RuleSpec(
        "measured op-count growth exceeds the declared complexity budget",
        "repro.verify.empirical", "line", "repro.verify.empirical",
    ),
    "REPRO010": RuleSpec(
        "exported solver lacks a @complexity contract",
        "repro.verify.contracts", "line", "repro.verify.empirical",
    ),
    "REPRO011": RuleSpec(
        "docstring O(...) claims all disagree with the @complexity budget",
        "repro.verify.contracts", "line", "",
    ),
    "REPRO012": RuleSpec(
        "unguarded hub publish in a hot path (wrap in 'if hub.enabled:')",
        "repro.verify.lint", "line", "repro.verify.allocs",
    ),
    "REPRO013": RuleSpec(
        "unguarded write to shared state on a concurrent path "
        "(wrap in 'with self.<lock>:')",
        "repro.verify.concurrency", "line", "repro.verify.races",
    ),
    "REPRO014": RuleSpec(
        "blocking call inside 'async def' (stalls the event loop)",
        "repro.verify.concurrency", "line", "",
    ),
    "REPRO015": RuleSpec(
        "fork-unsafe capture pickled into a process-pool worker "
        "(locks/handles/hubs do not survive pickling)",
        "repro.verify.concurrency", "line", "",
    ),
    "REPRO016": RuleSpec(
        "loop-invariant allocation rebuilt every iteration (hoist it "
        "out of the loop)",
        "repro.verify.hotpath", "loop", "repro.verify.allocs",
    ),
    "REPRO017": RuleSpec(
        "attribute path loaded repeatedly per iteration (bind it to a "
        "local before the loop)",
        "repro.verify.hotpath", "loop", "repro.verify.allocs",
    ),
    "REPRO018": RuleSpec(
        "accidentally-quadratic idiom inside a loop (insert(0,...), "
        "list membership, += concatenation)",
        "repro.verify.hotpath", "loop", "repro.verify.allocs",
    ),
    "REPRO019": RuleSpec(
        "chained NumPy expression builds avoidable temporaries inside a "
        "loop (reuse a scratch buffer via out=)",
        "repro.verify.hotpath", "line", "repro.verify.allocs",
    ),
    "REPRO020": RuleSpec(
        "resource acquired outside 'with'/try-finally (a raise between "
        "acquire and release leaks it)",
        "repro.verify.faultflow", "line", "repro.verify.faults",
    ),
    "REPRO021": RuleSpec(
        "broad/bare except swallows PartitioningError/VerificationError "
        "(catch the typed exceptions)",
        "repro.verify.faultflow", "line", "",
    ),
    "REPRO022": RuleSpec(
        "exit site bypasses the registered EXIT_CODES table "
        "(use the EXIT_* constants)",
        "repro.verify.faultflow", "line", "",
    ),
    "REPRO023": RuleSpec(
        "nondeterministic source on a @complexity path (unseeded random, "
        "wall clock, os.environ, unordered iteration)",
        "repro.verify.faultflow", "line", "repro.verify.faults",
    ),
    "REPRO024": RuleSpec(
        "except handler silently drops the error (re-raise, publish to "
        "the hub, or count it)",
        "repro.verify.faultflow", "line", "",
    ),
}


def messages_for(module: str) -> Dict[str, str]:
    """The ``{code: message}`` rule table owned by ``module``.

    This is what the per-analyzer ``RULES`` constants are built from,
    so a code can never live in two analyzers or fall out of the
    registry silently.
    """
    return {
        code: spec.message
        for code, spec in REGISTRY.items()
        if spec.module == module
    }


def all_codes() -> Tuple[str, ...]:
    """Every registered code, sorted — the docs/consistency-test view."""
    return tuple(sorted(REGISTRY))
