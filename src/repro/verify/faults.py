"""Dynamic fault injection: raise at each acquire/IO point, certify recovery.

The static pass (:mod:`repro.verify.faultflow`) proves exception paths
*look* disciplined; this module checks the discipline actually works.
A :class:`FaultInjectionHarness` monkeypatches one instrumented
acquire/IO point at a time to raise :class:`InjectedFault`, drives the
engine or observability stack through the failure, and then certifies
with exact invariants that the system recovered:

- **locks released** — the cache/plan/hub locks can be acquired *from
  another thread* after the fault unwound (same-thread probes lie on
  an ``RLock``: reentrant acquisition always succeeds);
- **bit-identical re-solve** — the engine answers the canonical query
  with exactly the reference ``(weight, cut_indices)`` afterwards, and
  the answer still passes the O(n) paper certificate
  (:func:`repro.verify.certificates.check_chain_partition`) — the
  paper's reproducibility claim survives the crash-recovery path;
- **sinks resume** — a :class:`~repro.observability.live.StreamingJsonlSink`
  torn mid-write leaves exactly one torn tail, ``resume=True`` appends
  past it without a second header, and
  :func:`repro.observability.export.read_trace` reads the stream with
  the documented torn-tail ``UserWarning``;
- **no leaked handles** — a failed sink construction closes the file
  handle it just opened.

Every injection is performed by :meth:`FaultInjectionHarness.inject`, a
context manager that patches one ``(namespace, attribute)`` and always
restores it, raising at the chosen call ordinals.  Scenario functions
(``certify_*``) each return a summary dict of what was verified; they
raise :class:`FaultInjectionError` on any violation.
:func:`certify_all` runs every scenario and asserts the injected-site
count the acceptance criteria demand (>= 10 distinct sites).
"""

from __future__ import annotations

import io
import json
import threading
import warnings
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.graphs.chain import Chain


class InjectedFault(Exception):
    """The exception every injection site raises — never caught by
    accident: nothing in the library catches it by type."""


class FaultInjectionError(AssertionError):
    """A fault scenario violated a recovery invariant."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FaultInjectionError(message)


def _lock_released(lock: Any, timeout: float = 2.0) -> bool:
    """Can ``lock`` be acquired from *another* thread?

    An ``RLock`` always lets the owning thread re-acquire, so a
    same-thread probe cannot distinguish "released" from "held by me";
    the probe thread can.
    """
    acquired: List[bool] = []

    def probe() -> None:
        got = lock.acquire(timeout=timeout)
        if got:
            lock.release()
        acquired.append(got)

    worker = threading.Thread(target=probe, name="fault-lock-probe")
    worker.start()
    worker.join(timeout + 1.0)
    return bool(acquired) and acquired[0]


#: The canonical workload every engine scenario re-solves after its
#: fault: deterministic, small enough to be instant, large enough that
#: a wrong cut is visible.
def _canonical_chain() -> Chain:
    alpha = [((7 * i) % 13) + 1.0 for i in range(60)]
    beta = [((5 * i) % 7) + 1.0 for i in range(59)]
    return Chain(alpha, beta)


_CANONICAL_BOUND = 40.0


class FaultInjectionHarness:
    """Inject one fault at a time; certify recovery after each.

    Parameters
    ----------
    backend:
        Engine backend each scenario constructs engines with
        (``"numpy"`` when available, else ``"python"``).
    fail_on_call:
        Which call ordinal (1-based) of the patched target raises.  The
        default faults the *first* call — the earliest point a raise
        can escape.
    """

    __slots__ = ("backend", "fail_on_call", "injected_sites")

    def __init__(self, backend: Optional[str] = None,
                 fail_on_call: int = 1) -> None:
        if fail_on_call < 1:
            raise ValueError(
                f"fail_on_call is a 1-based ordinal, got {fail_on_call}"
            )
        if backend is None:
            from repro.engine import HAVE_NUMPY

            backend = "numpy" if HAVE_NUMPY else "python"
        self.backend = backend
        self.fail_on_call = fail_on_call
        #: ``"namespace.attr"`` labels of every site this harness has
        #: injected so far — the acceptance criterion counts these.
        self.injected_sites: List[str] = []

    # ------------------------------------------------------------------
    # The injection primitive
    # ------------------------------------------------------------------
    @contextmanager
    def inject(
        self,
        namespace: Any,
        attribute: str,
        *,
        calls: Optional[Tuple[int, ...]] = None,
        wrap: Optional[Callable[..., Any]] = None,
    ) -> Iterator[Dict[str, int]]:
        """Patch ``namespace.attribute`` to raise :class:`InjectedFault`.

        ``calls`` lists the 1-based call ordinals that raise (default:
        ``(self.fail_on_call,)``); other calls pass through to the real
        target.  ``wrap`` replaces the raise with a custom wrapper
        ``wrap(real, *args, **kwargs)`` for partial-failure faults
        (e.g. tear a write halfway).  Yields a counter dict whose
        ``"calls"`` entry reports how many times the site was hit; the
        original attribute is always restored.
        """
        fail_at = calls if calls is not None else (self.fail_on_call,)
        real = getattr(namespace, attribute)
        counter = {"calls": 0}

        def patched(*args: Any, **kwargs: Any) -> Any:
            counter["calls"] += 1
            if wrap is not None:
                return wrap(real, counter["calls"], *args, **kwargs)
            if counter["calls"] in fail_at:
                raise InjectedFault(
                    f"injected fault at {attribute} "
                    f"(call {counter['calls']})"
                )
            return real(*args, **kwargs)

        setattr(namespace, attribute, patched)
        label = f"{getattr(namespace, '__name__', type(namespace).__name__)}.{attribute}"
        try:
            yield counter
        finally:
            setattr(namespace, attribute, real)
        _require(
            counter["calls"] > 0,
            f"injection site {label} was never reached — the scenario "
            "certifies nothing",
        )
        self.injected_sites.append(label)

    # ------------------------------------------------------------------
    # Shared recovery certificates
    # ------------------------------------------------------------------
    def _fresh_engine(self, **kwargs: Any) -> Any:
        from repro.engine import PartitionEngine

        return PartitionEngine(backend=self.backend, **kwargs)

    def _reference_answer(self) -> Tuple[float, List[int]]:
        engine = self._fresh_engine()
        result = engine.solve(_canonical_chain(), _CANONICAL_BOUND)
        return float(result.weight), list(result.cut_indices)

    def _certify_recovered(self, engine: Any, context: str) -> None:
        """The canonical query answers bit-identically after the fault."""
        from repro.verify.certificates import check_chain_partition

        chain = _canonical_chain()
        result = engine.solve(chain, _CANONICAL_BOUND)
        weight, cuts = self._reference_answer()
        _require(
            float(result.weight) == weight
            and list(result.cut_indices) == cuts,
            f"{context}: re-solve after the fault is not bit-identical "
            f"({result.weight!r}, {result.cut_indices!r}) != "
            f"({weight!r}, {cuts!r})",
        )
        report = check_chain_partition(
            chain, result.cut_indices, _CANONICAL_BOUND,
            claimed_weight=result.weight,
        )
        _require(
            report.ok,
            f"{context}: post-fault answer fails the paper certificate: "
            f"{report!r}",
        )


# ----------------------------------------------------------------------
# Engine scenarios
# ----------------------------------------------------------------------


def certify_structure_compute_fault(
    harness: FaultInjectionHarness,
) -> Dict[str, Any]:
    """Fault the prime-structure build inside the cache lock.

    The structure kernel raising mid-solve must leave the cache lock
    released, the cache entry un-poisoned, and the next solve of the
    same query bit-identical.
    """
    import repro.engine.cache as cache_mod
    from repro.engine import kernels

    engine = harness._fresh_engine()

    if harness.backend == "numpy":
        namespace: Any = kernels
        attribute = "compute_prime_structure_numpy"
    else:
        namespace = cache_mod
        attribute = "compute_prime_structure"
    with harness.inject(namespace, attribute):
        try:
            engine.solve(_canonical_chain(), _CANONICAL_BOUND)
        except InjectedFault:
            pass
        else:
            raise FaultInjectionError(
                "structure fault was swallowed instead of propagating"
            )
    _require(
        _lock_released(engine.cache._lock),
        "cache lock still held after a structure-build fault",
    )
    harness._certify_recovered(engine, "structure-build fault")
    return {"site": attribute, "recovered": True}


def certify_sweep_kernel_fault(
    harness: FaultInjectionHarness,
) -> Dict[str, Any]:
    """Fault the bandwidth sweep while the cache lock is held."""
    from repro.engine import kernels

    engine = harness._fresh_engine()
    # ``_solve_impl`` imports the sweep lazily on every binary-search
    # solve (both backends), so patching the kernels module attribute
    # injects right inside the ``with self._lock`` region.
    with harness.inject(kernels, "bandwidth_sweep"):
        try:
            engine.solve(_canonical_chain(), _CANONICAL_BOUND)
        except InjectedFault:
            pass
        else:
            raise FaultInjectionError("sweep fault was swallowed")
    _require(
        _lock_released(engine.cache._lock),
        "cache lock still held after a sweep-kernel fault",
    )
    harness._certify_recovered(engine, "sweep-kernel fault")
    return {"site": "bandwidth_sweep", "recovered": True}


def certify_plan_compile_fault(
    harness: FaultInjectionHarness,
) -> Dict[str, Any]:
    """Fault plan compilation inside the plan-cache lock.

    ``PlanCache.get`` compiles under ``_lock``; the compile raising
    must release the lock and must not cache a half-built plan.
    """
    import repro.engine.cache as cache_mod
    from repro.engine import HAVE_NUMPY

    engine = harness._fresh_engine()
    chain = _canonical_chain()
    bounds = [_CANONICAL_BOUND, _CANONICAL_BOUND + 8.0]
    with harness.inject(cache_mod, "compile_chain"):
        try:
            if engine.backend == "numpy":
                # The batched sweep routes through the plan cache.
                engine.solve_sweep(chain, bounds)
            else:
                # The python sweep degrades to per-call solves, so hit
                # the plan cache directly — the compile faults before
                # any NumPy work, so this runs on every install.
                engine.plans.get(chain)
        except InjectedFault:
            pass
        else:
            raise FaultInjectionError("plan-compile fault was swallowed")
    _require(
        _lock_released(engine.plans._lock),
        "plan-cache lock still held after a compile fault",
    )
    _require(
        len(engine.plans) == 0,
        "a half-built plan was cached despite the compile fault",
    )
    if HAVE_NUMPY:
        # A clean compile must now succeed and agree with per-query
        # solves (compiled plans are NumPy-backed regardless of the
        # engine backend).
        plan = engine.plans.get(chain)
        weights = plan.solve_bounds(bounds)
        for bound, weight in zip(bounds, weights):
            solo = engine.solve(chain, bound)
            _require(
                float(weight) == float(solo.weight),
                f"post-fault sweep weight {weight!r} != solo "
                f"{solo.weight!r} at bound {bound}",
            )
    harness._certify_recovered(engine, "plan-compile fault")
    return {"site": "compile_chain", "recovered": True}


def certify_batch_query_fault(
    harness: FaultInjectionHarness,
) -> Dict[str, Any]:
    """Fault one query of a batch; the error must land on it alone.

    The engine's documented contract: a failing query yields a
    ``QueryResult`` with ``error`` set while every other query solves,
    and a clean re-run of the whole batch is bit-identical to a
    never-faulted engine's run.
    """
    import repro.engine.batch as batch_mod
    from repro.core.feasibility import PartitioningError
    from repro.engine import PartitionQuery

    chain = _canonical_chain()
    queries = [
        PartitionQuery.from_chain(chain, _CANONICAL_BOUND + 4.0 * i,
                                  tag=f"q{i}")
        for i in range(4)
    ]

    real_solve_one = batch_mod._solve_one
    state = {"calls": 0}

    def failing_solve_one(*args: Any, **kwargs: Any) -> Any:
        state["calls"] += 1
        if state["calls"] == 2:
            raise PartitioningError("injected per-query fault")
        return real_solve_one(*args, **kwargs)

    engine = harness._fresh_engine()
    with harness.inject(
        batch_mod, "_solve_one",
        wrap=lambda real, n, *a, **k: failing_solve_one(*a, **k),
    ):
        faulted = engine.solve_many(queries, max_workers=0, use_plans=False)
    errored = [r for r in faulted if r.error is not None]
    _require(
        len(errored) == 1 and errored[0].index == 1,
        f"the injected fault did not land on query 1 alone: "
        f"{[(r.index, r.error) for r in faulted]}",
    )
    _require(
        all(r.error is None for r in faulted if r.index != 1),
        "a neighbouring query was poisoned by the injected fault",
    )
    clean = engine.solve_many(queries, max_workers=0, use_plans=False)
    reference = harness._fresh_engine().solve_many(
        queries, max_workers=0, use_plans=False
    )
    for after, ref in zip(clean, reference):
        _require(
            after.error is None
            and after.weight == ref.weight
            and after.cut_indices == ref.cut_indices,
            f"post-fault batch re-run differs on query {ref.index}: "
            f"({after.weight!r}, {after.cut_indices!r}) != "
            f"({ref.weight!r}, {ref.cut_indices!r})",
        )
    harness._certify_recovered(engine, "per-query batch fault")
    return {"site": "_solve_one", "errored_query": 1, "recovered": True}


def certify_hub_subscriber_fault(
    harness: FaultInjectionHarness,
) -> Dict[str, Any]:
    """A subscriber raising mid-solve must be isolated, not fatal.

    The hub's contract: the raising subscriber is dropped, the failure
    is recorded in ``hub.errors``, the hub lock is released, and the
    solve (plus a bit-identical re-solve) completes untouched.
    """
    from repro.observability.live import TelemetryHub

    class _Bomb:
        def emit(self, event: Dict[str, Any]) -> None:
            raise InjectedFault("injected subscriber fault")

        def close(self) -> None:  # pragma: no cover - never reached
            pass

    hub = TelemetryHub()
    bomb = _Bomb()
    hub.subscribe(bomb)
    engine = harness._fresh_engine(hub=hub)
    result = engine.solve(_canonical_chain(), _CANONICAL_BOUND)
    _require(result.weight > 0, "solve under a raising subscriber failed")
    _require(
        bomb not in hub.subscribers,
        "the raising subscriber was not dropped",
    )
    _require(
        any("InjectedFault" in err or "_Bomb" in err for err in hub.errors),
        f"the subscriber fault was not recorded: {hub.errors!r}",
    )
    _require(
        _lock_released(hub._lock),
        "hub lock still held after a subscriber fault",
    )
    harness._certify_recovered(engine, "hub-subscriber fault")
    harness.injected_sites.append("TelemetrySubscriber.emit")
    return {"site": "subscriber.emit", "dropped": True, "recovered": True}


# ----------------------------------------------------------------------
# Observability scenarios
# ----------------------------------------------------------------------


class _FaultyHandle:
    """Proxy around a sink's real file handle with injectable faults.

    ``io.TextIOWrapper`` is a C type, so its methods cannot be patched;
    the harness swaps the sink's ``_fh`` for this proxy instead — the
    same injection idea, one indirection earlier.
    """

    __slots__ = ("_real", "_tear_write_at", "_fail_flush_at",
                 "writes", "flushes")

    def __init__(self, real: Any, *, tear_write_at: int = 0,
                 fail_flush_at: int = 0) -> None:
        self._real = real
        self._tear_write_at = tear_write_at
        self._fail_flush_at = fail_flush_at
        self.writes = 0
        self.flushes = 0

    def write(self, text: str) -> int:
        self.writes += 1
        if self.writes == self._tear_write_at:
            # Half the bytes land (the OS accepted a short write), then
            # the device fails — the canonical disk-full torn record.
            self._real.write(text[: len(text) // 2])
            self._real.flush()
            raise InjectedFault("injected torn write (disk full)")
        return self._real.write(text)

    def flush(self) -> None:
        self.flushes += 1
        if self.flushes == self._fail_flush_at:
            raise InjectedFault("injected flush fault")
        self._real.flush()

    def close(self) -> None:
        self._real.close()


def _is_json(line: str) -> bool:
    try:
        json.loads(line)
    except json.JSONDecodeError:
        return False
    return True


def certify_sink_torn_write(
    harness: FaultInjectionHarness, *, sink_path: str
) -> Dict[str, Any]:
    """Tear a sink write mid-line; certify resume past the torn tail.

    The crash-safety contract of :class:`StreamingJsonlSink` +
    :func:`read_trace`: a mid-write ``OSError`` leaves exactly one torn
    final line, ``read_trace`` on the torn file warns (``UserWarning``)
    and returns the committed prefix, and a ``resume=True`` reopen
    truncates the never-committed tail and appends complete records
    with no second header — the resumed trace is fully well-formed.
    """
    from repro.observability.export import read_trace
    from repro.observability.live import StreamingJsonlSink

    sink = StreamingJsonlSink(sink_path, meta={"source": "fault-harness"})
    sink.emit({"kind": "event", "event": "solve", "seq": 0})

    proxy = _FaultyHandle(sink._fh, tear_write_at=1)
    sink._fh, real_fh = proxy, sink._fh
    try:
        try:
            sink.emit({"kind": "event", "event": "solve", "seq": 1,
                       "pad": "x" * 64})
        except InjectedFault:
            pass
        else:
            raise FaultInjectionError("torn write was swallowed")
    finally:
        sink._fh = real_fh
    _require(proxy.writes == 1, "the torn-write site was never reached")
    _require(
        _lock_released(sink._lock),
        "sink lock still held after a torn write",
    )
    sink.close()
    harness.injected_sites.append("StreamingJsonlSink._fh.write")

    with open(sink_path, "r", encoding="utf-8") as fh:
        torn_lines = fh.read().splitlines()
    _require(
        len(torn_lines) == 3 and not _is_json(torn_lines[2]),
        f"expected a torn third line, got {torn_lines!r}",
    )
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        torn_records = read_trace(sink_path)
    _require(
        any(
            issubclass(w.category, UserWarning)
            and "torn tail" in str(w.message)
            for w in caught
        ),
        "read_trace did not warn about the torn tail",
    )
    _require(
        len(torn_records) == 2 and torn_records[1]["seq"] == 0,
        f"torn-tail read kept the wrong records: {torn_records!r}",
    )

    resumed = StreamingJsonlSink(sink_path, resume=True)
    resumed.emit({"kind": "event", "event": "solve", "seq": 2})
    resumed.close()

    records = read_trace(sink_path)  # must parse clean end to end now
    headers = [r for r in records if r.get("kind") == "meta"]
    _require(
        len(headers) == 1,
        f"resume wrote a second header ({len(headers)} meta records)",
    )
    _require(
        [r["seq"] for r in records if r.get("event") == "solve"] == [0, 2],
        f"resume did not continue cleanly past the torn tail: {records!r}",
    )
    return {
        "site": "StreamingJsonlSink._fh.write",
        "torn_line": 3,
        "resumed_records": len(records),
    }


def certify_sink_flush_fault(
    harness: FaultInjectionHarness, *, sink_path: str
) -> Dict[str, Any]:
    """An ``OSError`` on flush must leave the sink closeable and the
    already-committed prefix parseable."""
    from repro.observability.live import StreamingJsonlSink

    sink = StreamingJsonlSink(sink_path)
    sink.emit({"kind": "event", "event": "solve", "seq": 0})

    proxy = _FaultyHandle(sink._fh, fail_flush_at=1)
    sink._fh, real_fh = proxy, sink._fh
    try:
        try:
            sink.emit({"kind": "event", "event": "solve", "seq": 1})
        except InjectedFault:
            pass
        else:
            raise FaultInjectionError("flush fault was swallowed")
    finally:
        sink._fh = real_fh
    _require(proxy.flushes == 1, "the flush site was never reached")
    _require(
        _lock_released(sink._lock),
        "sink lock still held after a flush fault",
    )
    sink.close()
    harness.injected_sites.append("StreamingJsonlSink._fh.flush")
    with open(sink_path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh.read().splitlines()[:2], 1):
            _require(
                _is_json(line),
                f"committed prefix line {lineno} does not parse: {line!r}",
            )
    return {"site": "StreamingJsonlSink._fh.flush", "closeable": True}


def _raise_injected() -> None:
    raise InjectedFault("injected fault")


def certify_sink_init_fault(
    harness: FaultInjectionHarness, *, sink_path: str
) -> Dict[str, Any]:
    """A failed header write during construction must not leak the
    just-opened handle (the REPRO020 finding this PR fixed)."""
    from repro.observability import live as live_mod

    opened: List[Any] = []
    real_open = io.open

    def spying_open(*args: Any, **kwargs: Any) -> Any:
        handle = real_open(*args, **kwargs)
        opened.append(handle)
        return handle

    with harness.inject(
        live_mod.StreamingJsonlSink, "_write_line",
        wrap=lambda real, call, *a, **k: _raise_injected(),
    ):
        live_mod.io.open = spying_open  # type: ignore[assignment]
        try:
            live_mod.StreamingJsonlSink(sink_path)
        except InjectedFault:
            pass
        else:
            raise FaultInjectionError("header-write fault was swallowed")
        finally:
            live_mod.io.open = real_open  # type: ignore[assignment]
    _require(len(opened) == 1, "the constructor never opened the file")
    _require(
        opened[0].closed,
        "a failed sink construction leaked its file handle",
    )
    return {"site": "StreamingJsonlSink._write_line", "leaked": False}


def certify_hub_close_fault(
    harness: FaultInjectionHarness, *, sink_path: str
) -> Dict[str, Any]:
    """A subscriber whose ``close`` raises must not wedge the hub lock
    or prevent the other subscribers from being closed directly."""
    from repro.observability.live import StreamingJsonlSink, TelemetryHub

    class _CloseBomb:
        def emit(self, event: Dict[str, Any]) -> None:
            pass

        def close(self) -> None:
            raise InjectedFault("injected close fault")

    sink = StreamingJsonlSink(sink_path)
    hub = TelemetryHub(subscribers=(_CloseBomb(), sink))
    hub.publish({"kind": "event", "event": "solve", "seq": 0})
    try:
        hub.close()
    except InjectedFault:
        pass
    else:
        raise FaultInjectionError("close fault was swallowed")
    _require(
        _lock_released(hub._lock),
        "hub lock still held after a close fault",
    )
    sink.close()  # direct close must still work
    with open(sink_path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    _require(
        all(_is_json(ln) for ln in lines),
        "the sink file was corrupted by the hub close fault",
    )
    harness.injected_sites.append("TelemetrySubscriber.close")
    return {"site": "subscriber.close", "lock_released": True}


def certify_tracer_span_fault(
    harness: FaultInjectionHarness,
) -> Dict[str, Any]:
    """An exception inside a span body must close the span and leave
    the tracer reusable, with the engine still bit-identical."""
    from repro.observability.spans import Tracer

    tracer = Tracer(enabled=True)
    try:
        with tracer.span("faulted-phase", n=60):
            raise InjectedFault("injected span-body fault")
    except InjectedFault:
        pass
    else:
        raise FaultInjectionError("span-body fault was swallowed")
    _require(
        not tracer._stack,
        "the faulted span was left open on the tracer stack",
    )
    with tracer.span("recovery-phase"):
        pass
    _require(
        len(tracer.roots) == 2,
        f"tracer unusable after a span fault: {len(tracer.roots)} roots",
    )
    engine = harness._fresh_engine(tracer=tracer)
    harness._certify_recovered(engine, "tracer span fault")
    harness.injected_sites.append("Span.body")
    return {"site": "span.body", "spans_closed": True, "recovered": True}


def certify_traced_solve_fault(
    harness: FaultInjectionHarness,
) -> Dict[str, Any]:
    """Fault a solve *under an enabled tracer*: the span stack must
    unwind with the solve and the next traced solve must succeed."""
    import repro.engine.cache as cache_mod
    from repro.engine import kernels
    from repro.observability.spans import Tracer

    tracer = Tracer(enabled=True)
    engine = harness._fresh_engine(tracer=tracer)
    if harness.backend == "numpy":
        namespace: Any = kernels
        attribute = "compute_prime_structure_numpy"
    else:
        namespace = cache_mod
        attribute = "compute_prime_structure"
    with harness.inject(namespace, attribute):
        try:
            engine.solve(_canonical_chain(), _CANONICAL_BOUND)
        except InjectedFault:
            pass
        else:
            raise FaultInjectionError("traced-solve fault was swallowed")
    _require(
        not tracer._stack,
        "the faulted traced solve left spans open",
    )
    harness._certify_recovered(engine, "traced-solve fault")
    return {"site": f"{attribute} (traced)", "recovered": True}


def certify_metrics_observe_fault(
    harness: FaultInjectionHarness,
) -> Dict[str, Any]:
    """Fault a histogram observation mid-solve; the registry lock must
    release and later observations must land."""
    from repro.observability.metrics import Histogram, MetricsRegistry

    registry = MetricsRegistry()
    hist = registry.histogram("fault_latency_seconds")
    hist.observe(0.25)
    with harness.inject(
        Histogram, "observe",
        wrap=lambda real, call, *a, **k: (_raise_injected() if call == 1
                                          else real(*a, **k)),
    ):
        try:
            hist.observe(0.5)
        except InjectedFault:
            pass
        else:
            raise FaultInjectionError("observe fault was swallowed")
        hist.observe(0.75)
    _require(
        _lock_released(hist._lock),
        "histogram lock still held after an observe fault",
    )
    _require(
        hist.count == 2,
        f"post-fault observation lost: count={hist.count}",
    )
    return {"site": "Histogram.observe", "count": hist.count}


# ----------------------------------------------------------------------
# The acceptance entry point
# ----------------------------------------------------------------------


def certify_all(
    harness: FaultInjectionHarness, *, sink_dir: str
) -> Dict[str, Any]:
    """Run every fault scenario; assert the acceptance site count.

    ``sink_dir`` is a directory for the sink scenarios' trace files
    (a pytest ``tmp_path`` in the tests).
    """
    import os

    summaries: Dict[str, Any] = {
        "structure": certify_structure_compute_fault(harness),
        "sweep": certify_sweep_kernel_fault(harness),
        "plan_compile": certify_plan_compile_fault(harness),
        "batch_query": certify_batch_query_fault(harness),
        "hub_subscriber": certify_hub_subscriber_fault(harness),
        "sink_torn_write": certify_sink_torn_write(
            harness, sink_path=os.path.join(sink_dir, "torn.jsonl")
        ),
        "sink_flush": certify_sink_flush_fault(
            harness, sink_path=os.path.join(sink_dir, "flush.jsonl")
        ),
        "sink_init": certify_sink_init_fault(
            harness, sink_path=os.path.join(sink_dir, "init.jsonl")
        ),
        "hub_close": certify_hub_close_fault(
            harness, sink_path=os.path.join(sink_dir, "close.jsonl")
        ),
        "tracer_span": certify_tracer_span_fault(harness),
        "traced_solve": certify_traced_solve_fault(harness),
        "metrics_observe": certify_metrics_observe_fault(harness),
    }
    distinct = sorted(set(harness.injected_sites))
    _require(
        len(distinct) >= 10,
        f"acceptance requires >= 10 distinct injected sites, got "
        f"{len(distinct)}: {distinct}",
    )
    summaries["sites"] = distinct
    return summaries
