"""Fault-surface analysis: what happens to this code *when things fail*.

ROADMAP item 1 (the resident ``repro serve`` process) turns every
exception path into an outage class: a raise between a resource's
acquire and its release leaks the handle for the life of the process, a
broad ``except`` swallows the typed verification failures the engine is
built around, and any nondeterminism on a solver path means the answer
after crash recovery need not equal the answer of a clean run — which
is the paper's whole value proposition.  The six earlier analyzers
(REPRO001–REPRO019) cover allocation, concurrency and complexity but
say nothing about failure; this seventh pass closes that gap:

==========  ==========================================================
Code        Rule
==========  ==========================================================
REPRO020    A resource acquisition (``open``/``io.open``, sockets,
            process/thread pools, ``SharedMemory``, ``.acquire()``)
            outside a ``with`` item or a try/finally discipline: a
            raise can escape between acquire and release and leak the
            handle.  Interprocedural within a class, like the
            concurrency pass: ``self._fh = open(...)`` is accepted
            when the class releases the attribute in a ``close``-like
            method *and* no raise-capable statement follows the
            acquire unguarded.
REPRO021    A broad or bare ``except`` (``Exception``,
            ``BaseException``) that does not re-raise: it swallows
            ``PartitioningError``/``VerificationError``, so a failed
            certificate dies silently.
REPRO022    An exit site (``sys.exit``/``raise SystemExit``, plus
            integer returns from ``main``/``_cmd_*`` functions) in
            ``cli.py``/``__main__.py`` that bypasses the registered
            :data:`repro.exitcodes.EXIT_CODES` table.
REPRO023    A nondeterminism source on a ``@complexity``-decorated
            path (the functions whose outputs land in solver results
            and trace/JSONL payloads): unseeded ``random``/
            ``np.random`` draws, wall-clock reads (``time.time``,
            argless ``datetime.now``), ``os.environ`` reads, and
            iteration over unordered ``set``/``.keys()`` views.
REPRO024    A silent-drop ``except`` handler: the body neither
            re-raises, returns, publishes/logs through the hub, nor
            increments a metric — the error simply vanishes.
            Import-fallback handlers (``except ImportError``) are
            exempt; that pattern is how optional NumPy is gated.
==========  ==========================================================

REPRO020/021/024 are scoped (under the installed ``repro`` package) to
``core``/``engine``/``observability`` — the layers a resident service
keeps hot.  REPRO022 applies to files *named* ``cli.py`` or
``__main__.py`` wherever they live.  REPRO023 roots at ``@complexity``
functions and follows the same within-module call graph as
:mod:`repro.verify.hotpath`.  Files outside a ``repro`` package
(fixtures, tests) are always analyzed.

The static pass *claims*; :mod:`repro.verify.faults` *certifies* — its
``FaultInjectionHarness`` raises at each instrumented acquire/IO point
in turn and then proves with the PR 3 certificate checkers that locks
are released, sinks resume past the torn tail, and the engine answers
the same query bit-identically afterwards.

Run it as a module::

    python -m repro.verify.faultflow src/
    python -m repro.verify.faultflow --list-rules

Exit status: 0 clean, 1 findings, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.exitcodes import EXIT_CODES, EXIT_CONSTANT_NAMES
from repro.verify.codes import messages_for
from repro.verify.hotpath import _collect_functions, _reachable
from repro.verify.lint import Finding, iter_python_files, pragma_disables

#: Drawn from the central registry (:mod:`repro.verify.codes`).
FAULTFLOW_RULES: Dict[str, str] = messages_for("repro.verify.faultflow")

#: Packages analyzed (under the ``repro`` package) for the lifecycle,
#: exception-flow and determinism rules: the resident-service layers.
_SCOPED_PACKAGES = frozenset(("core", "engine", "observability"))

#: Files the REPRO022 exit-code contract applies to, by basename.
_EXIT_FILES = frozenset(("cli.py", "__main__.py"))

#: Function-name prefixes whose integer returns are exit codes in the
#: exit files (the argparse ``func=`` convention plus ``main``).
_EXIT_FUNC_PREFIXES = ("_cmd_", "main")

#: Rightmost callee names that acquire an OS-level resource (REPRO020).
_RESOURCE_CONSTRUCTORS = frozenset(
    (
        "open",
        "socket",
        "create_connection",
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
        "Pool",
        "SharedMemory",
        "TemporaryFile",
        "NamedTemporaryFile",
        "popen",
        "Popen",
    )
)

#: Method names that acquire a lock-like resource (REPRO020).
_ACQUIRE_METHODS = frozenset(("acquire",))

#: Method names that release a previously acquired resource.
_RELEASE_METHODS = frozenset(
    ("close", "release", "shutdown", "terminate", "unlink", "stop", "kill")
)

#: Exception names considered broad for REPRO021.
_BROAD_EXCEPTIONS = frozenset(("Exception", "BaseException"))

#: Exception names whose handlers are exempt from REPRO024: the
#: import-fallback idiom (``except ImportError: HAVE_NUMPY = False``).
_IMPORT_FALLBACK_EXCEPTIONS = frozenset(("ImportError", "ModuleNotFoundError"))

#: Rightmost callee names that count as *reporting* inside an except
#: handler (REPRO024): hub publishes, logging, metric updates, queue
#: hand-offs and user-facing prints.
_REPORTING_CALLS = frozenset(
    (
        "publish",
        "publish_span",
        "publish_metric",
        "emit",
        "log",
        "debug",
        "info",
        "warning",
        "warn",
        "error",
        "exception",
        "critical",
        "inc",
        "observe",
        "add",
        "append",
        "record",
        "put",
        "write",
        "print",
    )
)

#: ``random.<fn>`` attributes exempt from REPRO023: constructing a
#: seeded generator (or seeding/persisting the global one) is how
#: determinism is *achieved*, not broken.
_SEEDED_RANDOM_EXEMPT = frozenset(
    ("Random", "SystemRandom", "seed", "getstate", "setstate")
)

#: ``np.random.<fn>`` attributes exempt from REPRO023 for the same
#: reason: explicit generator construction takes a seed.
_SEEDED_NP_RANDOM_EXEMPT = frozenset(("default_rng", "Generator", "RandomState", "seed"))

#: Module aliases NumPy is conventionally imported as.
_NUMPY_ALIASES = frozenset(("np", "numpy"))

#: ``time.<fn>`` wall-clock reads flagged by REPRO023.
_WALLCLOCK_TIME_CALLS = frozenset(("time", "time_ns"))

#: Argless ``datetime``/``date`` constructors that read the wall clock.
_WALLCLOCK_DATETIME_CALLS = frozenset(("now", "utcnow", "today"))

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _call_name(node: ast.expr) -> Optional[str]:
    """The rightmost name of a call's callee, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _attr_path(node: ast.expr) -> Optional[str]:
    """Dotted path of a pure ``Name.attr...`` chain, else None."""
    parts: List[str] = []
    cursor = node
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if not isinstance(cursor, ast.Name):
        return None
    parts.append(cursor.id)
    return ".".join(reversed(parts))


def _exception_names(node: Optional[ast.expr]) -> Set[str]:
    """Rightmost names of the exception types an ``except`` clause lists."""
    if node is None:
        return set()
    if isinstance(node, ast.Tuple):
        names: Set[str] = set()
        for elt in node.elts:
            names |= _exception_names(elt)
        return names
    name = _call_name(node)
    return {name} if name is not None else set()


# ----------------------------------------------------------------------
# REPRO020 — resource lifecycle
# ----------------------------------------------------------------------


def _acquire_label(node: ast.expr) -> Optional[str]:
    """What kind of acquisition ``node`` is, or None."""
    if not isinstance(node, ast.Call):
        return None
    name = _call_name(node.func)
    if name in _RESOURCE_CONSTRUCTORS:
        return f"{name}(...)"
    if (
        name in _ACQUIRE_METHODS
        and isinstance(node.func, ast.Attribute)
        and _attr_path(node.func.value) is not None
    ):
        return f"{_attr_path(node.func.value)}.acquire()"
    return None


def _raise_capable(stmt: ast.stmt) -> bool:
    """Can ``stmt`` plausibly raise?  (Coarse: calls, raises, asserts.)

    Constant/name rebinds between an acquire and its guard are fine;
    anything that runs foreign code is an escape hatch for the handle.
    """
    for sub in ast.walk(stmt):
        if isinstance(sub, (ast.Call, ast.Raise, ast.Assert)):
            return True
    return False


def _releases_path(stmts: Sequence[ast.stmt], target: str,
                   class_release_methods: FrozenSet[str]) -> bool:
    """Do ``stmts`` contain a release call for dotted path ``target``?

    A release is ``<target>.close()``-style directly, or (the
    within-class interprocedural step) ``self.<m>()`` where ``m`` is a
    method of the owning class known to release resources.
    """
    for stmt in stmts:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = _attr_path(func.value)
            if func.attr in _RELEASE_METHODS and receiver == target:
                return True
            if (
                func.attr in class_release_methods
                and receiver == "self"
            ):
                return True
    return False


def _with_item_paths(stmt: ast.stmt) -> Set[str]:
    """Dotted paths consumed as context managers by a with statement."""
    paths: Set[str] = set()
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            expr = item.context_expr
            path = _attr_path(expr)
            if path is not None:
                paths.add(path)
            elif isinstance(expr, ast.Call):
                for arg in expr.args:
                    arg_path = _attr_path(arg)
                    if arg_path is not None:
                        paths.add(arg_path)
    return paths


class _ResourceChecker:
    """REPRO020 over one function, with class-level release knowledge."""

    def __init__(
        self,
        add: "_AddFn",
        class_release_methods: FrozenSet[str],
        released_attrs: FrozenSet[str],
        qualname: str,
    ) -> None:
        self._add = add
        self._class_release_methods = class_release_methods
        self._released_attrs = released_attrs
        self.qualname = qualname

    def scan(self, func: ast.AST) -> None:
        self._scan_block(list(getattr(func, "body", [])), protected=False)

    # -- block walking ---------------------------------------------------

    def _scan_block(self, stmts: List[ast.stmt], protected: bool) -> None:
        for index, stmt in enumerate(stmts):
            rest = stmts[index + 1:]
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                # Acquires used as context expressions are the goal
                # state; everything else inside the items still counts.
                safe_ids = {
                    id(item.context_expr) for item in stmt.items
                }
                self._scan_exprs(stmt, rest, protected, skip=safe_ids,
                                 block_stmt=stmt)
                self._scan_block(list(stmt.body), protected)
            elif isinstance(stmt, ast.Try):
                guarded = protected or bool(stmt.finalbody) or bool(stmt.handlers)
                self._scan_block(list(stmt.body), guarded)
                for handler in stmt.handlers:
                    self._scan_block(list(handler.body), protected)
                self._scan_block(list(stmt.orelse), guarded)
                self._scan_block(list(stmt.finalbody), protected)
            elif isinstance(stmt, _FUNC_NODES):
                self._scan_block(list(stmt.body), protected=False)
            elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                self._scan_exprs(stmt, rest, protected, skip=set(),
                                 block_stmt=stmt, shallow=True)
                for block in (
                    getattr(stmt, "body", []), getattr(stmt, "orelse", [])
                ):
                    self._scan_block(list(block), protected)
            else:
                self._scan_exprs(stmt, rest, protected, skip=set(),
                                 block_stmt=stmt)

    def _scan_exprs(
        self,
        stmt: ast.stmt,
        rest: List[ast.stmt],
        protected: bool,
        skip: Set[int],
        block_stmt: ast.stmt,
        shallow: bool = False,
    ) -> None:
        """Find acquire calls in one statement's expressions."""
        if shallow:
            # Compound headers: only the test/iter, bodies recurse above.
            nodes: List[ast.AST] = []
            for field in ("test", "iter"):
                sub = getattr(stmt, field, None)
                if sub is not None:
                    nodes.append(sub)
        else:
            nodes = [stmt]
        for root in nodes:
            for sub in ast.walk(root):
                if isinstance(sub, _FUNC_NODES) or isinstance(sub, ast.Lambda):
                    continue
                if not isinstance(sub, ast.Call) or id(sub) in skip:
                    continue
                label = _acquire_label(sub)
                if label is None:
                    continue
                if protected:
                    continue
                self._judge(stmt, sub, label, rest)

    # -- the verdict ------------------------------------------------------

    def _judge(
        self, stmt: ast.stmt, call: ast.Call, label: str,
        rest: List[ast.stmt],
    ) -> None:
        # Ownership transfer: ``return open(...)`` hands the handle to
        # the caller, whose job the discipline then is.  Only the
        # directly-returned call qualifies — an acquire nested inside
        # another call's arguments (``return process(open(p))``) leaks
        # if that call raises.
        if isinstance(stmt, ast.Return) and stmt.value is call:
            return
        target = self._acquire_target(stmt, call)
        if target is not None and self._guarded_after(target, rest):
            return
        self._add(
            call,
            "REPRO020",
            f"{label} acquired outside 'with'/try-finally — a raise "
            f"here leaks the resource (in {self.qualname})",
        )

    def _acquire_target(
        self, stmt: ast.stmt, call: ast.Call
    ) -> Optional[str]:
        """The dotted path the acquire binds to (or releases against)."""
        if isinstance(stmt, ast.Assign) and stmt.value is call:
            if len(stmt.targets) == 1:
                return _attr_path(stmt.targets[0])
            return None
        if isinstance(stmt, ast.AnnAssign) and stmt.value is call:
            return _attr_path(stmt.target)
        if isinstance(stmt, ast.Expr) and stmt.value is call:
            # Bare ``lock.acquire()``: the receiver is what must be
            # released.
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in _ACQUIRE_METHODS:
                return _attr_path(func.value)
        return None

    def _guarded_after(self, target: str, rest: List[ast.stmt]) -> bool:
        """Is ``target`` released before a raise can escape?

        Walk the rest of the block: the acquire is safe when, before
        the first raise-capable statement, we meet a ``with target:``,
        a ``try`` whose finally/handlers release it, a direct release
        call, or ``return target``.
        """
        for stmt in rest:
            if target in _with_item_paths(stmt):
                return True
            if isinstance(stmt, ast.Try):
                cleanup: List[ast.stmt] = list(stmt.finalbody)
                for handler in stmt.handlers:
                    cleanup.extend(handler.body)
                if _releases_path(cleanup, target, self._class_release_methods):
                    return True
                return False
            if isinstance(stmt, ast.Expr) and _releases_path(
                [stmt], target, self._class_release_methods
            ):
                return True
            if (
                isinstance(stmt, ast.Return)
                and stmt.value is not None
                and _attr_path(stmt.value) == target
            ):
                return True
            if _raise_capable(stmt):
                return False
        # End of block, nothing raised in between: a ``self.<attr>``
        # acquire is the long-lived-resource pattern provided the class
        # releases the attribute somewhere; a local that is never
        # released still leaks on any later raise.
        if target.startswith("self."):
            attr = target.split(".", 1)[1]
            return attr in self._released_attrs
        return False


def _class_release_info(
    cls: ast.ClassDef,
) -> Tuple[FrozenSet[str], FrozenSet[str]]:
    """(releasing method names, self attrs released) for one class.

    A method releases when its body calls ``self.<attr>.close()``-style
    or nulls a handle attribute out (``self._fh = None``).  One
    indirection level is folded in (``close()`` calling
    ``self._release()``), matching how the concurrency pass follows
    ``self.<m>()`` edges.
    """
    direct: Dict[str, Set[str]] = {}
    calls: Dict[str, Set[str]] = {}
    for member in cls.body:
        if not isinstance(member, _FUNC_NODES):
            continue
        released: Set[str] = set()
        called: Set[str] = set()
        for sub in ast.walk(member):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
                receiver = _attr_path(sub.func.value)
                if (
                    sub.func.attr in _RELEASE_METHODS
                    and receiver is not None
                    and receiver.startswith("self.")
                ):
                    released.add(receiver.split(".", 1)[1])
                if receiver == "self":
                    called.add(sub.func.attr)
            if isinstance(sub, ast.Assign):
                for tgt in sub.targets:
                    path = _attr_path(tgt)
                    if (
                        path is not None
                        and path.startswith("self.")
                        and isinstance(sub.value, ast.Constant)
                        and sub.value.value is None
                    ):
                        released.add(path.split(".", 1)[1])
        direct[member.name] = released
        calls[member.name] = called
    # One fixpoint round: a method that calls a releasing method releases.
    changed = True
    while changed:
        changed = False
        for name, called in calls.items():
            for other in called:
                gained = direct.get(other, set()) - direct[name]
                if gained:
                    direct[name] |= gained
                    changed = True
    methods = frozenset(name for name, rel in direct.items() if rel)
    attrs = frozenset(a for rel in direct.values() for a in rel)
    return methods, attrs


# ----------------------------------------------------------------------
# The per-file checker
# ----------------------------------------------------------------------


class _AddFn:
    """Pragma-aware finding collector shared by the sub-checkers."""

    __slots__ = ("path", "findings", "_disables")

    def __init__(
        self, path: Path, findings: List[Finding],
        disables: Dict[int, FrozenSet[str]],
    ) -> None:
        self.path = path
        self.findings = findings
        self._disables = disables

    def __call__(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if code in self._disables.get(line, frozenset()):
            return
        self.findings.append(
            Finding(self.path, line, getattr(node, "col_offset", 0),
                    code, message)
        )


def _check_resources(tree: ast.Module, add: _AddFn) -> None:
    """REPRO020 over every function, with class release knowledge."""
    no_methods: FrozenSet[str] = frozenset()
    no_attrs: FrozenSet[str] = frozenset()

    def scan_function(func: ast.AST, qualname: str,
                      methods: FrozenSet[str], attrs: FrozenSet[str]) -> None:
        _ResourceChecker(add, methods, attrs, qualname).scan(func)

    for stmt in tree.body:
        if isinstance(stmt, _FUNC_NODES):
            scan_function(stmt, stmt.name, no_methods, no_attrs)
        elif isinstance(stmt, ast.ClassDef):
            methods, attrs = _class_release_info(stmt)
            for member in stmt.body:
                if isinstance(member, _FUNC_NODES):
                    scan_function(
                        member, f"{stmt.name}.{member.name}", methods, attrs
                    )


def _handler_reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler body contain a re-raise (bare or explicit)?"""
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Raise):
                return True
    return False


def _handler_reports(handler: ast.ExceptHandler) -> bool:
    """Does the handler return, report via a call, or bump a counter?"""
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.Return, ast.AugAssign)):
                return True
            if isinstance(sub, ast.Call):
                name = _call_name(sub.func)
                if name is None:
                    continue
                # Private wrappers count: ``self._publish_result(...)``
                # is hub reporting just as much as ``hub.publish(...)``.
                name = name.lstrip("_")
                if name in _REPORTING_CALLS or name.startswith("publish"):
                    return True
    return False


def _check_exceptions(tree: ast.Module, add: _AddFn) -> None:
    """REPRO021 (broad swallows) and REPRO024 (silent drops)."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        names = _exception_names(node.type)
        broad = node.type is None or bool(names & _BROAD_EXCEPTIONS)
        if broad and not _handler_reraises(node):
            add(
                node,
                "REPRO021",
                "broad except swallows PartitioningError/"
                "VerificationError — catch the typed exceptions or "
                "re-raise",
            )
        if names & _IMPORT_FALLBACK_EXCEPTIONS:
            continue
        if not _handler_reraises(node) and not _handler_reports(node):
            add(
                node,
                "REPRO024",
                "except handler drops the error silently — re-raise, "
                "publish to the hub, or increment a metric",
            )


def _is_registered_exit_value(node: ast.expr) -> bool:
    """Is this expression an EXIT_CODES-sanctioned exit value?"""
    if isinstance(node, ast.Name):
        return node.id in EXIT_CONSTANT_NAMES
    if isinstance(node, ast.Subscript):
        # EXIT_CODES["USAGE"] — a registered key through the table.
        base = _call_name(node.value)
        key = node.slice
        if isinstance(key, ast.Index):  # pragma: no cover - py38 AST only
            key = key.value  # type: ignore[attr-defined]
        return (
            base == "EXIT_CODES"
            and isinstance(key, ast.Constant)
            and key.value in EXIT_CODES
        )
    if isinstance(node, ast.Call):
        # ``sys.exit(main())`` — main() itself returns a table value.
        return _call_name(node.func) == "main"
    return False


def _check_exit_codes(tree: ast.Module, add: _AddFn) -> None:
    """REPRO022 over an exit file: every exit site uses the table."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            func = node.func
            is_exit = (
                isinstance(func, ast.Attribute) and func.attr == "exit"
                and isinstance(func.value, ast.Name) and func.value.id == "sys"
            ) or (isinstance(func, ast.Name) and func.id == "SystemExit")
            if not is_exit:
                continue
            if len(node.args) != 1 or not _is_registered_exit_value(
                node.args[0]
            ):
                add(
                    node,
                    "REPRO022",
                    "exit site bypasses the EXIT_CODES table — pass one "
                    "of the registered EXIT_* constants",
                )
        elif isinstance(node, ast.Raise):
            exc = node.exc
            if (
                isinstance(exc, ast.Call)
                and _call_name(exc.func) == "SystemExit"
            ):
                pass  # already visited as a Call above
            elif exc is not None and _call_name(exc) == "SystemExit":
                add(
                    node,
                    "REPRO022",
                    "bare 'raise SystemExit' bypasses the EXIT_CODES "
                    "table — raise SystemExit(EXIT_*) instead",
                )
    # Integer returns in exit-code-bearing functions are exit sites too:
    # argparse dispatch feeds them straight into sys.exit(main()).
    for stmt in tree.body:
        if not isinstance(stmt, _FUNC_NODES):
            continue
        if not stmt.name.startswith(_EXIT_FUNC_PREFIXES):
            continue
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Return) or sub.value is None:
                continue
            exprs: List[ast.expr] = [sub.value]
            if isinstance(sub.value, ast.IfExp):
                # ``return 0 if passed else 1`` is two exit sites.
                exprs = [sub.value.body, sub.value.orelse]
            for expr in exprs:
                if (
                    isinstance(expr, ast.Constant)
                    and isinstance(expr.value, int)
                    and not isinstance(expr.value, bool)
                ):
                    add(
                        sub,
                        "REPRO022",
                        f"literal exit code {expr.value} in "
                        f"{stmt.name}() bypasses the EXIT_CODES table — "
                        "return a registered EXIT_* constant",
                    )


# ----------------------------------------------------------------------
# REPRO023 — determinism taint on @complexity paths
# ----------------------------------------------------------------------


def _scan_determinism(func: ast.AST, qualname: str, add: _AddFn) -> None:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            func_expr = node.func
            if isinstance(func_expr, ast.Attribute):
                receiver = func_expr.value
                # random.<draw>() on the unseeded module-level stream.
                if (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "random"
                    and func_expr.attr not in _SEEDED_RANDOM_EXEMPT
                ):
                    add(
                        node, "REPRO023",
                        f"unseeded random.{func_expr.attr}() on a "
                        f"@complexity path (in {qualname})",
                    )
                # np.random.<draw>() on the legacy global generator.
                elif (
                    isinstance(receiver, ast.Attribute)
                    and receiver.attr == "random"
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id in _NUMPY_ALIASES
                    and func_expr.attr not in _SEEDED_NP_RANDOM_EXEMPT
                ):
                    add(
                        node, "REPRO023",
                        f"unseeded np.random.{func_expr.attr}() on a "
                        f"@complexity path (in {qualname})",
                    )
                # time.time()/time.time_ns() — wall clock into outputs.
                elif (
                    isinstance(receiver, ast.Name)
                    and receiver.id == "time"
                    and func_expr.attr in _WALLCLOCK_TIME_CALLS
                ):
                    add(
                        node, "REPRO023",
                        f"wall-clock time.{func_expr.attr}() on a "
                        f"@complexity path (in {qualname})",
                    )
                # datetime.now()/utcnow()/today() with no arguments.
                elif (
                    func_expr.attr in _WALLCLOCK_DATETIME_CALLS
                    and not node.args
                    and not node.keywords
                    and _call_name(receiver) in ("datetime", "date")
                ):
                    add(
                        node, "REPRO023",
                        f"argless {_call_name(receiver)}."
                        f"{func_expr.attr}() reads the wall clock on a "
                        f"@complexity path (in {qualname})",
                    )
        elif isinstance(node, ast.Attribute):
            if (
                node.attr == "environ"
                and isinstance(node.value, ast.Name)
                and node.value.id == "os"
                and isinstance(node.ctx, ast.Load)
            ):
                add(
                    node, "REPRO023",
                    f"os.environ read on a @complexity path — inject "
                    f"configuration explicitly (in {qualname})",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            iter_expr = node.iter
            unordered = (
                isinstance(iter_expr, (ast.Set, ast.SetComp))
                or (
                    isinstance(iter_expr, ast.Call)
                    and (
                        (
                            isinstance(iter_expr.func, ast.Name)
                            and iter_expr.func.id in ("set", "frozenset")
                        )
                        or (
                            isinstance(iter_expr.func, ast.Attribute)
                            and iter_expr.func.attr == "keys"
                        )
                    )
                )
            )
            if unordered:
                add(
                    iter_expr, "REPRO023",
                    f"iteration over an unordered set/keys view on a "
                    f"@complexity path — sort it (in {qualname})",
                )


def _check_determinism(tree: ast.Module, add: _AddFn) -> None:
    functions, calls, roots = _collect_functions(tree)
    for key in sorted(_reachable(calls, roots)):  # repro-mutate: equivalent=drop-sorted -- findings are fully re-sorted by (line, col, code) below; scan order is immaterial
        _scan_determinism(functions[key], key, add)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def faultflow_check_source(source: str, path: Path) -> List[Finding]:
    """Analyze one module's source; raises ``SyntaxError`` on bad input."""
    tree = ast.parse(source, filename=str(path))
    disables = pragma_disables(source)
    findings: List[Finding] = []
    add = _AddFn(path, findings, disables)
    if path.name in _EXIT_FILES:
        _check_exit_codes(tree, add)
    if _lifecycle_in_scope(path):
        _check_resources(tree, add)
        _check_exceptions(tree, add)
        _check_determinism(tree, add)
    findings.sort(key=lambda f: (f.line, f.col, f.code))  # repro-mutate: equivalent=drop-tuple-field -- checks run in code order; the stable sort keeps it
    return findings


def _lifecycle_in_scope(path: Path) -> bool:
    """Scope the lifecycle/exception/determinism rules.

    Repo files: only the resident-service layers.  Files outside a
    ``repro`` package (fixtures, tests) are always analyzed.
    """
    parts = path.parts
    if "repro" not in parts:
        return True
    inner = parts[parts.index("repro") + 1:-1]
    return bool(_SCOPED_PACKAGES.intersection(inner))


def _selected(path: Path) -> bool:
    return _lifecycle_in_scope(path) or path.name in _EXIT_FILES


def check_faultflow(paths: Iterable[Path]) -> Tuple[List[Finding], int]:
    """Analyze files/trees; returns (findings, files_checked)."""
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        if not _selected(path):
            continue
        findings.extend(
            faultflow_check_source(path.read_text(encoding="utf-8"), path)
        )
        checked += 1
    return findings, checked


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.faultflow",
        description=(
            "Fault-surface analysis (REPRO020-REPRO024): resource "
            "lifecycle, exception flow, exit-code contract and "
            "determinism taint."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(FAULTFLOW_RULES):  # repro-mutate: equivalent=drop-sorted -- registry insertion order is already sorted by code
            print(f"{code}  {FAULTFLOW_RULES[code]}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try 'src/')", file=sys.stderr)
        return 2

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2
    try:
        findings, checked = check_faultflow(targets)
    except SyntaxError as exc:
        print(
            f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
            file=sys.stderr,
        )
        return 2
    for finding in findings:
        print(finding.render())
    summary = (
        f"{len(findings)} finding(s) in {checked} file(s)"
        if findings
        else f"clean: {checked} file(s)"
    )
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
