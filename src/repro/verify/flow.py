"""Process-pool hygiene: an AST dataflow pass over worker code.

:meth:`repro.engine.batch.PartitionEngine.solve_many` fans queries out
over a ``concurrent.futures`` process pool, and the discrete-event
simulators in :mod:`repro.desim` model the same fan-out.  Code that runs
in a pool worker lives under constraints the interpreter cannot enforce:
the submitted callable and its arguments must pickle, module globals are
per-process copies whose mutation silently diverges from the parent, and
unseeded random streams repeat across forked workers.  This pass walks
the call graph reachable from pool-submitted entry points and flags:

==========  ==========================================================
Code        Rule
==========  ==========================================================
REPRO006    Worker-reachable code rebinds or mutates a module-level
            global.  Each process has its own copy; the parent never
            sees the write, so results depend on pool scheduling.
REPRO007    A callable submitted to a process pool cannot pickle: a
            ``lambda``/nested function, or a closure/argument carrying
            an unpicklable value (``Tracer``, locks, open handles,
            threads).
REPRO008    Worker-reachable code draws from the module-level
            ``random`` / ``numpy.random`` stream without seeding —
            forked workers inherit identical state and replay the same
            "random" numbers.
==========  ==========================================================

Detection is intra-module and name-based (no type inference): pools are
names bound to ``ProcessPoolExecutor(...)`` / ``multiprocessing.Pool``
constructions, workers are the first argument of ``submit``/``map``
(and friends) on such a name, and reachability follows direct
``Name(...)`` calls between module-level functions.  Thread pools are
exempt — they share the parent's memory and pickle nothing.  Findings
honour the shared ``# repro-lint: disable=...`` pragma grammar.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.verify.codes import messages_for
from repro.verify.lint import Finding, iter_python_files, pragma_disables

#: Drawn from the central registry (:mod:`repro.verify.codes`).
FLOW_RULES: Dict[str, str] = messages_for("repro.verify.flow")

#: Constructors whose result is a *process* pool.
_POOL_CONSTRUCTORS = frozenset(("ProcessPoolExecutor", "Pool"))
#: Pool methods whose first argument is a callable shipped to workers.
_SUBMIT_METHODS = frozenset(
    (
        "submit",
        "map",
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    )
)
#: Constructors whose instances cannot cross a process boundary.
_UNPICKLABLE_CONSTRUCTORS = frozenset(
    (
        "Tracer",
        "Span",
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
        "Thread",
        "local",
        "open",
        "socket",
    )
)
#: ``random``-module call names that *configure* rather than draw from
#: the stream (or build an owned generator, which is the sanctioned
#: pattern) — never flagged.
_RANDOM_SAFE = frozenset(
    ("seed", "Random", "SystemRandom", "default_rng", "RandomState", "Generator")
)

#: Mutating method names on containers (REPRO006 on a module global).
_MUTATOR_METHODS = frozenset(
    (
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
    )
)


def _func_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_pool_construction(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and _func_name(node.func) in _POOL_CONSTRUCTORS
    )


class _FunctionScope:
    """Everything the pass needs to know about one function body."""

    __slots__ = ("node", "name", "calls", "unpicklable_locals", "nested", "pools")

    def __init__(self, node: ast.AST, name: str) -> None:
        self.node = node
        self.name = name
        #: Names of module-level functions this body calls directly.
        self.calls: Set[str] = set()
        #: Local names bound to a known-unpicklable construction, with
        #: the constructor name (``tracer`` -> ``Tracer``).
        self.unpicklable_locals: Dict[str, str] = {}
        #: Names of functions defined *inside* this body.
        self.nested: Set[str] = set()
        #: Local names bound to a *process* pool.
        self.pools: Set[str] = set()


class _ModuleIndex(ast.NodeVisitor):
    """First pass: module globals, functions, scopes, pool submissions."""

    def __init__(self) -> None:
        self.module_globals: Set[str] = set()
        self.functions: Dict[str, ast.AST] = {}
        self.scopes: List[_FunctionScope] = []
        #: ``(scope, call node, submitted-callable expr)`` triples.
        self.submissions: List[Tuple[_FunctionScope, ast.Call, ast.expr]] = []
        self._stack: List[_FunctionScope] = []

    # -- module surface -------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.module_globals.add(target.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    self.module_globals.add(stmt.target.id)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[stmt.name] = stmt
        self.generic_visit(node)

    # -- function scopes ------------------------------------------------
    def _enter(self, node: ast.AST, name: str) -> None:
        scope = _FunctionScope(node, name)
        if self._stack:
            self._stack[-1].nested.add(name)
        self.scopes.append(scope)
        self._stack.append(scope)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node, node.name)

    # -- within a scope -------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._stack and _is_pool_construction(node.value):
            self._pool_names(node.targets)
        if self._stack and isinstance(node.value, ast.Call):
            ctor = _func_name(node.value.func)
            if ctor in _UNPICKLABLE_CONSTRUCTORS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._stack[-1].unpicklable_locals[target.id] = ctor
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._with_items(node.items)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with_items(node.items)
        self.generic_visit(node)

    def _with_items(self, items: List[ast.withitem]) -> None:
        if not self._stack:
            return
        for item in items:
            if _is_pool_construction(item.context_expr) and isinstance(
                item.optional_vars, ast.Name
            ):
                self._stack[-1].pools.add(item.optional_vars.id)

    def _pool_names(self, targets: List[ast.expr]) -> None:
        for target in targets:
            if isinstance(target, ast.Name):
                self._stack[-1].pools.add(target.id)

    def visit_Call(self, node: ast.Call) -> None:
        if self._stack:
            scope = self._stack[-1]
            name = _func_name(node.func)
            if isinstance(node.func, ast.Name) and name is not None:
                scope.calls.add(name)
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in scope.pools
                and node.args
            ):
                self.submissions.append((scope, node, node.args[0]))
        self.generic_visit(node)


def _reachable_workers(
    index: _ModuleIndex, roots: Set[str]
) -> Set[str]:
    """Module-level functions reachable from the worker entry points."""
    by_name = {scope.name: scope for scope in index.scopes}
    seen: Set[str] = set()
    frontier = [name for name in roots if name in index.functions]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        scope = by_name.get(name)
        if scope is None:
            continue
        for callee in scope.calls:
            if callee in index.functions and callee not in seen:
                frontier.append(callee)
    return seen


class _WorkerBodyChecker(ast.NodeVisitor):
    """Second pass: REPRO006/REPRO008 inside one worker-reachable body."""

    def __init__(
        self,
        path: Path,
        func: ast.AST,
        module_globals: FrozenSet[str],
        disables: Dict[int, FrozenSet[str]],
    ) -> None:
        self.path = path
        self.func = func
        self.module_globals = module_globals
        self.disables = disables
        self.findings: List[Finding] = []
        self._declared_global: Set[str] = set()
        self._seeds_locally = any(
            isinstance(node, ast.Call)
            and _func_name(node.func) in ("seed",)
            for node in ast.walk(func)
        )

    def _add(self, node: ast.AST, code: str, detail: str) -> None:
        line = getattr(node, "lineno", 0)
        if code in self.disables.get(line, frozenset()):
            return
        self.findings.append(
            Finding(
                self.path,
                line,
                getattr(node, "col_offset", 0),
                code,
                f"{FLOW_RULES[code]}: {detail}",
            )
        )

    def visit_Global(self, node: ast.Global) -> None:
        self._declared_global.update(node.names)

    def _flag_if_global_write(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._declared_global:
                self._add(node, "REPRO006", f"rebinds global '{target.id}'")
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base = target.value
            if (
                isinstance(base, ast.Name)
                and base.id in self.module_globals
            ):
                self._add(
                    node, "REPRO006", f"writes into global '{base.id}'"
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._flag_if_global_write(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._flag_if_global_write(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._flag_if_global_write(node.target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            base, attr = func.value.id, func.attr
            if base in self.module_globals and attr in _MUTATOR_METHODS:
                self._add(
                    node,
                    "REPRO006",
                    f"calls '{base}.{attr}(...)' on a module global",
                )
            if (
                base == "random"
                and attr not in _RANDOM_SAFE
                and not self._seeds_locally
            ):
                self._add(
                    node,
                    "REPRO008",
                    f"draws from module-level 'random.{attr}()'",
                )
        # np.random.<draw>() arrives as Attribute(Attribute(np, random), draw)
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "random"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in ("np", "numpy")
            and func.attr not in _RANDOM_SAFE
            and not self._seeds_locally
        ):
            self._add(
                node,
                "REPRO008",
                f"draws from module-level 'numpy.random.{func.attr}()'",
            )
        self.generic_visit(node)


def flow_check_source(source: str, path: Path) -> List[Finding]:
    """Run the full pass over one module's source text."""
    tree = ast.parse(source, filename=str(path))
    disables = pragma_disables(source)
    index = _ModuleIndex()
    index.visit(tree)
    findings: List[Finding] = []
    roots: Set[str] = set()

    # REPRO007 at the submission sites; collect named roots on the way.
    for scope, call, target in index.submissions:
        line_disables = disables.get(call.lineno, frozenset())
        if isinstance(target, ast.Lambda):
            captured = sorted(
                name
                for name in _free_names(target)
                if name in scope.unpicklable_locals
            )
            detail = "submits a lambda (never picklable)"
            if captured:
                ctor = scope.unpicklable_locals[captured[0]]
                detail += (
                    f"; it captures '{captured[0]}' "
                    f"bound to {ctor}(...)"
                )
            if "REPRO007" not in line_disables:
                findings.append(
                    Finding(
                        path,
                        target.lineno,
                        target.col_offset,
                        "REPRO007",
                        f"{FLOW_RULES['REPRO007']}: {detail}",
                    )
                )
        elif isinstance(target, ast.Name):
            if target.id in scope.nested:
                if "REPRO007" not in line_disables:
                    findings.append(
                        Finding(
                            path,
                            call.lineno,
                            call.col_offset,
                            "REPRO007",
                            f"{FLOW_RULES['REPRO007']}: submits nested "
                            f"function '{target.id}' (never picklable)",
                        )
                    )
            else:
                roots.add(target.id)
        # Unpicklable values among the remaining submit arguments.
        for arg in list(call.args[1:]) + [kw.value for kw in call.keywords]:
            if (
                isinstance(arg, ast.Name)
                and arg.id in scope.unpicklable_locals
                and "REPRO007" not in line_disables
            ):
                ctor = scope.unpicklable_locals[arg.id]
                findings.append(
                    Finding(
                        path,
                        arg.lineno,
                        arg.col_offset,
                        "REPRO007",
                        f"{FLOW_RULES['REPRO007']}: passes '{arg.id}' "
                        f"bound to {ctor}(...) to a pool worker",
                    )
                )

    # REPRO006/REPRO008 inside every worker-reachable function body.
    module_globals = frozenset(index.module_globals)
    for name in sorted(_reachable_workers(index, roots)):
        checker = _WorkerBodyChecker(
            path, index.functions[name], module_globals, disables
        )
        checker.visit(index.functions[name])
        findings.extend(checker.findings)

    findings.sort(key=lambda f: (f.line, f.col, f.code))
    return findings


def _free_names(node: ast.Lambda) -> Set[str]:
    """Names read inside a lambda body, minus its own parameters."""
    params = {a.arg for a in node.args.args}
    params.update(a.arg for a in node.args.kwonlyargs)
    params.update(a.arg for a in node.args.posonlyargs)
    if node.args.vararg:
        params.add(node.args.vararg.arg)
    if node.args.kwarg:
        params.add(node.args.kwarg.arg)
    return {
        sub.id
        for sub in ast.walk(node.body)
        if isinstance(sub, ast.Name) and sub.id not in params
    }


def check_flow(paths: Iterable[Path]) -> Tuple[List[Finding], int]:
    """Flow-check files/trees; returns ``(findings, files_checked)``."""
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        findings.extend(
            flow_check_source(path.read_text(encoding="utf-8"), path)
        )
        checked += 1
    return findings, checked
