"""repro-lint: repository-specific static checks, as an AST pass.

Generic linters cannot know this codebase's conventions — that hot-path
classes must be slotted, that timing belongs to the instrumentation
layer, or that a disabled :class:`~repro.instrumentation.counters.OpCounter`
must be the shared ``NULL_COUNTER`` singleton.  This module encodes
those rules over the stdlib :mod:`ast` so they run anywhere the package
runs, with no third-party dependency:

==========  ==========================================================
Code        Rule
==========  ==========================================================
REPRO001    No ``print()`` in library code — use the observability
            layer or return values.  CLI entry points (``cli.py``,
            ``__main__.py``) and the report-producing ``analysis``
            package are exempt.
REPRO002    Classes defined under ``core/``, ``engine/``, ``desim/``,
            ``realtime/`` or ``machine/`` must declare ``__slots__`` —
            the first two are per-query hot paths, the simulators
            allocate per-event/per-message.  Exception types,
            ``NamedTuple``/``TypedDict``/``Protocol`` classes and
            ``enum`` subclasses are exempt.
REPRO003    No bare ``time.time()`` outside ``instrumentation/`` and
            ``observability/`` — wall-clock reads belong behind the
            tracer/metrics layer (and should be ``perf_counter``).
REPRO004    No mutable default arguments (``def f(x=[])`` etc.).
REPRO005    Never construct a disabled ``OpCounter`` — use the shared
            ``NULL_COUNTER`` singleton so no-op counters are free and
            state cannot leak into ad-hoc instances.
REPRO012    Telemetry publishes in the solver hot paths (``core/``,
            ``engine/``) and the per-event report/simulation layers
            (``analysis/``, ``realtime/``) must sit inside an
            ``if <hub>.enabled:`` guard, so disabled telemetry never
            pays for building the event dict — the
            :data:`repro.observability.live.NULL_HUB` contract.
==========  ==========================================================

Sibling passes reuse this module's :class:`Finding` and pragma
machinery for further codes, all surfaced by ``repro analyze``:
REPRO006-REPRO008 (process-pool hygiene, :mod:`repro.verify.flow`),
REPRO009 (empirical complexity gate, :mod:`repro.verify.empirical`),
REPRO010/REPRO011 (missing/contradicted ``@complexity`` contracts,
:mod:`repro.verify.contracts`), REPRO013-REPRO015 (shared-state
lock discipline, async blocking calls and fork-unsafe capture,
:mod:`repro.verify.concurrency`), REPRO016-REPRO019 (hot-path
allocation and dispatch hygiene, :mod:`repro.verify.hotpath`) and
REPRO020-REPRO024 (fault-surface analysis: resource lifecycle,
exception flow, exit-code contract and determinism taint,
:mod:`repro.verify.faultflow`).  The full code registry lives in
:mod:`repro.verify.codes`.

Any finding can be suppressed on its line (for classes and functions,
the ``class``/``def`` line) with a pragma comment; several codes may be
listed, separated by commas and/or whitespace, and trailing free text
is treated as the justification::

    class QueryRecord:  # repro-lint: disable=REPRO002
    def hook(x=[]):  # repro-lint: disable=REPRO004,REPRO001 (fixture)

Run it as a module::

    python -m repro.verify.lint src/ tests/ benchmarks/
    python -m repro.verify.lint --list-rules

Exit status: 0 clean, 1 findings, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.verify.codes import messages_for

#: This linter's rules, drawn from the central registry so codes can
#: never collide across analyzers (see :mod:`repro.verify.codes`).
RULES: Dict[str, str] = messages_for("repro.verify.lint")

#: Files/packages where REPRO001 does not apply (user-facing output is
#: their job).  ``lint.py`` is this command-line tool itself.
_PRINT_EXEMPT_FILES = frozenset(
    ("cli.py", "__main__.py", "lint.py", "concurrency.py", "hotpath.py",
     "faultflow.py")
)
_PRINT_EXEMPT_PACKAGES = frozenset(("analysis",))

#: Packages whose classes must be slotted (REPRO002): the per-query
#: solver hot paths, plus the simulators — whose event/message/packet
#: objects are allocated in the innermost loops of every demo run.
_SLOTTED_PACKAGES = frozenset(("core", "engine", "desim", "realtime", "machine"))

#: Packages allowed to read wall clocks directly (REPRO003).
_CLOCK_PACKAGES = frozenset(("instrumentation", "observability"))

#: Module allowed to construct disabled OpCounters (REPRO005): the one
#: defining NULL_COUNTER itself.
_COUNTER_HOME = "counters.py"

#: Packages whose hub publishes must be guarded (REPRO012): the
#: per-query solver hot paths, where an unguarded publish would build
#: the event dict even with telemetry disabled, plus the report/
#: simulation layers (``analysis``, ``realtime``) that iterate per
#: event — intentional unguarded publishes there take a pragma.
_HUB_GUARDED_PACKAGES = frozenset(("core", "engine", "analysis", "realtime"))

#: Base classes that make __slots__ meaningless or automatic.
_SLOTS_EXEMPT_BASES = frozenset(
    (
        "Exception",
        "BaseException",
        "NamedTuple",
        "TypedDict",
        "Protocol",
        "Enum",
        "IntEnum",
        "StrEnum",
        "Flag",
        "IntFlag",
        "ABC",
    )
)

_MUTABLE_DEFAULT_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)
_MUTABLE_DEFAULT_CALLS = frozenset(
    ("list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque")
)

_PRAGMA_RE = re.compile(r"#\s*repro-lint\s*:\s*disable\s*=\s*(.*)$")
#: Shape of a rule code inside a pragma's code list.  The list may be
#: comma- and/or whitespace-separated and followed by free justification
#: text; anything not shaped like a code is ignored rather than glued
#: onto a neighbouring code.
_PRAGMA_CODE_RE = re.compile(r"[A-Z]+\d+$")


class Finding:
    """One rule violation at a source location."""

    __slots__ = ("path", "line", "col", "code", "message")

    def __init__(
        self, path: Path, line: int, col: int, code: str, message: str
    ) -> None:
        self.path = path
        self.line = line
        self.col = col
        self.code = code
        self.message = message

    def __repr__(self) -> str:
        return f"Finding({self.code} at {self.path}:{self.line})"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


def pragma_disables(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> rule codes disabled on that line.

    Shared by every analysis pass that honours ``repro-lint`` pragmas
    (this linter, :mod:`repro.verify.contracts`,
    :mod:`repro.verify.flow`), so one pragma grammar rules them all.
    """
    disables: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            codes = frozenset(
                token
                for token in re.split(r"[,\s]+", match.group(1))
                if _PRAGMA_CODE_RE.match(token)
            )
            if codes:
                disables[lineno] = codes
    return disables


def _base_name(node: ast.expr) -> Optional[str]:
    """The rightmost name of a base-class expression, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Protocol[T], Generic[T], ...
        return _base_name(node.value)
    return None


def _call_name(node: ast.expr) -> Optional[str]:
    """The rightmost name of a call's callee, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _has_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return True
    return False


def _is_slots_exempt(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        name = _base_name(base)
        if name is not None and (
            name in _SLOTS_EXEMPT_BASES or name.endswith(("Error", "Exception"))
        ):
            return True
    for deco in cls.decorator_list:
        # @dataclass(slots=True) (py>=3.10) generates __slots__ itself.
        if (
            isinstance(deco, ast.Call)
            and _call_name(deco.func) == "dataclass"
            and any(
                kw.arg == "slots"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in deco.keywords
            )
        ):
            return True
    return False


def _mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_DEFAULT_NODES):
        return True
    if isinstance(node, ast.Call):
        name = _call_name(node.func)
        return name in _MUTABLE_DEFAULT_CALLS
    return False


def _disabled_counter_call(node: ast.Call) -> bool:
    """True for ``OpCounter(False)`` / ``OpCounter(enabled=False)``."""
    if _call_name(node.func) != "OpCounter":
        return False
    for arg in node.args[:1]:
        if isinstance(arg, ast.Constant) and arg.value is False:
            return True
    for kw in node.keywords:
        if (
            kw.arg == "enabled"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
        ):
            return True
    return False


class _Checker(ast.NodeVisitor):
    """Single-file rule evaluation; path decides which rules apply."""

    def __init__(self, path: Path, source: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self._disables = pragma_disables(source)
        parts = path.parts
        self._check_print = (
            path.name not in _PRINT_EXEMPT_FILES
            and not _PRINT_EXEMPT_PACKAGES.intersection(parts)
        )
        # The slots rule targets the *library's* hot paths: require the
        # ``repro`` package in the path so ``tests/core`` / ``tests/engine``
        # (plain test classes, never per-query allocations) stay out.
        self._check_slots = (
            "repro" in parts and bool(_SLOTTED_PACKAGES.intersection(parts))
        )
        self._check_clock = not _CLOCK_PACKAGES.intersection(parts)
        self._check_counter = path.name != _COUNTER_HOME
        self._check_hub = (
            "repro" in parts and bool(_HUB_GUARDED_PACKAGES.intersection(parts))
        )
        # Lexical nesting depth of ``if <x>.enabled:`` guards around the
        # node being visited (REPRO012).
        self._hub_guard = 0

    def _add(self, node: ast.AST, code: str) -> None:
        line = getattr(node, "lineno", 0)
        if code in self._disables.get(line, frozenset()):
            return
        self.findings.append(
            Finding(self.path, line, getattr(node, "col_offset", 0),
                    code, RULES[code])
        )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._check_slots and not _has_slots(node) and not _is_slots_exempt(node):
            self._add(node, "REPRO002")
        self.generic_visit(node)

    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _mutable_default(default):
                self._add(default, "REPRO004")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_If(self, node: ast.If) -> None:
        # An ``if`` whose test reads any ``.enabled`` attribute guards
        # its body (only) for REPRO012; the else-branch stays unguarded.
        guarded = self._check_hub and any(
            isinstance(sub, ast.Attribute) and sub.attr == "enabled"
            for sub in ast.walk(node.test)
        )
        self.visit(node.test)
        if guarded:
            self._hub_guard += 1
        for stmt in node.body:
            self.visit(stmt)
        if guarded:
            self._hub_guard -= 1
        for stmt in node.orelse:
            self.visit(stmt)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self._check_print
            and isinstance(func, ast.Name)
            and func.id == "print"
        ):
            self._add(node, "REPRO001")
        if (
            self._check_hub
            and self._hub_guard == 0
            and isinstance(func, ast.Attribute)
            and func.attr.startswith("publish")
        ):
            self._add(node, "REPRO012")
        if (
            self._check_clock
            and isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            self._add(node, "REPRO003")
        if self._check_counter and _disabled_counter_call(node):
            self._add(node, "REPRO005")
        self.generic_visit(node)


def lint_source(source: str, path: Path) -> List[Finding]:
    """Lint one module's source text; raises ``SyntaxError`` on bad input."""
    tree = ast.parse(source, filename=str(path))
    checker = _Checker(path, source)
    checker.visit(tree)
    checker.findings.sort(key=lambda f: (f.line, f.col, f.code))
    return checker.findings


def lint_file(path: Path) -> List[Finding]:
    return lint_source(path.read_text(encoding="utf-8"), path)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        else:
            yield path


def lint_paths(paths: Iterable[Path]) -> Tuple[List[Finding], int]:
    """Lint files/trees; returns (findings, files_checked)."""
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        findings.extend(lint_file(path))
        checked += 1
    return findings, checked


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.lint",
        description="Repository-specific AST lint rules (REPRO001-REPRO005).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            print(f"{code}  {RULES[code]}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try 'src/')", file=sys.stderr)
        return 2

    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2
    try:
        findings, checked = lint_paths(targets)
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    summary = (
        f"{len(findings)} finding(s) in {checked} file(s)"
        if findings
        else f"clean: {checked} file(s)"
    )
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
