"""Dynamic allocation certifier: tracemalloc budgets for hot paths.

The static pass (:mod:`repro.verify.hotpath`) proves the *code shape*
of the ``@complexity`` paths stays allocation-lean — no loop-invariant
rebuilds, no unbound attribute dispatch, no accidentally-quadratic
idioms, no NumPy temporary chains.  This module checks the claim
actually *holds at the allocator*: an :class:`AllocationHarness` runs
a warmed operation under ``sys.getallocatedblocks()`` deltas and a
``tracemalloc`` window and reports exact counts, the way
:class:`repro.verify.races.ConcurrencyHarness` drives the lock
discipline that :mod:`repro.verify.concurrency` declares.

Scenario functions (``measure_*``) cover the paths the zero-overhead
and warm-query claims rest on:

- the disabled-telemetry paths (the REPRO012 guard on ``NULL_HUB``,
  the null hub's publish no-ops, a locked ``Counter.inc``) — these
  must retain **zero** net allocator blocks per warm loop;
- a warm ``PlanCache``-style bound sweep on a compiled plan, where
  every query after the first hits the memoized structure;
- ``compute_prime_structure`` on the reference backend, the ``O(n)``
  preprocessing every solver call rides on.

Measured numbers become committed budgets in ``BENCH_engine.json``
(encoded with :func:`ratchet_ratio`, so ``repro ratchet`` fails when a
path blows >25% past its budget) — the static pass claims, this
harness certifies, exactly the concurrency-analyzer/race-hammer
pairing.

Warm loops measure steady state, not first-call effects: imports,
freelists, caches and memos are primed by ``warmup`` iterations before
any counter is read, and the net-block delta takes the minimum across
``repeats`` windows because stray daemon allocations only ever inflate
it.
"""

from __future__ import annotations

import gc
import random
import sys
import tracemalloc
from typing import Any, Callable, Dict

__all__ = [
    "AllocationBudgetError",
    "AllocationHarness",
    "certify_budgets",
    "measure_all",
    "measure_disabled_telemetry",
    "measure_prime_structure",
    "measure_warm_plan_sweep",
    "ratchet_ratio",
]


class AllocationBudgetError(AssertionError):
    """A measured path exceeded its committed allocation budget."""


#: Op callback signature: one unit of hot-path work, no arguments.
AllocOp = Callable[[], Any]


class AllocationHarness:
    """Measure allocator activity of one warmed operation.

    Parameters
    ----------
    warmup:
        Iterations run before any measurement, so imports, freelists,
        memo tables and interned objects are in steady state.
    iterations:
        Iterations inside each measurement window.
    repeats:
        Net-block windows measured; the minimum delta is reported
        (background allocations can only inflate a window, never
        shrink it).
    seed:
        Seeds the deterministic workloads the ``measure_*`` scenarios
        build, so budgets are reproducible bit-for-bit.
    """

    __slots__ = ("warmup", "iterations", "repeats", "seed")

    def __init__(
        self,
        warmup: int = 1_000,
        iterations: int = 20_000,
        repeats: int = 3,
        seed: int = 0,
    ) -> None:
        if warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        if repeats <= 0:
            raise ValueError(f"repeats must be positive, got {repeats}")
        self.warmup = warmup
        self.iterations = iterations
        self.repeats = repeats
        self.seed = seed

    @property
    def total_iterations(self) -> int:
        """Measured iterations across all net-block windows."""
        return self.iterations * self.repeats

    def measure(self, op: AllocOp) -> Dict[str, int]:
        """Run ``op`` warm and return its allocator footprint.

        Returns ``{"net_blocks", "net_bytes", "peak_bytes"}``:
        ``net_blocks`` is the best (minimum) ``getallocatedblocks()``
        delta across the repeat windows — the retained-allocation
        count, 0 for a truly allocation-free path; ``net_bytes`` and
        ``peak_bytes`` come from one ``tracemalloc`` window over
        ``iterations`` calls (retained and high-water traced bytes).
        """
        for _ in range(self.warmup):
            op()
        gc.collect()
        net_blocks: int = sys.maxsize
        for _ in range(self.repeats):
            gc.collect()
            before = sys.getallocatedblocks()
            for _ in range(self.iterations):
                op()
            gc.collect()
            delta = sys.getallocatedblocks() - before
            if delta < net_blocks:
                net_blocks = delta
        # Byte-level pass, kept outside the block windows: tracemalloc's
        # own bookkeeping allocates and would drown the block deltas.
        was_tracing = tracemalloc.is_tracing()
        if not was_tracing:
            tracemalloc.start()
        gc.collect()
        tracemalloc.clear_traces()
        for _ in range(self.iterations):
            op()
        net_bytes, peak_bytes = tracemalloc.get_traced_memory()
        if not was_tracing:
            tracemalloc.stop()
        gc.collect()
        return {
            "net_blocks": net_blocks,
            "net_bytes": net_bytes,
            "peak_bytes": peak_bytes,
        }


def ratchet_ratio(measured: int, budget: int) -> float:
    """Encode a budget check as a higher-is-better ratchet ratio.

    Exactly ``1.0`` whenever ``measured <= budget`` (so the committed
    baseline is stable run to run), decaying as ``budget / measured``
    beyond it — under ``repro ratchet``'s default 20% tolerance the
    gate trips once a path allocates more than 1.25x its budget.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    clamped = max(0, measured)
    return budget / float(max(clamped, budget))


def certify_budgets(
    measured: Dict[str, Dict[str, int]],
    budgets: Dict[str, Dict[str, int]],
) -> None:
    """Raise :class:`AllocationBudgetError` on any blown budget.

    ``measured`` and ``budgets`` are nested ``{scenario: {field:
    value}}`` dicts; only fields present in ``budgets`` are checked, so
    a budget file can pin ``net_blocks`` without pinning noisy byte
    counts.
    """
    blown = []
    for scenario, fields in budgets.items():
        if scenario not in measured:
            blown.append(f"{scenario}: not measured")
            continue
        for field, budget in fields.items():
            got = measured[scenario].get(field)
            if got is None or got > budget:
                blown.append(f"{scenario}.{field}: {got} > budget {budget}")
    if blown:
        raise AllocationBudgetError(
            "allocation budgets exceeded:\n" + "\n".join(blown)
        )


def _make_chain(rng: random.Random, n: int) -> Any:
    from repro.graphs.chain import Chain

    return Chain(
        alpha=[rng.randint(1, 9) for _ in range(n)],
        beta=[rng.randint(1, 5) for _ in range(n - 1)],
    )


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def measure_disabled_telemetry(
    harness: AllocationHarness,
) -> Dict[str, Dict[str, int]]:
    """The three zero-overhead telemetry paths, one footprint each.

    Certifies the claims behind REPRO012 and the disabled-path bench:
    the ``if hub.enabled:`` guard on :data:`NULL_HUB`, the null hub's
    publish no-ops on a prebuilt event, and a locked ``Counter.inc``
    must all retain zero allocator blocks once warm.
    """
    from repro.observability.live import NULL_HUB
    from repro.observability.metrics import Counter

    event = {"kind": "event", "event": "alloc"}
    counter = Counter("alloc.certify")

    def guard() -> None:
        if NULL_HUB.enabled:
            NULL_HUB.publish({"kind": "event"})

    def publish() -> None:
        NULL_HUB.publish(event)
        NULL_HUB.publish_metric("alloc", "counter", 1.0)

    def inc() -> None:
        counter.inc(1.0)

    return {
        "guard": harness.measure(guard),
        "publish": harness.measure(publish),
        "counter_inc": harness.measure(inc),
    }


def measure_warm_plan_sweep(
    harness: AllocationHarness, *, tasks: int = 512, queries: int = 32
) -> Dict[str, int]:
    """Footprint of one warm multi-bound sweep on a compiled plan.

    Every bound hits the plan's memoized structure after warmup, so
    the steady-state cost is the query bookkeeping plus the returned
    result array — the per-sweep byte budget pins exactly that.
    """
    from repro.engine.plan import compile_chain

    rng = random.Random(f"{harness.seed}-plan-sweep")
    chain = _make_chain(rng, tasks)
    plan = compile_chain(chain)
    alpha_max = float(chain.max_vertex_weight())
    bounds = [
        alpha_max * (1.25 + 2.75 * q / max(1, queries - 1))
        for q in range(queries)
    ]

    def sweep() -> None:
        plan.solve_bounds(bounds)

    return harness.measure(sweep)


def measure_prime_structure(
    harness: AllocationHarness, *, tasks: int = 256
) -> Dict[str, int]:
    """Footprint of one ``compute_prime_structure`` reference call.

    The ``O(n)`` preprocessing allocates by design (primes, membership
    intervals, reduced edges); the budget pins it from creeping — a
    reintroduced per-edge temporary shows up as a byte-budget blowout
    long before it shows up as a timing regression.
    """
    from repro.core.prime_subpaths import compute_prime_structure

    rng = random.Random(f"{harness.seed}-prime-structure")
    chain = _make_chain(rng, tasks)
    bound = 2.0 * float(chain.max_vertex_weight())

    def build() -> None:
        compute_prime_structure(chain, bound, backend="python")

    return harness.measure(build)


def measure_all(
    telemetry: AllocationHarness, workload: AllocationHarness
) -> Dict[str, Dict[str, int]]:
    """Run every scenario; the one-call entry point used by tooling.

    ``telemetry`` drives the cheap disabled-path loops (large
    iteration counts are fine); ``workload`` drives the solver-scale
    scenarios, which cost a full sweep or structure build per
    iteration.
    """
    results: Dict[str, Dict[str, int]] = {}
    for name, footprint in measure_disabled_telemetry(telemetry).items():
        results[f"disabled_{name}"] = footprint
    results["warm_plan_sweep"] = measure_warm_plan_sweep(workload)
    results["prime_structure"] = measure_prime_structure(workload)
    return results
