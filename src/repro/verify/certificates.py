"""``O(n)`` certificate checkers for the paper's three cut problems.

Every algorithm in this repository emits a cut ``S`` plus a claimed
objective value.  Validity of that claim never depends on *how* the cut
was found — it is a small set of linear-time invariants straight out of
the paper:

- **execution-time bound** (Sections 2.1–2.3): every component of
  ``G - S`` weighs at most ``K``;
- **bottleneck** (Section 2.1): the claimed value equals
  ``max_{e in S} delta(e)``;
- **bandwidth** (Section 2.3): the claimed value equals
  ``sum_{e in S} beta(e)``;
- **prime-subpath coverage** (Section 2.3): a chain cut satisfies the
  bound iff it removes at least one edge from every prime (minimal
  critical) subpath, and an *optimal* bandwidth cut only ever uses
  edges covered by some prime subpath;
- **Pareto monotonicity** (inverse problems): along a
  processor-budget frontier the achievable bound never increases and
  the bandwidth paid for it never decreases.

Checkers return a :class:`CertificateReport` whose :class:`Violation`
entries name the violated invariant; they never raise on a bad
solution (malformed *inputs* such as out-of-range edge indices are
reported as violations too).  :meth:`CertificateReport.raise_if_failed`
converts a failed report into a :class:`VerificationError`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.feasibility import PartitioningError
from repro.core.prime_subpaths import find_prime_subpaths
from repro.graphs.chain import Chain
from repro.graphs.task_graph import Edge, canonical_edge
from repro.graphs.tree import Tree

#: Relative tolerance for comparing claimed objective values against the
#: recomputed ones.  The solvers all produce exact float sums over the
#: same operands, so in practice the comparison is exact; the tolerance
#: only forgives benign re-association by external callers.
DEFAULT_REL_TOL = 1e-9


class Violation:
    """One violated invariant: a machine-readable code, the paper
    invariant it breaks, and the concrete numbers that break it.

    Slotted: verification runs on every solve under ``REPRO_VERIFY=1``,
    and reports are allocated per query.
    """

    __slots__ = ("code", "invariant", "message", "context")

    def __init__(
        self,
        code: str,
        invariant: str,
        message: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.code = code
        self.invariant = invariant
        self.message = message
        self.context: Dict[str, Any] = dict(context or {})

    def as_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "invariant": self.invariant,
            "message": self.message,
            "context": dict(self.context),
        }

    def __repr__(self) -> str:
        return f"Violation({self.code}: {self.message})"


class CertificateReport:
    """The outcome of checking one claimed solution.

    ``checks`` counts the invariants evaluated, so a passing report
    still tells you the certificate actually covered something.
    """

    __slots__ = ("subject", "checks", "violations")

    def __init__(self, subject: str) -> None:
        self.subject = subject
        self.checks = 0
        self.violations: List[Violation] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(
        self,
        code: str,
        invariant: str,
        message: str,
        context: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.violations.append(Violation(code, invariant, message, context))

    def raise_if_failed(self) -> "CertificateReport":
        if self.violations:
            raise VerificationError(self)
        return self

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return f"CertificateReport({self.subject}: {status}, {self.checks} checks)"


class VerificationError(PartitioningError):
    """A claimed solution failed certificate verification.

    Subclasses :class:`~repro.core.feasibility.PartitioningError` so the
    batch engine records it per query instead of poisoning the batch.
    """

    def __init__(self, report: CertificateReport) -> None:
        lines = [f"{report.subject}: {len(report.violations)} violated invariant(s)"]
        for violation in report.violations:
            lines.append(
                f"  [{violation.code}] {violation.invariant}: {violation.message}"
            )
        super().__init__("\n".join(lines))
        self.report = report


def _values_close(claimed: float, actual: float, rel_tol: float) -> bool:
    return math.isclose(claimed, actual, rel_tol=rel_tol, abs_tol=rel_tol)


#: Invariant text shared by the chain and tree load checks.
_LOAD_INVARIANT = (
    "execution-time bound: every component of G - S weighs at most K"
)
_BANDWIDTH_INVARIANT = (
    "bandwidth objective: claimed weight equals sum of beta(e) over the cut"
)
_BOTTLENECK_INVARIANT = (
    "bottleneck objective: claimed value equals max of delta(e) over the cut"
)
_PRIME_COVER_INVARIANT = (
    "prime-subpath coverage (Section 2.3): a feasible cut removes at "
    "least one edge from every prime subpath"
)
_PRIME_SUPPORT_INVARIANT = (
    "non-redundant support (Section 2.3): an optimal bandwidth cut only "
    "uses edges covered by some prime subpath"
)
_PARETO_INVARIANT = (
    "Pareto monotonicity: more processors never worsen the achievable "
    "bound, and a tighter bound never costs less bandwidth"
)


def check_chain_partition(
    chain: Chain,
    cut_indices: Sequence[int],
    bound: float,
    claimed_weight: Optional[float] = None,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
) -> CertificateReport:
    """Certify a claimed chain cut against the Section 2.3 invariants.

    Checks, each in ``O(n)``: the cut is a set of valid edge indices,
    every induced block weighs at most ``bound``, and (when given) the
    claimed bandwidth equals the recomputed ``sum beta(e)``.
    """
    report = CertificateReport("chain_partition")
    n = chain.num_tasks
    report.checks += 1
    raw = [int(i) for i in cut_indices]
    indices = sorted(set(raw))
    if len(indices) != len(raw):
        report.add(
            "chain.duplicate_cut_edges",
            "a cut is a *set* of edges",
            f"cut lists {len(raw)} edges but only "
            f"{len(indices)} are distinct",
            {"cut_indices": raw},
        )
    bad = [i for i in indices if not (0 <= i < chain.num_edges)]
    if bad:
        report.add(
            "chain.cut_edge_out_of_range",
            "cut edges must exist in the chain",
            f"edge indices {bad} out of range for a chain with "
            f"{chain.num_edges} edges",
            {"bad_indices": bad, "num_edges": chain.num_edges},
        )
        return report  # block boundaries below would be meaningless
    report.checks += 1
    prefix = chain.prefix_weights()
    # Prefix-difference block weights carry cancellation noise of a few
    # ulps of the total weight; a block at exactly K (e.g. one maximal
    # task) must not be flagged, so the bound gets matching slack.
    slack = rel_tol * max(1.0, abs(bound))
    lo = 0
    for edge in indices + [n - 1]:
        hi = edge if edge < n - 1 else n - 1
        block_weight = prefix[hi + 1] - prefix[lo]
        if block_weight > bound + slack:
            report.add(
                "chain.load_bound",
                _LOAD_INVARIANT,
                f"block [{lo}..{hi}] weighs {block_weight:g} > K={bound:g}",
                {"block": (lo, hi), "weight": block_weight, "bound": bound},
            )
        lo = hi + 1
    if claimed_weight is not None:
        report.checks += 1
        actual = sum(chain.beta[i] for i in indices)
        if not _values_close(claimed_weight, actual, rel_tol):
            report.add(
                "chain.bandwidth_mismatch",
                _BANDWIDTH_INVARIANT,
                f"claimed bandwidth {claimed_weight:g} but the cut's edge "
                f"weights sum to {actual:g}",
                {"claimed": claimed_weight, "actual": actual},
            )
    return report


def check_prime_cover(
    chain: Chain,
    cut_indices: Sequence[int],
    bound: float,
    *,
    require_covered: bool = False,
) -> CertificateReport:
    """Certify prime-subpath coverage of a claimed chain cut.

    Recomputes the prime (minimal critical) subpaths in ``O(n)`` and
    checks the cut removes at least one edge from each — the paper's
    exact characterization of feasibility.  With ``require_covered``
    (engine outputs), additionally checks every cut edge lies inside
    some prime subpath: the non-redundant edge reduction guarantees an
    optimal cut never pays for an uncovered edge.
    """
    report = CertificateReport("prime_cover")
    try:
        primes = find_prime_subpaths(chain, bound)
    except (PartitioningError, ValueError) as exc:
        report.checks += 1
        report.add(
            "chain.infeasible_bound",
            "K must be at least the maximum vertex weight",
            str(exc),
            {"bound": bound},
        )
        return report
    cut = sorted(set(int(i) for i in cut_indices))
    report.checks += 1
    # Both the primes and the cut are sorted; one merged pass suffices.
    ptr = 0
    for prime in primes:
        while ptr < len(cut) and cut[ptr] < prime.first_edge:
            ptr += 1
        if ptr >= len(cut) or cut[ptr] > prime.last_edge:
            report.add(
                "chain.prime_uncovered",
                _PRIME_COVER_INVARIANT,
                f"prime subpath over tasks "
                f"[{prime.first_task}..{prime.last_task}] "
                f"(weight {prime.weight:g} > K={bound:g}) contains no cut edge",
                {
                    "first_task": prime.first_task,
                    "last_task": prime.last_task,
                    "weight": prime.weight,
                },
            )
    if require_covered:
        report.checks += 1
        uncovered = []
        ptr = 0
        for edge in cut:
            while ptr < len(primes) and primes[ptr].last_edge < edge:
                ptr += 1
            if ptr >= len(primes) or not primes[ptr].contains_edge(edge):
                uncovered.append(edge)
        if uncovered:
            report.add(
                "chain.uncovered_cut_edge",
                _PRIME_SUPPORT_INVARIANT,
                f"cut edges {uncovered} lie in no prime subpath and can "
                "never appear in an optimal bandwidth cut",
                {"uncovered": uncovered},
            )
    return report


def check_tree_cut(
    tree: Tree,
    cut_edges: Iterable[Edge],
    bound: float,
    claimed_bottleneck: Optional[float] = None,
    claimed_bandwidth: Optional[float] = None,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
) -> CertificateReport:
    """Certify a claimed tree cut against the Section 2.1/2.2 invariants.

    Checks, each in ``O(n)``: the cut edges exist in the tree, every
    component of ``T - S`` weighs at most ``bound``, and the claimed
    bottleneck (``max delta(e)``) / bandwidth (``sum beta(e)``) match
    the recomputed values.
    """
    report = CertificateReport("tree_cut")
    canonical = {canonical_edge(u, v) for u, v in cut_edges}
    report.checks += 1
    known = set(tree.edges())
    missing = sorted(canonical - known)
    if missing:
        report.add(
            "tree.cut_edge_missing",
            "cut edges must exist in the tree",
            f"edges {missing} are not tree edges",
            {"missing": missing},
        )
        return report
    report.checks += 1
    # Same cancellation slack as the chain check: a component summed in
    # a different association order than the solver's may land a few
    # ulps above an exactly-tight bound.
    slack = rel_tol * max(1.0, abs(bound))
    for weight in tree.component_weights(canonical):
        if weight > bound + slack:
            report.add(
                "tree.load_bound",
                _LOAD_INVARIANT,
                f"a component of T - S weighs {weight:g} > K={bound:g}",
                {"weight": weight, "bound": bound},
            )
    if claimed_bottleneck is not None:
        report.checks += 1
        actual = (
            max(tree.edge_weight(u, v) for u, v in canonical)
            if canonical
            else 0.0
        )
        if not _values_close(claimed_bottleneck, actual, rel_tol):
            report.add(
                "tree.bottleneck_mismatch",
                _BOTTLENECK_INVARIANT,
                f"claimed bottleneck {claimed_bottleneck:g} but the "
                f"heaviest cut edge weighs {actual:g}",
                {"claimed": claimed_bottleneck, "actual": actual},
            )
    if claimed_bandwidth is not None:
        report.checks += 1
        actual = sum(tree.edge_weight(u, v) for u, v in canonical)
        if not _values_close(claimed_bandwidth, actual, rel_tol):
            report.add(
                "tree.bandwidth_mismatch",
                _BANDWIDTH_INVARIANT,
                f"claimed bandwidth {claimed_bandwidth:g} but the cut's "
                f"edge weights sum to {actual:g}",
                {"claimed": claimed_bandwidth, "actual": actual},
            )
    return report


def check_pareto_frontier(
    rows: Sequence[Mapping[str, Any]],
    *,
    rel_tol: float = 1e-6,
    check_bandwidth: bool = True,
) -> CertificateReport:
    """Certify monotonicity of a processor/bound trade-off frontier.

    ``rows`` is the output of
    :func:`repro.core.inverse.chain_pareto_frontier` or
    :func:`~repro.core.inverse.tree_pareto_frontier`: dicts with
    ``processors`` and ``bound`` keys (``bandwidth`` optional).  Checks
    processors strictly increase, the achievable bound never increases
    with more processors, and — for chains, where the reported
    bandwidth is the *minimum* under the bound and therefore monotone —
    that a tighter bound never costs less bandwidth.  Tree frontiers
    report the bandwidth of one realized partition, which carries no
    such guarantee; pass ``check_bandwidth=False`` for them.  The
    default tolerance is looser than the value checkers' because the
    tree bound is located by bisection.
    """
    report = CertificateReport("pareto_frontier")
    report.checks += 1
    slack = rel_tol
    for prev, row in zip(rows, rows[1:]):
        if row["processors"] <= prev["processors"]:
            report.add(
                "pareto.processors_not_increasing",
                _PARETO_INVARIANT,
                f"processor budgets {prev['processors']} -> "
                f"{row['processors']} do not increase",
                {"prev": dict(prev), "row": dict(row)},
            )
        scale = max(1.0, abs(prev["bound"]))
        if row["bound"] > prev["bound"] + slack * scale:
            report.add(
                "pareto.bound_increased",
                _PARETO_INVARIANT,
                f"bound worsened from {prev['bound']:g} "
                f"(p={prev['processors']}) to {row['bound']:g} "
                f"(p={row['processors']})",
                {"prev": dict(prev), "row": dict(row)},
            )
        if check_bandwidth and "bandwidth" in row and "bandwidth" in prev:
            scale = max(1.0, abs(row["bandwidth"]))
            if prev["bandwidth"] > row["bandwidth"] + slack * scale:
                report.add(
                    "pareto.bandwidth_decreased",
                    _PARETO_INVARIANT,
                    f"a tighter bound ({row['bound']:g} vs "
                    f"{prev['bound']:g}) paid less bandwidth "
                    f"({row['bandwidth']:g} < {prev['bandwidth']:g})",
                    {"prev": dict(prev), "row": dict(row)},
                )
    return report
