"""Concurrency-safety analysis: shared-state effects, locks, fork hygiene.

The engine is growing from one-shot processes into a long-lived shared
service (ROADMAP item 1): one ``PrimeStructureCache`` serving many
threads, one ``TelemetryHub`` fanning out events from every request,
one ``MetricsRegistry`` accumulating fleet numbers.  The process-pool
pass (:mod:`repro.verify.flow`, REPRO006-008) covers *pickling* hygiene
across process boundaries; this module covers the *shared-memory* side:
which state is shared, who writes it, and whether those writes hold the
object's declared lock.

Two runtime markers declare the contract in code:

- :func:`shared_state` — a class decorator registering the class as
  shared mutable state and naming its lock attribute (default
  ``"_lock"``).  Decorated classes land in :data:`SHARED_REGISTRY`, the
  runtime inventory the race-hammer harness
  (:mod:`repro.verify.races`) iterates.
- :func:`concurrent_entry` — a function/method decorator marking an
  entry point that may be called from multiple threads concurrently.

The static pass then walks the AST of the target packages, builds a
per-class call graph, infers per-function read/write effect sets on
``self`` attributes (and module globals), propagates *unlocked
reachability* from the annotated entry points, and emits:

==========  ==========================================================
Code        Rule
==========  ==========================================================
REPRO013    A write to shared mutable state (an attribute of a
            ``@shared_state`` class, or a module global) on a path
            reachable from a ``@concurrent_entry`` entry point without
            holding the object's declared lock (``with self._lock:``).
REPRO014    A blocking call — ``time.sleep``, ``open``/file I/O,
            ``subprocess``, ``os.system``, pool/future/queue
            ``.get()``/``.result()``/``.join()`` — inside an
            ``async def`` body, where it stalls the whole event loop.
REPRO015    Fork-unsafe capture: an object carrying locks, open file
            handles, threads or a live telemetry hub is pickled into a
            process-pool worker (as an argument, an attribute, or the
            ``self`` of a submitted bound method).
==========  ==========================================================

Lock inference is *interprocedural within a class*: a helper whose only
callers invoke it inside ``with self._lock:`` is considered locked, so
the guarded-entry / unguarded-helper layering of the engine caches
analyzes clean without annotations on every private method.
``__init__``/``__new__`` are exempt (the object is not yet shared while
it is being constructed).  Findings honour the shared
``# repro-lint: disable=CODE`` pragma grammar.

Run it as a module::

    python -m repro.verify.concurrency src/
    python -m repro.verify.concurrency --list-rules

Exit status: 0 clean, 1 findings, 2 usage/parse errors.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.verify.codes import messages_for
from repro.verify.lint import Finding, iter_python_files, pragma_disables
from repro.verify.markers import (  # noqa: F401 - canonical re-export
    SHARED_REGISTRY,
    concurrent_entry,
    shared_state,
)

#: Drawn from the central registry (:mod:`repro.verify.codes`).
CONCURRENCY_RULES: Dict[str, str] = messages_for("repro.verify.concurrency")


#: Constructors whose instances cannot survive a fork+pickle into a
#: process-pool worker (REPRO015 carriers when held as attributes).
_FORK_UNSAFE_CONSTRUCTORS = frozenset(
    (
        "Lock",
        "RLock",
        "Condition",
        "Semaphore",
        "BoundedSemaphore",
        "Event",
        "Barrier",
        "Thread",
        "local",
        "open",
        "socket",
        "Tracer",
        "TelemetryHub",
        "StreamingJsonlSink",
        "ProfileSampler",
    )
)

#: Process-pool constructors and their callable-shipping methods
#: (mirrors :mod:`repro.verify.flow`; thread pools are exempt — they
#: share memory and pickle nothing).
_POOL_CONSTRUCTORS = frozenset(("ProcessPoolExecutor", "Pool"))
_SUBMIT_METHODS = frozenset(
    (
        "submit",
        "map",
        "apply",
        "apply_async",
        "imap",
        "imap_unordered",
        "starmap",
        "starmap_async",
    )
)

#: Direct blocking calls inside ``async def`` (REPRO014).
_BLOCKING_MODULE_CALLS = frozenset(
    (
        ("time", "sleep"),
        ("os", "system"),
        ("os", "popen"),
        ("subprocess", "run"),
        ("subprocess", "call"),
        ("subprocess", "check_call"),
        ("subprocess", "check_output"),
        ("subprocess", "Popen"),
    )
)
_BLOCKING_NAME_CALLS = frozenset(("open", "Popen"))
#: Methods that block when called on a pool result / future / queue /
#: thread / file handle tracked as a local binding.
_BLOCKING_HANDLE_METHODS = frozenset(
    ("get", "result", "join", "wait", "read", "readline", "readlines", "write")
)
#: Constructions (or producing calls) that yield a blocking handle.
_BLOCKING_HANDLE_SOURCES = frozenset(
    (
        "Pool",
        "ProcessPoolExecutor",
        "ThreadPoolExecutor",
        "Queue",
        "SimpleQueue",
        "JoinableQueue",
        "Thread",
        "open",
        "submit",
        "apply_async",
        "map_async",
        "starmap_async",
    )
)

#: Container-mutating method names: a call ``self.attr.<m>(...)`` is a
#: write effect on the shared object (superset of the flow pass's set,
#: adding the OrderedDict/instrument mutators this codebase uses).
_MUTATOR_METHODS = frozenset(
    (
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "move_to_end",
        "inc",
        "set",
        "observe",
    )
)

#: Methods whose body is exempt from REPRO013: the object is not shared
#: with other threads while it is still being constructed.
_CONSTRUCTION_METHODS = frozenset(("__init__", "__new__", "__post_init__"))


def _name_of(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _decorator_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for deco in getattr(node, "decorator_list", []):
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = _name_of(target)
        if name is not None:
            names.add(name)
    return names


def _shared_lock_attr(cls: ast.ClassDef) -> Optional[str]:
    """The declared lock attribute if ``cls`` is ``@shared_state``."""
    for deco in cls.decorator_list:
        if isinstance(deco, ast.Call) and _name_of(deco.func) == "shared_state":
            for kw in deco.keywords:
                if kw.arg == "lock" and isinstance(kw.value, ast.Constant):
                    return str(kw.value.value)
            if deco.args and isinstance(deco.args[0], ast.Constant):
                return str(deco.args[0].value)
            return "_lock"
        if _name_of(deco) == "shared_state":  # bare decorator (no call)
            return "_lock"
    return None


def _attr_root(node: ast.expr) -> Optional[str]:
    """The leftmost name of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _self_attr(node: ast.expr) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class MethodEffects:
    """Inferred effect set of one method of a shared-state class."""

    __slots__ = ("name", "entry", "reads", "writes", "calls", "node")

    def __init__(self, name: str, entry: bool, node: ast.AST) -> None:
        self.name = name
        self.entry = entry
        self.node = node
        #: ``self`` attributes read anywhere in the body.
        self.reads: Set[str] = set()
        #: ``(node, attr, description, locked)`` write effects.
        self.writes: List[Tuple[ast.AST, str, str, bool]] = []
        #: ``(callee method name, locked)`` for ``self.<m>(...)`` calls.
        self.calls: List[Tuple[str, bool]] = []

    def written_attrs(self) -> Set[str]:
        return {attr for _, attr, _, _ in self.writes}

    def unlocked_writes(self) -> List[Tuple[ast.AST, str, str, bool]]:
        return [w for w in self.writes if not w[3]]


class _MethodVisitor(ast.NodeVisitor):
    """Collect one method's effects, tracking ``with self.<lock>:`` depth."""

    def __init__(self, lock_attr: str, effects: MethodEffects) -> None:
        self.lock_attr = lock_attr
        self.effects = effects
        self._lock_depth = 0

    def _locked(self) -> bool:
        return self._lock_depth > 0

    def _is_lock_item(self, item: ast.withitem) -> bool:
        return _self_attr(item.context_expr) == self.lock_attr

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: Any) -> None:
        locked_here = any(self._is_lock_item(item) for item in node.items)
        for item in node.items:
            self.visit(item.context_expr)
        if locked_here:
            self._lock_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if locked_here:
            self._lock_depth -= 1

    # Nested function definitions get their own execution context;
    # their bodies do not inherit the lexical lock state.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        saved, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]
    visit_Lambda = visit_FunctionDef  # type: ignore[assignment]

    def _record_write(self, node: ast.AST, target: ast.expr, verb: str) -> None:
        attr = _self_attr(target)
        if attr is None and _attr_root(target) == "self":
            # self.a.b = ... / self.a[k] = ... — a write *into* self.a.
            base: ast.expr = target
            while _self_attr(base) is None and isinstance(
                base, (ast.Attribute, ast.Subscript)
            ):
                base = base.value
            attr = _self_attr(base)
        if attr is None or attr == self.lock_attr:
            return
        self.effects.writes.append(
            (node, attr, f"{verb} 'self.{attr}'", self._locked())
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if _attr_root(target) == "self":
                self._record_write(node, target, "assigns")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if _attr_root(node.target) == "self":
            self._record_write(node, node.target, "updates")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and _attr_root(node.target) == "self":
            self._record_write(node, node.target, "assigns")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if _attr_root(target) == "self":
                self._record_write(node, target, "deletes")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            callee_self = _self_attr(func)
            if callee_self is not None:
                # self.m(...): an intra-class call edge.
                self.effects.calls.append((func.attr, self._locked()))
            elif (
                func.attr in _MUTATOR_METHODS
                and _attr_root(func.value) == "self"
            ):
                base = func.value
                while _self_attr(base) is None and isinstance(
                    base, (ast.Attribute, ast.Subscript)
                ):
                    base = base.value
                attr = _self_attr(base)
                if attr is not None and attr != self.lock_attr:
                    self.effects.writes.append(
                        (
                            node,
                            attr,
                            f"calls mutator 'self.{attr}…{func.attr}(...)'",
                            self._locked(),
                        )
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _self_attr(node)
        if attr is not None and isinstance(node.ctx, ast.Load):
            self.effects.reads.add(attr)
        self.generic_visit(node)


class SharedClassEffects:
    """Effect inventory of one ``@shared_state`` class."""

    __slots__ = ("name", "lock_attr", "methods", "node")

    def __init__(self, name: str, lock_attr: str, node: ast.ClassDef) -> None:
        self.name = name
        self.lock_attr = lock_attr
        self.node = node
        self.methods: Dict[str, MethodEffects] = {}

    def unlocked_reachable(self) -> Set[str]:
        """Methods reachable from an entry point with the lock *not* held.

        A call made inside ``with self.<lock>:`` reaches its callee
        locked and therefore does not propagate; every other call edge
        from an unlocked-reachable method does.
        """
        frontier = [
            name
            for name, effects in self.methods.items()
            if effects.entry and name not in _CONSTRUCTION_METHODS
        ]
        reached: Set[str] = set()
        while frontier:
            name = frontier.pop()
            if name in reached:
                continue
            reached.add(name)
            effects = self.methods.get(name)
            if effects is None:
                continue
            for callee, locked in effects.calls:
                if (
                    not locked
                    and callee in self.methods
                    and callee not in reached
                    and callee not in _CONSTRUCTION_METHODS
                ):
                    frontier.append(callee)
        return reached


def _collect_shared_classes(tree: ast.Module) -> List[SharedClassEffects]:
    out: List[SharedClassEffects] = []
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        lock_attr = _shared_lock_attr(stmt)
        if lock_attr is None:
            continue
        cls = SharedClassEffects(stmt.name, lock_attr, stmt)
        for member in stmt.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                entry = "concurrent_entry" in _decorator_names(member)
                effects = MethodEffects(member.name, entry, member)
                visitor = _MethodVisitor(lock_attr, effects)
                for sub in member.body:
                    visitor.visit(sub)
                cls.methods[member.name] = effects
        out.append(cls)
    return out


def shared_state_inventory(
    paths: Iterable[Path],
) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Per-class, per-method read/write effect sets over ``paths``.

    Returns ``{"<file>::<Class>": {method: {"entry": bool, "reads":
    [...], "writes": [...], "unlocked_writes": int}}}`` — the
    machine-readable shared-state inventory behind ``repro analyze
    --concurrency`` and the documentation tables.
    """
    inventory: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for path in iter_python_files(paths):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for cls in _collect_shared_classes(tree):
            entry = {
                name: {
                    "entry": effects.entry,
                    "reads": sorted(effects.reads),  # repro-mutate: equivalent=drop-sorted -- set order is hash-seeded
                    "writes": sorted(effects.written_attrs()),  # repro-mutate: equivalent=drop-sorted -- set order is hash-seeded
                    "unlocked_writes": len(effects.unlocked_writes()),
                }
                for name, effects in sorted(cls.methods.items())
            }
            inventory[f"{path}::{cls.name}"] = entry
    return inventory


# ----------------------------------------------------------------------
# REPRO013: unlocked shared-state writes
# ----------------------------------------------------------------------


def _check_shared_classes(
    tree: ast.Module,
    path: Path,
    disables: Dict[int, FrozenSet[str]],
) -> List[Finding]:
    findings: List[Finding] = []
    for cls in _collect_shared_classes(tree):
        reached = cls.unlocked_reachable()
        for name in sorted(reached):  # repro-mutate: equivalent=drop-sorted -- findings re-sorted before return
            effects = cls.methods[name]
            for node, _attr, description, _locked in effects.unlocked_writes():
                line = getattr(node, "lineno", 0)
                if "REPRO013" in disables.get(line, frozenset()):
                    continue
                findings.append(
                    Finding(
                        path,
                        line,
                        getattr(node, "col_offset", 0),
                        "REPRO013",
                        f"{CONCURRENCY_RULES['REPRO013']}: "
                        f"{cls.name}.{name} {description} without holding "
                        f"'self.{cls.lock_attr}' on a concurrent path",
                    )
                )
    return findings


class _GlobalWriteChecker(ast.NodeVisitor):
    """REPRO013 for module globals inside one concurrent function body."""

    def __init__(
        self,
        path: Path,
        func_name: str,
        module_globals: FrozenSet[str],
        disables: Dict[int, FrozenSet[str]],
    ) -> None:
        self.path = path
        self.func_name = func_name
        self.module_globals = module_globals
        self.disables = disables
        self.findings: List[Finding] = []
        self._declared_global: Set[str] = set()

    def _add(self, node: ast.AST, detail: str) -> None:
        line = getattr(node, "lineno", 0)
        if "REPRO013" in self.disables.get(line, frozenset()):
            return
        self.findings.append(
            Finding(
                self.path,
                line,
                getattr(node, "col_offset", 0),
                "REPRO013",
                f"{CONCURRENCY_RULES['REPRO013']}: {self.func_name} {detail} "
                f"(module globals have no declared lock)",
            )
        )

    def visit_Global(self, node: ast.Global) -> None:
        self._declared_global.update(node.names)

    def _check_target(self, target: ast.expr, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if target.id in self._declared_global:
                self._add(node, f"rebinds module global '{target.id}'")
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            root = _attr_root(target)
            if root is not None and root in self.module_globals:
                self._add(node, f"writes into module global '{root}'")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATOR_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.module_globals
        ):
            self._add(
                node, f"calls '{func.value.id}.{func.attr}(...)' on a module global"
            )
        self.generic_visit(node)


def _check_module_globals(
    tree: ast.Module,
    path: Path,
    disables: Dict[int, FrozenSet[str]],
) -> List[Finding]:
    """Module-level ``@concurrent_entry`` functions (and the functions
    they call by name) must not write module globals."""
    module_globals: Set[str] = set()
    functions: Dict[str, ast.AST] = {}
    calls: Dict[str, Set[str]] = {}
    entries: List[str] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    module_globals.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                module_globals.add(stmt.target.id)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[stmt.name] = stmt
            calls[stmt.name] = {
                _name_of(sub.func) or ""
                for sub in ast.walk(stmt)
                if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
            }
            if "concurrent_entry" in _decorator_names(stmt):
                entries.append(stmt.name)
    reached: Set[str] = set()
    frontier = list(entries)
    while frontier:
        name = frontier.pop()
        if name in reached or name not in functions:
            continue
        reached.add(name)
        frontier.extend(c for c in calls.get(name, ()) if c in functions)
    findings: List[Finding] = []
    frozen = frozenset(module_globals)
    for name in sorted(reached):  # repro-mutate: equivalent=drop-sorted -- findings re-sorted before return
        checker = _GlobalWriteChecker(path, name, frozen, disables)
        checker.visit(functions[name])
        findings.extend(checker.findings)
    return findings


# ----------------------------------------------------------------------
# REPRO014: blocking calls in async bodies
# ----------------------------------------------------------------------


class _AsyncBlockingChecker(ast.NodeVisitor):
    """Flag blocking calls lexically inside ``async def`` bodies."""

    def __init__(self, path: Path, disables: Dict[int, FrozenSet[str]]) -> None:
        self.path = path
        self.disables = disables
        self.findings: List[Finding] = []
        self._async_depth = 0
        self._async_name = ""
        #: Local names bound to blocking handles inside the current
        #: async body (files, pools, queues, async results, threads).
        self._handles: Set[str] = set()

    def _add(self, node: ast.AST, detail: str) -> None:
        line = getattr(node, "lineno", 0)
        if "REPRO014" in self.disables.get(line, frozenset()):
            return
        self.findings.append(
            Finding(
                self.path,
                line,
                getattr(node, "col_offset", 0),
                "REPRO014",
                f"{CONCURRENCY_RULES['REPRO014']}: {detail} inside "
                f"'async def {self._async_name}'",
            )
        )

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        saved = (self._async_depth, self._async_name, self._handles)
        self._async_depth += 1
        self._async_name = node.name
        self._handles = set()
        for stmt in node.body:
            self.visit(stmt)
        self._async_depth, self._async_name, self._handles = saved

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A nested sync def has its own call-time context; don't blame
        # the enclosing coroutine for its body.
        saved = (self._async_depth, self._async_name, self._handles)
        self._async_depth = 0
        for stmt in node.body:
            self.visit(stmt)
        self._async_depth, self._async_name, self._handles = saved

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._async_depth and isinstance(node.value, ast.Call):
            source = _name_of(node.value.func)
            if source in _BLOCKING_HANDLE_SOURCES:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._handles.add(target.id)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth:
            func = node.func
            if isinstance(func, ast.Name) and func.id in _BLOCKING_NAME_CALLS:
                self._add(node, f"blocking '{func.id}(...)'")
            elif isinstance(func, ast.Attribute):
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and (base.id, func.attr) in _BLOCKING_MODULE_CALLS
                ):
                    self._add(node, f"blocking '{base.id}.{func.attr}(...)'")
                elif (
                    isinstance(base, ast.Name)
                    and base.id in self._handles
                    and func.attr in _BLOCKING_HANDLE_METHODS
                ):
                    self._add(
                        node,
                        f"blocking '{base.id}.{func.attr}(...)' on a "
                        f"pool/file/queue handle",
                    )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# REPRO015: fork-unsafe capture into process pools
# ----------------------------------------------------------------------


def _fork_unsafe_class_attrs(tree: ast.Module) -> Dict[str, Dict[str, str]]:
    """Per intra-module class: attr -> fork-unsafe constructor name.

    A class *carries* fork-unsafe state when any method assigns
    ``self.<attr> = Ctor(...)`` with a known-unpicklable constructor, or
    with another intra-module carrier class (one fixpoint pass covers
    transitive composition).  ``@shared_state`` classes always carry at
    least their declared lock.
    """
    carriers: Dict[str, Dict[str, str]] = {}
    class_nodes: Dict[str, ast.ClassDef] = {
        stmt.name: stmt for stmt in tree.body if isinstance(stmt, ast.ClassDef)
    }
    for name, cls in class_nodes.items():
        attrs: Dict[str, str] = {}
        lock_attr = _shared_lock_attr(cls)
        if lock_attr is not None:
            attrs[lock_attr] = "RLock"
        for sub in ast.walk(cls):
            if not isinstance(sub, ast.Assign) or not isinstance(
                sub.value, ast.Call
            ):
                continue
            ctor = _name_of(sub.value.func)
            if ctor is None:
                continue
            for target in sub.targets:
                attr = _self_attr(target)
                if attr is not None and ctor in _FORK_UNSAFE_CONSTRUCTORS:
                    attrs[attr] = ctor
        if attrs:
            carriers[name] = attrs
    # One fixpoint pass: classes holding carrier instances carry too.
    changed = True
    while changed:
        changed = False
        for name, cls in class_nodes.items():
            for sub in ast.walk(cls):
                if not isinstance(sub, ast.Assign) or not isinstance(
                    sub.value, ast.Call
                ):
                    continue
                ctor = _name_of(sub.value.func)
                if ctor not in carriers or ctor == name:
                    continue
                for target in sub.targets:
                    attr = _self_attr(target)
                    if attr is not None and attr not in carriers.get(name, {}):
                        carriers.setdefault(name, {})[attr] = ctor
                        changed = True
    return carriers


class _ForkCaptureChecker(ast.NodeVisitor):
    """Track pool bindings + carrier locals; flag unsafe submissions."""

    def __init__(
        self,
        path: Path,
        carriers: Dict[str, Dict[str, str]],
        enclosing_class: Optional[str],
        disables: Dict[int, FrozenSet[str]],
    ) -> None:
        self.path = path
        self.carriers = carriers
        self.enclosing_class = enclosing_class
        self.disables = disables
        self.findings: List[Finding] = []
        self._pools: Set[str] = set()
        #: local name -> carrier class name
        self._carrier_locals: Dict[str, str] = {}
        #: every attr known fork-unsafe on some intra-module class
        self._unsafe_attrs: Dict[str, str] = {
            attr: ctor
            for attrs in carriers.values()
            for attr, ctor in attrs.items()
        }

    def _add(self, node: ast.AST, detail: str) -> None:
        line = getattr(node, "lineno", 0)
        if "REPRO015" in self.disables.get(line, frozenset()):
            return
        self.findings.append(
            Finding(
                self.path,
                line,
                getattr(node, "col_offset", 0),
                "REPRO015",
                f"{CONCURRENCY_RULES['REPRO015']}: {detail}",
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        if isinstance(node.value, ast.Call):
            ctor = _name_of(node.value.func)
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                if ctor in _POOL_CONSTRUCTORS:
                    self._pools.add(target.id)
                elif ctor in self.carriers:
                    self._carrier_locals[target.id] = ctor
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if (
                isinstance(item.context_expr, ast.Call)
                and _name_of(item.context_expr.func) in _POOL_CONSTRUCTORS
                and isinstance(item.optional_vars, ast.Name)
            ):
                self._pools.add(item.optional_vars.id)
        self.generic_visit(node)

    def _describe_carrier(self, cls_name: str) -> str:
        attrs = self.carriers.get(cls_name, {})
        if not attrs:
            return cls_name
        attr, ctor = sorted(attrs.items())[0]
        return f"{cls_name} (carries '.{attr}' = {ctor}(...))"

    def _check_expr(self, expr: ast.expr, call: ast.Call, role: str) -> None:
        if isinstance(expr, ast.Name):
            cls_name = self._carrier_locals.get(expr.id)
            if cls_name is not None:
                self._add(
                    call,
                    f"{role} '{expr.id}', an instance of "
                    f"{self._describe_carrier(cls_name)}",
                )
        elif isinstance(expr, ast.Attribute):
            attr = expr.attr
            base = expr.value
            if attr in self._unsafe_attrs and (
                (isinstance(base, ast.Name) and base.id == "self")
                or (isinstance(base, ast.Name) and base.id in self._carrier_locals)
            ):
                self._add(
                    call,
                    f"{role} '.{attr}' "
                    f"({self._unsafe_attrs[attr]}(...) — unpicklable)",
                )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SUBMIT_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in self._pools
            and node.args
        ):
            target = node.args[0]
            # A bound method pickles its whole self.
            if isinstance(target, ast.Attribute):
                base = target.value
                if isinstance(base, ast.Name) and base.id == "self" and (
                    self.enclosing_class in self.carriers
                ):
                    self._add(
                        node,
                        f"submits bound method 'self.{target.attr}' of "
                        + self._describe_carrier(str(self.enclosing_class)),
                    )
                elif (
                    isinstance(base, ast.Name)
                    and base.id in self._carrier_locals
                ):
                    self._add(
                        node,
                        f"submits bound method '{base.id}.{target.attr}' of "
                        + self._describe_carrier(
                            self._carrier_locals[base.id]
                        ),
                    )
            for arg in list(node.args[1:]) + [kw.value for kw in node.keywords]:
                self._check_expr(arg, node, "ships")
        self.generic_visit(node)


def _check_fork_captures(
    tree: ast.Module,
    path: Path,
    disables: Dict[int, FrozenSet[str]],
) -> List[Finding]:
    carriers = _fork_unsafe_class_attrs(tree)
    findings: List[Finding] = []

    def scan(node: ast.AST, enclosing_class: Optional[str]) -> None:
        for stmt in getattr(node, "body", []):
            if isinstance(stmt, ast.ClassDef):
                scan(stmt, stmt.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                checker = _ForkCaptureChecker(
                    path, carriers, enclosing_class, disables
                )
                for sub in stmt.body:
                    checker.visit(sub)
                findings.extend(checker.findings)
                scan(stmt, enclosing_class)

    scan(tree, None)
    return findings


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def concurrency_check_source(source: str, path: Path) -> List[Finding]:
    """Run all three concurrency rules over one module's source text."""
    tree = ast.parse(source, filename=str(path))
    disables = pragma_disables(source)
    findings: List[Finding] = []
    findings.extend(_check_shared_classes(tree, path, disables))
    findings.extend(_check_module_globals(tree, path, disables))
    async_checker = _AsyncBlockingChecker(path, disables)
    async_checker.visit(tree)
    findings.extend(async_checker.findings)
    findings.extend(_check_fork_captures(tree, path, disables))
    findings.sort(key=lambda f: (f.line, f.col, f.code))  # repro-mutate: equivalent=drop-tuple-field -- checks run in code order; stable sort keeps it
    return findings


def check_concurrency(paths: Iterable[Path]) -> Tuple[List[Finding], int]:
    """Concurrency-check files/trees; returns ``(findings, files_checked)``."""
    findings: List[Finding] = []
    checked = 0
    for path in iter_python_files(paths):
        findings.extend(
            concurrency_check_source(path.read_text(encoding="utf-8"), path)
        )
        checked += 1
    return findings, checked


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.concurrency",
        description="Concurrency-safety analyzer (REPRO013-REPRO015).",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to check")
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(CONCURRENCY_RULES):  # repro-mutate: equivalent=drop-sorted -- table is declared in code order
            print(f"{code}  {CONCURRENCY_RULES[code]}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (try 'src/')", file=sys.stderr)
        return 2
    targets = [Path(p) for p in args.paths]
    missing = [p for p in targets if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2
    try:
        findings, checked = check_concurrency(targets)
    except SyntaxError as exc:
        print(
            f"error: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
            file=sys.stderr,
        )
        return 2
    for finding in findings:
        print(finding.render())
    summary = (
        f"{len(findings)} finding(s) in {checked} file(s)"
        if findings
        else f"clean: {checked} file(s)"
    )
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
