"""Mutation-analysis engine: prove the verification stack kills bugs.

PRs 3–4 built a layered net — tier-1 tests, O(n) certificate checkers,
the NumPy-vs-python cross-check, contract/flow static passes — but
nothing measured whether that net would actually catch a regression in
Algorithm 4.1's prime-subpath sweep or the tree greedy.  This module
closes the loop: it seeds semantic faults with the domain-aware
operators of :mod:`repro.verify.operators`, runs each mutant through a
fast kill pipeline in a fork sandbox (:mod:`repro.verify.sandbox`), and
reports a kill matrix attributing every kill to the *first* layer that
caught it.

Kill pipeline order (cheapest-first, matching how a real regression
would be caught)::

    import -> test -> certificate -> cross-check -> contract

plus two pseudo-layers: ``timeout`` (non-terminating mutants — flipped
``while`` predicates — killed by the sandbox deadline) and ``crash``
(child died without a verdict).

Scoring follows the standard definition: ``killed / (killed +
survived)``, with annotated-equivalent mutants excluded from the
denominator entirely.  Survivors are triaged in the report with their
source diff and a per-layer note on why each layer passed them — the
actionable artifact: every survivor is either a missing test or a
``# repro-mutate: equivalent=`` annotation waiting to be written.

Determinism contract: site enumeration is canonical (see
:mod:`~repro.verify.operators`), sampling uses ``random.Random(seed)``,
golden observations are canonical JSON, and the report carries no
timing fields — two runs at the same seed on the same tree produce
byte-identical ``--json`` output, which is what the committed CI
baseline diffs against.
"""

from __future__ import annotations

import ast
import difflib
import importlib
import json
import os
import random
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.verify.operators import (
    MutationSite,
    apply_site,
    enumerate_sites,
    equivalent_annotations,
    site_is_annotated,
)
from repro.verify.sandbox import (
    SandboxResult,
    install_module_source,
    run_sandboxed,
    silenced_output,
)

__all__ = [
    "SCHEMA_VERSION",
    "KILL_LAYERS",
    "PACKAGE_THRESHOLDS",
    "TARGETS",
    "MutationSetupError",
    "UnknownModuleError",
    "run_mutation_analysis",
    "compare_to_baseline",
    "render_report",
]

#: Schema version of the ``repro mutate --json`` report.
SCHEMA_VERSION = 1

#: Kill-attribution layers, in pipeline order (pseudo-layers last).
KILL_LAYERS = ("import", "test", "certificate", "cross-check", "contract",
               "timeout", "crash")

#: Minimum mutation score per package — the CI gate's floor.  The
#: committed baseline ratchets above these floors; they are the
#: never-regress-below values.
PACKAGE_THRESHOLDS: Dict[str, float] = {
    "repro.core": 0.85,
    "repro.engine": 0.85,
    "repro.verify": 0.85,
}


class MutationSetupError(RuntimeError):
    """The harness itself is broken (pristine pipeline failed, etc.)."""


class UnknownModuleError(ValueError):
    """``--modules`` named a module outside the target registry."""


class MutationTarget:
    """One mutable module: its targeted tests and observation suites."""

    __slots__ = ("module", "tests", "suites")

    def __init__(
        self, module: str, tests: Tuple[str, ...], suites: Tuple[str, ...]
    ) -> None:
        self.module = module
        self.tests = tests
        self.suites = suites


#: The mutable surface: every solver module whose bugs the verification
#: stack claims to catch.  Test paths are relative to the repo root.
TARGETS: Dict[str, MutationTarget] = {
    t.module: t
    for t in (
        MutationTarget(
            "repro.core.bandwidth",
            ("tests/core/test_bandwidth.py",),
            ("chain",),
        ),
        MutationTarget(
            "repro.core.prime_subpaths",
            ("tests/core/test_prime_subpaths.py",),
            ("chain", "prime"),
        ),
        MutationTarget(
            "repro.core.temp_s",
            ("tests/core/test_temp_s.py",),
            ("chain",),
        ),
        MutationTarget(
            "repro.core.bottleneck",
            ("tests/core/test_bottleneck.py",),
            ("tree",),
        ),
        MutationTarget(
            "repro.engine.kernels",
            ("tests/engine/test_kernels.py",),
            ("chain", "prime", "engine"),
        ),
        MutationTarget(
            "repro.engine.cache",
            ("tests/engine/test_cache.py",),
            ("chain", "engine"),
        ),
        MutationTarget(
            "repro.engine.plan",
            ("tests/engine/test_plan.py",),
            ("plan",),
        ),
        MutationTarget(
            "repro.baselines.nicol",
            ("tests/baselines/test_nicol.py",),
            ("nicol",),
        ),
        MutationTarget(
            "repro.verify.concurrency",
            ("tests/verify/test_concurrency.py",),
            ("concurrency",),
        ),
        MutationTarget(
            "repro.verify.hotpath",
            ("tests/verify/test_hotpath.py",),
            ("hotpath",),
        ),
        MutationTarget(
            "repro.verify.faultflow",
            ("tests/verify/test_faultflow.py",),
            ("faultflow",),
        ),
    )
}


def _repo_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parents[2]


# ----------------------------------------------------------------------
# Canonical workloads
#
# Small, deterministic, boundary-hitting: K exactly at a prime-subpath
# weight, K exactly at the max task weight, singleton chains, all-equal
# weights, tie-broken reductions, zero-weight edges.  Bounds are chosen
# with chain-only arithmetic (prefix sums), never by calling the code
# under mutation — a mutant must not be able to move the goalposts.
# ----------------------------------------------------------------------


def _chain_cases() -> List[Tuple[str, Any, float]]:
    from repro.graphs.chain import Chain
    from repro.graphs.generators import random_chain, uniform_chain

    cases: List[Tuple[str, Any, float]] = []
    small = Chain([4, 3, 5, 2, 6], [7, 1, 9, 2])
    # K=9: primes (0..2)=12, (1..3)=10, (2..4)=13; optimal cut {1, 3}.
    cases.append(("small-k9", small, 9.0))
    # K exactly equal to the (1..3) prime weight — boundary probe.
    cases.append(("small-kprime10", small, 10.0))
    cases.append(("small-kprime12", small, 12.0))
    # K exactly the max task weight — tightest feasible bound.
    cases.append(("small-ktight", small, 6.0))
    cases.append(("small-kloose", small, 21.0))
    cases.append(("singleton", Chain([5.0], []), 5.0))
    cases.append(("singleton-loose", Chain([5.0], []), 7.5))
    uni = uniform_chain(16)
    cases.append(("uniform-k1", uni, 1.0))
    cases.append(("uniform-k3", uni, 3.0))
    cases.append(("uniform-k16", uni, 16.0))
    # Equal betas: the non-redundant reduction's strict-< tie-break
    # keeps the leftmost edge; a flipped tie-break changes the cut.
    ties = Chain([3, 3, 3, 3, 3, 3], [2, 2, 2, 2, 2])
    cases.append(("ties-k6", ties, 6.0))
    cases.append(("ties-k9", ties, 9.0))
    cases.append(("zero-edge", Chain([4, 2, 4], [0.0, 5.0]), 6.0))
    rng = random.Random(20260807)
    rand_f = random_chain(60, rng=rng)
    wmax_f = max(rand_f.alpha)
    cases.append(("rand60-k2x", rand_f, 2.0 * wmax_f))
    cases.append(("rand60-k6x", rand_f, 6.0 * wmax_f))
    rand_i = random_chain(80, rng=rng, integer_weights=True)
    wmax_i = max(rand_i.alpha)
    cases.append(("randint80-k3x", rand_i, 3.0 * wmax_i))
    # K exactly equal to a mid-chain segment weight: hits the critical-
    # window predicate's <=/> boundary on exact (integer) arithmetic.
    cases.append(("randint80-kseg", rand_i, rand_i.segment_weight(10, 14)))
    cases.append(("randint80-ktight", rand_i, float(wmax_i)))
    return cases


def _tree_cases() -> List[Tuple[str, Any, float]]:
    from repro.graphs.generators import random_star, random_tree

    cases: List[Tuple[str, Any, float]] = []
    from repro.graphs.tree import Tree

    small = Tree(
        [4.0, 3.0, 5.0, 2.0, 6.0, 1.0, 3.0],
        [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)],
        [10.0, 20.0, 30.0, 40.0, 50.0, 60.0],
    )
    for bound in (6.0, 7.0, 9.0, 12.0, 24.0):
        cases.append((f"small7-k{bound:g}", small, bound))
    star = random_star(9, rng=random.Random(7))
    wmax = max(star.vertex_weights)
    cases.append(("star9-tight", star, float(wmax)))
    cases.append(("star9-loose", star, 3.0 * wmax))
    rnd = random_tree(40, rng=random.Random(11), integer_weights=True)
    rmax = max(rnd.vertex_weights)
    for ratio in (1.0, 2.0, 4.0):
        cases.append((f"rand40-k{ratio:g}x", rnd, ratio * rmax))
    return cases


def _canon(payload: Any) -> str:
    """Canonical JSON — the comparable form of an observation suite."""
    return json.dumps(payload, sort_keys=True, indent=1)


def _strip_trace(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Span records minus wall-clock fields (determinism contract)."""
    out: List[Dict[str, Any]] = []
    for record in records:
        out.append(
            {k: v for k, v in record.items() if k not in ("start_s", "duration_s")}
        )
    return out


# ----------------------------------------------------------------------
# Observation suites
#
# Each suite returns a JSON-able payload computed through the *current*
# process's solver bindings (lazy imports, so a sandbox-installed mutant
# is what actually runs).  The parent computes the same payload on
# pristine code as the golden; the cross-check stage compares the two
# canonical JSON strings.
# ----------------------------------------------------------------------


def _result_row(result: Any) -> Dict[str, Any]:
    return {"cut": list(result.cut_indices), "weight": result.weight}


def _suite_chain() -> Any:
    from repro.core.bandwidth import bandwidth_min
    from repro.engine.kernels import HAVE_NUMPY
    from repro.observability import Tracer

    rows: List[Dict[str, Any]] = []
    for name, chain, bound in _chain_cases():
        row: Dict[str, Any] = {"case": name}
        row["binary"] = _result_row(bandwidth_min(chain, bound))
        stats_res = bandwidth_min(chain, bound, collect_stats=True)
        stats = stats_res.stats
        row["stats"] = {
            "p": stats.p,
            "r": stats.r,
            "q_values": list(stats.q_values),
            "search_steps": stats.search_steps,
            "max_temp_s_len": stats.max_temp_s_len,
            "mean_temp_s_len": stats.mean_temp_s_len,
        }
        linear = bandwidth_min(chain, bound, search="linear", collect_stats=True)
        row["linear"] = _result_row(linear)
        row["linear_search_steps"] = linear.stats.search_steps
        row["noreduce"] = _result_row(bandwidth_min(chain, bound, apply_reduction=False))
        if HAVE_NUMPY:
            row["numpy"] = _result_row(bandwidth_min(chain, bound, backend="numpy"))
        tracer = Tracer()
        bandwidth_min(chain, bound, collect_stats=True, tracer=tracer)
        row["trace"] = _strip_trace(tracer.records())
        rows.append(row)
    return rows


def _suite_prime() -> Any:
    from repro.core.prime_subpaths import (
        PrimeStructure,
        edge_membership_intervals,
        find_prime_subpaths,
        reduce_edges,
    )
    from repro.instrumentation.counters import OpCounter

    rows: List[Dict[str, Any]] = []
    for name, chain, bound in _chain_cases():
        counter = OpCounter()
        primes = find_prime_subpaths(chain, bound, counter=counter)
        lo, hi = edge_membership_intervals(primes, chain.num_tasks - 1)
        reduced = reduce_edges(chain, primes)
        unreduced = reduce_edges(chain, primes, apply_reduction=False)
        structure = PrimeStructure.compute(chain, bound)
        rows.append(
            {
                "case": name,
                "primes": [
                    [sp.first_task, sp.last_task, sp.weight] for sp in primes
                ],
                "membership": [list(lo), list(hi)],
                "reduced": [
                    [e.index, e.weight, e.first_prime, e.last_prime] for e in reduced
                ],
                "r_unreduced": len(unreduced),
                "counters": counter.as_dict(),
                "structure": {
                    "p": structure.p,
                    "r": structure.r,
                    "q_values": structure.q_values,
                    "q": structure.q,
                    "mean_prime_length": structure.mean_prime_length(),
                    "min_prime_weight": _finite(structure.min_prime_weight()),
                },
            }
        )
    return rows


def _finite(value: float) -> Any:
    return value if value != float("inf") else "inf"


def _suite_engine() -> Any:
    from repro.core.prime_subpaths import PrimeStructure
    from repro.engine.cache import PrimeStructureCache
    from repro.engine.kernels import (
        HAVE_NUMPY,
        bandwidth_sweep,
        compute_prime_structure_numpy,
        feasible_components,
        membership_intervals,
        prefix_array,
        prime_windows,
    )
    from repro.graphs.chain import Chain
    from repro.graphs.generators import random_chain
    from repro.observability import Tracer

    rows: List[Dict[str, Any]] = []
    chain = random_chain(120, rng=random.Random(20260808), integer_weights=True)
    wmax = max(chain.alpha)
    bounds = [
        float(wmax),
        1.5 * wmax,
        2.0 * wmax,
        2.0 * wmax,  # repeat: exact-hit path
        chain.segment_weight(30, 41),  # exact segment boundary
        3.0 * wmax,
        6.0 * wmax,
    ]
    cache = PrimeStructureCache()
    tracer = Tracer()
    for bound in bounds:
        result = cache.solve(chain, bound, tracer=tracer)
        rows.append({"bound": bound, **_result_row(result)})
    stats = cache.stats
    rows.append(
        {
            "cache_stats": {
                "hits": stats.hits,
                "interval_hits": stats.interval_hits,
                "misses": stats.misses,
                "evictions": stats.evictions,
            },
            "len": len(cache),
            "trace": _strip_trace(tracer.records()),
        }
    )
    # Two same-length chains must never share cache entries.
    twin_a = Chain([4, 4, 4, 4], [1, 2, 3])
    twin_b = Chain([4, 4, 4, 4], [3, 2, 1])
    twin_cache = PrimeStructureCache(max_chains=2)
    for twin in (twin_a, twin_b, twin_a):
        result = twin_cache.solve(twin, 8.0)
        rows.append({"twin": _result_row(result)})
    # Eviction pressure: 3 chains through a 2-chain cache.
    for offset in range(3):
        extra = Chain([2.0 + offset, 3.0, 2.0], [1.0, 1.0])
        twin_cache.solve(extra, 5.0 + offset)
    rows.append(
        {
            "twin_evictions": twin_cache.stats.evictions,
            "twin_len": len(twin_cache),
        }
    )
    # The sweep over a *python* PrimeStructure (non-array branch).
    structure = PrimeStructure.compute(chain, 2.0 * wmax)
    cut, weight = bandwidth_sweep(structure)
    rows.append({"py_sweep": {"cut": cut, "weight": weight}})
    if HAVE_NUMPY:
        prefix = prefix_array(chain)
        first, last = prime_windows(prefix, 2.0 * wmax)
        lo, hi = membership_intervals(first, last - 1, chain.num_tasks - 1)
        arr = compute_prime_structure_numpy(chain, 2.0 * wmax)
        np_cut, np_weight = bandwidth_sweep(arr)
        rows.append(
            {
                "kernels": {
                    "first": first.tolist(),
                    "last": last.tolist(),
                    "lo": lo.tolist(),
                    "hi": hi.tolist(),
                    "p": arr.p,
                    "r": arr.r,
                    "q_values": arr.q_values,
                    "min_prime_weight": _finite(arr.min_prime_weight()),
                    "cut": np_cut,
                    "weight": np_weight,
                    "feasible": feasible_components(prefix, np_cut, 2.0 * wmax),
                    "infeasible_probe": feasible_components(
                        prefix, np_cut[1:], 2.0 * wmax
                    ),
                }
            }
        )
    return rows


def _suite_tree() -> Any:
    from repro.core.bottleneck import bottleneck_min, bottleneck_min_naive

    rows: List[Dict[str, Any]] = []
    for name, tree, bound in _tree_cases():
        fast = bottleneck_min(tree, bound)
        naive = bottleneck_min_naive(tree, bound)
        rows.append(
            {
                "case": name,
                "fast": {
                    "cut": sorted(list(e) for e in fast.cut_edges),
                    "bottleneck": fast.bottleneck,
                    "components": sorted(tree.component_weights(fast.cut_edges)),
                },
                "naive": {
                    "cut": sorted(list(e) for e in naive.cut_edges),
                    "bottleneck": naive.bottleneck,
                },
            }
        )
    return rows


def _suite_plan() -> Any:
    from repro.engine.kernels import HAVE_NUMPY

    if not HAVE_NUMPY:  # pragma: no cover - minimal installs only
        return [{"skipped": "numpy unavailable"}]
    from repro.engine.plan import compile_chain

    rows: List[Dict[str, Any]] = []
    for name, chain, bound in _chain_cases():
        # max_structures=4 against 5+ distinct intervals exercises the
        # memo's eviction path; unsorted/duplicated bounds exercise the
        # argsort + stability-interval group walk.
        plan = compile_chain(chain, max_structures=4)
        ks = [2.0 * bound, bound, bound, 1.25 * bound, 4.0 * bound,
              3.0 * bound, bound]
        weights, cuts = plan.solve_bounds(ks, return_cuts=True)
        rows.append(
            {
                "case": name,
                "weights": weights.tolist(),
                "cuts": cuts,
                "structures": len(plan),
            }
        )
        if chain.num_edges:
            betas = [
                list(chain.beta),
                [2.0 * b for b in chain.beta],
                [0.5 * b + 1.0 for b in chain.beta],
                list(reversed(chain.beta)),
            ]
            swept = plan.solve_beta_sweep(betas, 2.0 * bound)
            rows.append({"case": name, "beta_weights": swept.tolist()})
    return rows


def _suite_nicol() -> Any:
    from repro.baselines.nicol import bandwidth_min_nlogn
    from repro.core.bandwidth import bandwidth_min

    rows: List[Dict[str, Any]] = []
    for name, chain, bound in _chain_cases():
        baseline = bandwidth_min_nlogn(chain, bound)
        reference = bandwidth_min(chain, bound)
        rows.append(
            {
                "case": name,
                "nicol": _result_row(baseline),
                "weights_agree": baseline.weight == reference.weight,
            }
        )
    return rows


#: Seeded concurrency fixtures: deterministic analyzer inputs covering
#: every REPRO013-015 code path (lock propagation, pragma escapes,
#: globals, async handles, fork carriers) plus a clean control.  The
#: observation suite runs the *mutated* analyzer over these and diffs
#: the rendered findings against the pristine golden — any mutant that
#: changes what the analyzer reports on any fixture is killed here.
_CONCURRENCY_FIXTURES: Tuple[Tuple[str, str], ...] = (
    (
        "unlocked_class.py",
        '''\
import threading

from repro.verify.markers import concurrent_entry, shared_state


@shared_state(lock="_lock")
class Cache:
    def __init__(self):
        self._lock = threading.RLock()
        self.entries = {}
        self.hits = 0

    @concurrent_entry
    def get(self, key):
        self.hits += 1
        with self._lock:
            self.entries[key] = key
        return self._helper(key)

    def _helper(self, key):
        self.entries.pop(key, None)
        return key

    @concurrent_entry
    def reset(self):
        self.entries.clear()  # repro-lint: disable=REPRO013

    def unshared(self):
        self.entries = {}
''',
    ),
    (
        "globals.py",
        '''\
from repro.verify.markers import concurrent_entry

COUNTS = {}
TOTAL = 0


@concurrent_entry
def record(name):
    global TOTAL
    TOTAL = TOTAL + 1
    COUNTS[name] = COUNTS.get(name, 0) + 1
    _spill(name)


def _spill(name):
    COUNTS.update({name: 0})


def untracked(name):
    COUNTS[name] = 0
''',
    ),
    (
        "async_blocking.py",
        '''\
import subprocess
import time


async def poll(path, pool):
    time.sleep(0.1)
    fh = open(path)
    fh.read()
    subprocess.run(["true"])
    result = pool.apply_async(len, (path,))
    result.get()  # repro-lint: disable=REPRO014

    def sync_helper():
        time.sleep(1.0)

    return sync_helper
''',
    ),
    (
        "fork_capture.py",
        '''\
from concurrent.futures import ProcessPoolExecutor
from threading import RLock


class Carrier:
    def __init__(self):
        self._lock = RLock()


class Wrapper:
    def __init__(self):
        self.z_handle = open("state.bin", "rb")
        self.inner = Carrier()

    def run(self, item):
        return item

    def fan_out(self, items):
        with ProcessPoolExecutor() as pool:
            pool.submit(self.run, items)


def ship(items):
    carrier = Carrier()
    with ProcessPoolExecutor() as pool:
        pool.submit(len, carrier)
        pool.map(len, items)
''',
    ),
    (
        "clean.py",
        '''\
import threading

from repro.verify.markers import concurrent_entry, shared_state


@shared_state(lock="_lock")
class Guarded:
    def __init__(self):
        self._lock = threading.RLock()
        self.total = 0

    @concurrent_entry
    def add(self, value):
        with self._lock:
            self.total += value
            self._note(value)

    def _note(self, value):
        self.total += value
''',
    ),
)


#: Seeded hot-path fixtures: deterministic analyzer inputs covering
#: every REPRO016-019 code path (invariant allocations with the empty
#: literal/loop-dependent exemptions, maximal-chain attribute loads
#: with the stored-path exemption, all three quadratic idioms, numpy
#: temporary chains, loop-scoped pragma suppression) plus a clean
#: control.
_HOTPATH_FIXTURES: Tuple[Tuple[str, str], ...] = (
    (
        "invariant_allocs.py",
        '''\
import numpy as np

from repro.verify.contracts import complexity


@complexity("n")
def rebuild(rows, k):
    acc = []
    total = 0.0
    for row in rows:
        weights = [k, k + 1]
        scratch = np.zeros(k)
        squares = [v * v for v in rows]
        local = [row]
        acc.append(local)
        total += scratch[0] + weights[0] + squares[0]
    return total
''',
    ),
    (
        "attr_dispatch.py",
        '''\
from repro.verify.contracts import complexity


@complexity("n")
def drain(queue, cfg, node):
    total = 0
    for item in queue.items:
        total += cfg.scale * item + cfg.scale
        node.weight = node.weight + item
    while queue.head is not None and queue.head is not queue.tail:
        queue.pop()
    return total
''',
    ),
    (
        "quadratic.py",
        '''\
from repro.verify.contracts import complexity


@complexity("n")
def churn(items, blocked):
    order = []
    label = ""
    for item in items:
        order.insert(0, item)
        if item in [1, 2, 3]:
            continue
        label += "x"
    return order, label, blocked
''',
    ),
    (
        "numpy_temps.py",
        '''\
import numpy as np

from repro.verify.contracts import complexity


@complexity("n * q")
def sweep(bounds, weights):
    gaps = np.asarray(weights)
    out = []
    for bound in bounds:
        slack = gaps - bound + gaps * 2.0
        out.append(float(slack.sum()))
    return out
''',
    ),
    (
        "pragma_scoped.py",
        '''\
from repro.verify.contracts import complexity


@complexity("n")
def padded(rows, k):
    total = 0
    for row in rows:  # repro-lint: disable=REPRO016
        pad = [k, k]
        for _ in row:
            tail = [k]
            total += pad[0] + tail[0]
    for row in rows:
        again = [k, k]
        total += again[0] + row
    return total
''',
    ),
    (
        "clean.py",
        '''\
from repro.verify.contracts import complexity


@complexity("n")
def tally(rows, k):
    base = [k, k + 1]
    total = 0
    for row in rows:
        total += base[0] * row
    return total
''',
    ),
)


def _suite_hotpath() -> Any:
    from repro.verify import hotpath as hp

    # Same trick as the concurrency suite: the rule/constant tables ARE
    # behavior — snapshot them so a mutant that drops a numpy allocator
    # or nudges a threshold diffs even without a matching fixture.
    rows: List[Dict[str, Any]] = [
        {"rules": dict(sorted(hp.HOTPATH_RULES.items()))},
        {
            "tables": {
                "loop_scoped": sorted(hp.LOOP_SCOPED_RULES),
                "scoped_packages": sorted(hp._SCOPED_PACKAGES),
                "numpy_aliases": sorted(hp._NUMPY_ALIASES),
                "numpy_allocators": sorted(hp._NUMPY_ALLOCATORS),
                "numpy_elementwise": sorted(hp._NUMPY_ELEMENTWISE),
                "loop_nodes": sorted(n.__name__ for n in hp._LOOP_NODES),
                "func_nodes": sorted(n.__name__ for n in hp._FUNC_NODES),
                "binop_temp_ops": sorted(
                    op.__name__ for op in hp._BINOP_TEMP_OPS
                ),
                "attr_load_threshold": hp._ATTR_LOAD_THRESHOLD,
                "temp_chain_threshold": hp._TEMP_CHAIN_THRESHOLD,
            }
        },
    ]
    for name, source in _HOTPATH_FIXTURES:
        findings = hp.hotpath_check_source(source, Path(name))
        rows.append(
            {"fixture": name, "findings": [f.render() for f in findings]}
        )
    return rows


def _suite_concurrency() -> Any:
    from repro.verify import concurrency as conc

    # The rule tables ARE the analyzer's behavior: record them verbatim
    # so a mutant that silently drops a constructor/method/call from
    # any table diffs against the golden even when no fixture happens
    # to exercise that exact name.
    rows: List[Dict[str, Any]] = [
        {"rules": dict(sorted(conc.CONCURRENCY_RULES.items()))},
        {
            "tables": {
                "fork_unsafe": sorted(conc._FORK_UNSAFE_CONSTRUCTORS),
                "pools": sorted(conc._POOL_CONSTRUCTORS),
                "submit": sorted(conc._SUBMIT_METHODS),
                "blocking_module": sorted(
                    list(pair) for pair in conc._BLOCKING_MODULE_CALLS
                ),
                "blocking_names": sorted(conc._BLOCKING_NAME_CALLS),
                "handle_methods": sorted(conc._BLOCKING_HANDLE_METHODS),
                "handle_sources": sorted(conc._BLOCKING_HANDLE_SOURCES),
                "mutators": sorted(conc._MUTATOR_METHODS),
                "construction": sorted(conc._CONSTRUCTION_METHODS),
            }
        },
    ]
    for name, source in _CONCURRENCY_FIXTURES:
        findings = conc.concurrency_check_source(source, Path(name))
        rows.append(
            {"fixture": name, "findings": [f.render() for f in findings]}
        )
    return rows


#: Fault-surface fixtures: seeded violations for every REPRO020-024
#: rule plus safe twins, so a mutated check diffs immediately.  The
#: exit-code fixture is *named* ``cli.py`` on purpose — REPRO022 only
#: applies to the CLI entry files.
_FAULTFLOW_FIXTURES: Tuple[Tuple[str, str], ...] = (
    (
        "leaky_resources.py",
        '''\
import threading


def load(path):
    fh = open(path)
    data = fh.read()
    fh.close()
    return data


def fan_out(jobs, process):
    return process(open(jobs))


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self, amount):
        self._lock.acquire()
        self.value += compute(amount)
        self._lock.release()

    def safe_bump(self, amount):
        self._lock.acquire()
        try:
            self.value += compute(amount)
        finally:
            self._lock.release()


def stream(path):
    with open(path) as fh:
        return fh.read()


def opener(path):
    return open(path)
''',
    ),
    (
        "broad_except.py",
        '''\
def run(job, log):
    try:
        return job()
    except:
        log.warning("bare")


def guard(job, log):
    try:
        return job()
    except Exception:
        log.warning("broad")


def multi(job, log):
    try:
        return job()
    except (ValueError, BaseException):
        log.warning("tuple")


def reraise(job, log):
    try:
        return job()
    except Exception:
        log.warning("noted")
        raise


def typed(job, log):
    try:
        return job()
    except ValueError:
        log.warning("typed")
''',
    ),
    (
        "cli.py",
        '''\
import sys

from repro.exitcodes import EXIT_CODES, EXIT_FAILURE, EXIT_OK


def _cmd_run(args):
    if args.bad:
        raise SystemExit(2)
    return 0 if args.ok else 1


def _cmd_safe(args):
    if args.bad:
        raise SystemExit(EXIT_CODES["USAGE"])
    return EXIT_OK if args.ok else EXIT_FAILURE


def main(argv=None):
    if argv is None:
        sys.exit(1)
    return EXIT_OK


sys.exit(main())
''',
    ),
    (
        "tainted.py",
        '''\
import os
import random
import time
from datetime import datetime

from repro.verify.contracts import complexity


def jitter():
    return random.random()


@complexity("n")
def solve(chain, emit):
    started = time.time()
    mode = os.environ.get("MODE", "fast")
    stamp = datetime.now()
    for key in {1, 2, 3}:
        emit(key)
    return jitter(), started, mode, stamp


@complexity("n")
def seeded(chain, seed, tz, emit):
    rng = random.Random(seed)
    for key in sorted({1, 2}):
        emit(key)
    return rng.random(), datetime.now(tz)


def free(chain):
    return random.random()
''',
    ),
    (
        "silent_drop.py",
        '''\
def run(job):
    try:
        return job()
    except ValueError:
        pass


def note(job):
    try:
        return job()
    except ValueError:
        result = None


def report(job, log):
    try:
        return job()
    except ValueError:
        log.warning("failed")
        return None


try:
    import numpy
except ImportError:
    numpy = None
''',
    ),
    (
        "pragma_scoped.py",
        '''\
def load(path):
    fh = open(path)  # repro-lint: disable=REPRO020 handed to a finalizer
    data = fh.read()
    fh.close()
    return data


def swallow(job):
    try:
        return job()
    except Exception:  # repro-lint: disable=REPRO021 isolation boundary
        pass
''',
    ),
    (
        "clean.py",
        '''\
def load(path):
    with open(path) as fh:
        return fh.read()


def run(job, log):
    try:
        return job()
    except ValueError:
        log.warning("failed")
        return None
''',
    ),
)


def _suite_faultflow() -> Any:
    from repro.verify import faultflow as ff

    # Rule/constant tables ARE behavior (same trick as the hotpath and
    # concurrency suites): a mutant that drops a resource constructor,
    # a reporting verb or an exit-file name diffs even without a
    # fixture naming it.
    rows: List[Dict[str, Any]] = [
        {"rules": dict(sorted(ff.FAULTFLOW_RULES.items()))},
        {
            "tables": {
                "scoped_packages": sorted(ff._SCOPED_PACKAGES),
                "exit_files": sorted(ff._EXIT_FILES),
                "exit_func_prefixes": sorted(ff._EXIT_FUNC_PREFIXES),
                "resource_constructors": sorted(ff._RESOURCE_CONSTRUCTORS),
                "acquire_methods": sorted(ff._ACQUIRE_METHODS),
                "release_methods": sorted(ff._RELEASE_METHODS),
                "broad_exceptions": sorted(ff._BROAD_EXCEPTIONS),
                "import_fallbacks": sorted(ff._IMPORT_FALLBACK_EXCEPTIONS),
                "reporting_calls": sorted(ff._REPORTING_CALLS),
                "seeded_random": sorted(ff._SEEDED_RANDOM_EXEMPT),
                "seeded_np_random": sorted(ff._SEEDED_NP_RANDOM_EXEMPT),
                "numpy_aliases": sorted(ff._NUMPY_ALIASES),
                "wallclock_time": sorted(ff._WALLCLOCK_TIME_CALLS),
                "wallclock_datetime": sorted(ff._WALLCLOCK_DATETIME_CALLS),
            }
        },
    ]
    for name, source in _FAULTFLOW_FIXTURES:
        findings = ff.faultflow_check_source(source, Path(name))
        rows.append(
            {"fixture": name, "findings": [f.render() for f in findings]}
        )
    return rows


_SUITES: Dict[str, Callable[[], Any]] = {
    "chain": _suite_chain,
    "prime": _suite_prime,
    "engine": _suite_engine,
    "plan": _suite_plan,
    "tree": _suite_tree,
    "nicol": _suite_nicol,
    "concurrency": _suite_concurrency,
    "hotpath": _suite_hotpath,
    "faultflow": _suite_faultflow,
}


# ----------------------------------------------------------------------
# Certificate stage
# ----------------------------------------------------------------------


def _certify_chain() -> None:
    from repro.core.bandwidth import bandwidth_min
    from repro.engine.kernels import HAVE_NUMPY
    from repro.verify.runtime import verify_chain_result

    for _name, chain, bound in _chain_cases():
        result = bandwidth_min(chain, bound)
        verify_chain_result(
            chain, result.cut_indices, bound, result.weight, optimal_bandwidth=True
        )
        if HAVE_NUMPY:
            np_result = bandwidth_min(chain, bound, backend="numpy")
            verify_chain_result(
                chain, np_result.cut_indices, bound, np_result.weight,
                optimal_bandwidth=True,
            )


def _certify_prime() -> None:
    from repro.core.prime_subpaths import find_prime_subpaths
    from repro.verify.certificates import check_prime_cover

    for _name, chain, bound in _chain_cases():
        find_prime_subpaths(chain, bound)
        # A feasible empty cut exists iff total weight fits the bound;
        # the certificate exercises the prime-cover invariants directly.
        if chain.total_weight() <= bound:
            check_prime_cover(chain, [], bound).raise_if_failed()


def _certify_engine() -> None:
    from repro.engine.cache import PrimeStructureCache
    from repro.graphs.generators import random_chain
    from repro.verify.runtime import verify_cache_solve

    chain = random_chain(120, rng=random.Random(20260808), integer_weights=True)
    wmax = max(chain.alpha)
    cache = PrimeStructureCache()
    for bound in (float(wmax), 2.0 * wmax, 2.0 * wmax, 5.0 * wmax):
        result = cache.solve(chain, bound)
        verify_cache_solve(chain, bound, result)


def _certify_plan() -> None:
    from repro.engine.kernels import HAVE_NUMPY

    if not HAVE_NUMPY:  # pragma: no cover - minimal installs only
        return
    from repro.core.bandwidth import ChainCutResult, bandwidth_min
    from repro.engine.plan import compile_chain
    from repro.graphs.chain import Chain
    from repro.verify.runtime import verify_cache_solve

    for _name, chain, bound in _chain_cases():
        plan = compile_chain(chain)
        ks = [bound, 1.5 * bound, bound]
        weights, cuts = plan.solve_bounds(ks, return_cuts=True)
        for k, weight, cut in zip(ks, weights, cuts):
            verify_cache_solve(
                chain, float(k), ChainCutResult(chain, list(cut), float(weight))
            )
        if chain.num_edges:
            betas = [list(chain.beta), [3.0 * b for b in chain.beta]]
            swept = plan.solve_beta_sweep(betas, 2.0 * bound)
            for row, claimed in zip(betas, swept):
                reference = bandwidth_min(Chain(chain.alpha, row), 2.0 * bound)
                if float(claimed) != reference.weight:
                    raise AssertionError(
                        f"beta-sweep weight {claimed!r} diverged from the "
                        f"scalar reference {reference.weight!r}"
                    )


def _certify_tree() -> None:
    from repro.core.bottleneck import bottleneck_min
    from repro.verify.certificates import check_tree_cut

    for _name, tree, bound in _tree_cases():
        result = bottleneck_min(tree, bound)
        check_tree_cut(
            tree, result.cut_edges, bound, claimed_bottleneck=result.bottleneck
        ).raise_if_failed()


def _certify_nicol() -> None:
    from repro.baselines.nicol import bandwidth_min_nlogn
    from repro.verify.runtime import verify_chain_result

    for _name, chain, bound in _chain_cases():
        result = bandwidth_min_nlogn(chain, bound)
        verify_chain_result(chain, result.cut_indices, bound, result.weight)


def _certify_concurrency() -> None:
    """The analyzer must report exactly the seeded violations.

    Stronger than the golden diff: the expectations are hard-coded
    here, not derived from the pristine module, so a mutant that
    somehow survives into the golden snapshot still fails this stage.
    """
    from collections import Counter

    from repro.verify.concurrency import concurrency_check_source

    expected: Dict[str, Dict[str, int]] = {
        "unlocked_class.py": {"REPRO013": 2},
        "globals.py": {"REPRO013": 3},
        "async_blocking.py": {"REPRO014": 4},
        "fork_capture.py": {"REPRO015": 2},
        "clean.py": {},
    }
    for name, source in _CONCURRENCY_FIXTURES:
        findings = concurrency_check_source(source, Path(name))
        got = dict(Counter(f.code for f in findings))
        if got != expected[name]:
            raise AssertionError(
                f"concurrency analyzer on fixture {name!r}: expected "
                f"{expected[name]!r}, got {got!r} "
                f"({[f.render() for f in findings]})"
            )


def _certify_hotpath() -> None:
    """The analyzer must report exactly the seeded violations.

    Mirrors ``_certify_concurrency``: expectations are hard-coded, not
    derived from the pristine module, so a mutant that survives into
    the golden snapshot still fails this stage.
    """
    from collections import Counter

    from repro.verify.hotpath import hotpath_check_source

    expected: Dict[str, Dict[str, int]] = {
        "invariant_allocs.py": {"REPRO016": 3, "REPRO019": 1},
        "attr_dispatch.py": {"REPRO017": 2},
        "quadratic.py": {"REPRO018": 3},
        "numpy_temps.py": {"REPRO019": 1},
        "pragma_scoped.py": {"REPRO016": 1},
        "clean.py": {},
    }
    for name, source in _HOTPATH_FIXTURES:
        findings = hotpath_check_source(source, Path(name))
        got = dict(Counter(f.code for f in findings))
        if got != expected[name]:
            raise AssertionError(
                f"hotpath analyzer on fixture {name!r}: expected "
                f"{expected[name]!r}, got {got!r} "
                f"({[f.render() for f in findings]})"
            )


def _certify_faultflow() -> None:
    """The analyzer must report exactly the seeded violations.

    Mirrors ``_certify_concurrency``: expectations are hard-coded, not
    derived from the pristine module, so a mutant that survives into
    the golden snapshot still fails this stage.
    """
    from collections import Counter

    from repro.verify.faultflow import faultflow_check_source

    expected: Dict[str, Dict[str, int]] = {
        "leaky_resources.py": {"REPRO020": 3},
        "broad_except.py": {"REPRO021": 3},
        "cli.py": {"REPRO022": 4},
        "tainted.py": {"REPRO023": 5},
        "silent_drop.py": {"REPRO024": 2},
        "pragma_scoped.py": {"REPRO024": 1},
        "clean.py": {},
    }
    for name, source in _FAULTFLOW_FIXTURES:
        findings = faultflow_check_source(source, Path(name))
        got = dict(Counter(f.code for f in findings))
        if got != expected[name]:
            raise AssertionError(
                f"faultflow analyzer on fixture {name!r}: expected "
                f"{expected[name]!r}, got {got!r} "
                f"({[f.render() for f in findings]})"
            )


_CERTIFIERS: Dict[str, Callable[[], None]] = {
    "chain": _certify_chain,
    "prime": _certify_prime,
    "engine": _certify_engine,
    "plan": _certify_plan,
    "tree": _certify_tree,
    "nicol": _certify_nicol,
    "concurrency": _certify_concurrency,
    "hotpath": _certify_hotpath,
    "faultflow": _certify_faultflow,
}


# ----------------------------------------------------------------------
# Contract stage
# ----------------------------------------------------------------------


def _static_findings(source: str, path: Path) -> List[str]:
    """Lint + contract + flow findings, line numbers stripped.

    Comments (and hence ``# repro-lint:`` pragmas) do not survive
    ``ast.unparse``, so absolute findings on a mutant rendering would be
    meaningless; the pipeline diffs these lists between the *unparsed
    pristine* and *unparsed mutant* sources instead, making pragma loss
    cancel out.
    """
    from repro.verify.contracts import check_contracts_source
    from repro.verify.flow import flow_check_source
    from repro.verify.lint import lint_source

    findings: List[str] = []
    for finding in lint_source(source, path):
        findings.append(f"{finding.code}: {finding.message}")
    for finding in check_contracts_source(source, path):
        findings.append(f"{finding.code}: {finding.message}")
    for finding in flow_check_source(source, path):
        findings.append(f"{finding.code}: {finding.message}")
    return sorted(findings)


def _growth_probe() -> Optional[str]:
    """REPRO009-style spot check: op counts must stay near-linear.

    Catches correct-but-superlinear mutants (e.g. a window floor that
    forces the sweep to rescan) that produce right answers too slowly
    to notice on the tiny certificate workloads.
    """
    from repro.core.bandwidth import bandwidth_stats
    from repro.graphs.generators import random_chain

    ops: List[int] = []
    for n in (256, 1024):
        chain = random_chain(n, rng=random.Random(97 + n))
        stats = bandwidth_stats(chain, 3.0 * max(chain.alpha))
        ops.append(stats.search_steps + stats.p + stats.r + n)
    ratio = ops[1] / max(ops[0], 1)
    if ratio > 12.0:
        return (
            f"op-count growth ratio {ratio:.1f} over a 4x size increase "
            f"exceeds the near-linear budget (op counts {ops[0]} -> {ops[1]})"
        )
    return None


# ----------------------------------------------------------------------
# The kill pipeline (runs inside the sandbox child)
# ----------------------------------------------------------------------


class PipelineSpec:
    """Everything the sandboxed child needs — plain data, picklable."""

    __slots__ = (
        "module",
        "source",
        "tests",
        "suites",
        "golden",
        "pristine_findings",
        "findings_path",
    )

    def __init__(
        self,
        module: str,
        source: str,
        tests: Tuple[str, ...],
        suites: Tuple[str, ...],
        golden: Dict[str, str],
        pristine_findings: List[str],
        findings_path: str,
    ) -> None:
        self.module = module
        self.source = source
        self.tests = tests
        self.suites = suites
        self.golden = golden
        self.pristine_findings = pristine_findings
        self.findings_path = findings_path


def _killed(
    layer: str, detail: str, stages: List[Dict[str, str]]
) -> Dict[str, Any]:
    return {"status": "killed", "layer": layer, "detail": detail, "stages": stages}


def _first_difference(expected: str, actual: str) -> str:
    for exp_line, act_line in zip(expected.splitlines(), actual.splitlines()):
        if exp_line != act_line:
            return f"expected {exp_line.strip()!r}, got {act_line.strip()!r}"
    return (
        f"observation payloads differ in length "
        f"({len(expected)} vs {len(actual)} chars)"
    )


def _describe(exc: BaseException) -> str:
    text = f"{type(exc).__name__}: {exc}"
    return text if len(text) <= 300 else text[:297] + "..."


def pipeline_entry(spec: PipelineSpec) -> Dict[str, Any]:
    """Run the staged kill pipeline; the sandbox child's target.

    Returns the verdict dict.  Only ever call this in a sandbox child:
    it installs the spec's (possibly mutated) source into the live
    module graph.
    """
    os.environ.pop("REPRO_VERIFY", None)  # certificates run explicitly
    stages: List[Dict[str, str]] = []
    try:
        install_module_source(spec.module, spec.source)
    except BaseException as exc:  # noqa: BLE001 - verdict, not control flow
        return _killed("import", _describe(exc), stages)
    stages.append({"layer": "import", "note": "module compiled and installed"})

    if spec.tests:
        import pytest

        rc = int(
            pytest.main(
                [*spec.tests, "-x", "-q", "--no-header", "-p", "no:cacheprovider"]
            )
        )
        if rc == 5:
            stages.append({"layer": "test", "note": "no tests collected (skipped)"})
        elif rc != 0:
            return _killed(
                "test",
                f"targeted pytest subset failed (exit {rc}): {', '.join(spec.tests)}",
                stages,
            )
        else:
            stages.append(
                {"layer": "test", "note": f"passed: {', '.join(spec.tests)}"}
            )

    try:
        for suite in spec.suites:
            _CERTIFIERS[suite]()
    except BaseException as exc:  # noqa: BLE001 - verdict, not control flow
        return _killed("certificate", _describe(exc), stages)
    stages.append(
        {
            "layer": "certificate",
            "note": f"all paper-invariant certificates held ({', '.join(spec.suites)})",
        }
    )

    for suite in spec.suites:
        try:
            actual = _canon(_SUITES[suite]())
        except BaseException as exc:  # noqa: BLE001 - verdict, not control flow
            return _killed("cross-check", f"[{suite}] {_describe(exc)}", stages)
        if actual != spec.golden[suite]:
            return _killed(
                "cross-check",
                f"[{suite}] observations diverged from golden: "
                + _first_difference(spec.golden[suite], actual),
                stages,
            )
    stages.append(
        {
            "layer": "cross-check",
            "note": "observations matched golden bit-for-bit "
            f"({', '.join(spec.suites)})",
        }
    )

    try:
        findings = _static_findings(spec.source, Path(spec.findings_path))
        fresh = _multiset_minus(findings, spec.pristine_findings)
        if fresh:
            return _killed("contract", f"new static finding: {fresh[0]}", stages)
        if "chain" in spec.suites:
            excess = _growth_probe()
            if excess is not None:
                return _killed("contract", excess, stages)
    except BaseException as exc:  # noqa: BLE001 - verdict, not control flow
        return _killed("contract", _describe(exc), stages)
    stages.append(
        {"layer": "contract", "note": "no new static findings; op growth near-linear"}
    )
    return {"status": "survived", "stages": stages}


def _multiset_minus(left: Sequence[str], right: Sequence[str]) -> List[str]:
    remaining = list(right)
    out: List[str] = []
    for item in left:
        try:
            remaining.remove(item)
        except ValueError:
            out.append(item)
    return out


# ----------------------------------------------------------------------
# Orchestration (parent process)
# ----------------------------------------------------------------------


def _warm_test_layer(test_paths: Sequence[str]) -> None:
    """Run the targeted tests once in the parent.

    Two jobs: verify the pristine subset is green (a red baseline would
    mark every mutant killed), and warm the imports that forked sandbox
    children inherit copy-on-write — the difference between ~0.2 s and
    ~2 s per mutant.
    """
    if not test_paths:
        return
    import pytest

    with silenced_output():
        rc = int(
            pytest.main(
                [*test_paths, "-x", "-q", "--no-header", "-p", "no:cacheprovider"]
            )
        )
    if rc not in (0, 5):
        raise MutationSetupError(
            f"pristine targeted tests failed (pytest exit {rc}) — refusing to "
            f"run mutation analysis on a red baseline: {', '.join(test_paths)}"
        )


def _module_source_path(module_name: str) -> Path:
    module = importlib.import_module(module_name)
    module_file = getattr(module, "__file__", None)
    if module_file is None:
        raise MutationSetupError(f"module {module_name} has no source file")
    return Path(module_file).resolve()


def _relative_to_root(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def run_mutation_analysis(
    modules: Optional[Sequence[str]] = None,
    budget: Optional[int] = None,
    seed: int = 0,
    test_layer: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run mutation analysis and return the versioned report dict.

    ``modules`` defaults to the full target registry; ``budget`` caps
    the total number of mutants via deterministic seeded sampling;
    ``test_layer=False`` drops the targeted-pytest stage (used by the
    engine's own fast tests).  ``progress`` receives human-oriented
    status lines (the CLI points it at stderr so ``--json`` stays
    machine-clean).
    """
    say = progress if progress is not None else (lambda _message: None)
    selected = list(modules) if modules else sorted(TARGETS)
    unknown = [m for m in selected if m not in TARGETS]
    if unknown:
        raise UnknownModuleError(
            f"unknown mutation target(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(TARGETS))})"
        )

    root = _repo_root()
    per_module: Dict[str, Dict[str, Any]] = {}
    pool: List[Tuple[str, MutationSite]] = []
    sources: Dict[str, str] = {}
    trees: Dict[str, ast.Module] = {}
    for name in selected:
        source_path = _module_source_path(name)
        source = source_path.read_text()
        tree = ast.parse(source)
        sources[name] = source
        trees[name] = tree
        sites = enumerate_sites(tree)
        annotations = equivalent_annotations(source)
        annotated = [s for s in sites if site_is_annotated(s, annotations)]
        open_sites = [s for s in sites if not site_is_annotated(s, annotations)]
        per_module[name] = {
            "file": _relative_to_root(source_path, root),
            "sites": len(sites),
            "annotated": len(annotated),
            "annotations": [
                {
                    "id": f"{name}::{s.operator}#{s.index}",
                    "operator": s.operator,
                    "line": s.lineno,
                    "description": s.description,
                }
                for s in annotated
            ],
            "sampled": 0,
            "killed": 0,
            "survived": 0,
            "kills_by_layer": {layer: 0 for layer in KILL_LAYERS},
            "mutants": [],
        }
        pool.extend((name, site) for site in open_sites)

    if budget is not None and 0 <= budget < len(pool):
        rng = random.Random(seed)
        chosen = rng.sample(range(len(pool)), budget)
        pool = [pool[i] for i in sorted(chosen)]
    for name, _site in pool:
        per_module[name]["sampled"] += 1

    active = [name for name in selected if per_module[name]["sampled"] > 0]
    say(
        f"mutate: {len(pool)} mutants across {len(active)} modules "
        f"(seed={seed}, budget={'all' if budget is None else budget})"
    )

    saved_verify = os.environ.pop("REPRO_VERIFY", None)
    try:
        if test_layer and active:
            test_union: List[str] = []
            for name in active:
                for rel in TARGETS[name].tests:
                    candidate = root / rel
                    if candidate.exists() and str(candidate) not in test_union:
                        test_union.append(str(candidate))
            say(f"mutate: warming {len(test_union)} targeted test files")
            _warm_test_layer(test_union)

        golden: Dict[str, str] = {}
        needed_suites: List[str] = []
        for name in active:
            for suite in TARGETS[name].suites:
                if suite not in needed_suites:
                    needed_suites.append(suite)
        for suite in needed_suites:
            say(f"mutate: computing golden observations [{suite}]")
            golden[suite] = _canon(_SUITES[suite]())

        specs: Dict[str, PipelineSpec] = {}
        timeouts: Dict[str, float] = {}
        renderings: Dict[str, str] = {}
        for name in active:
            target = TARGETS[name]
            tests: Tuple[str, ...] = ()
            if test_layer:
                tests = tuple(
                    str(root / rel) for rel in target.tests if (root / rel).exists()
                )
            pristine_rendering = ast.unparse(trees[name])
            renderings[name] = pristine_rendering
            spec = PipelineSpec(
                module=name,
                source=sources[name],
                tests=tests,
                suites=target.suites,
                golden={suite: golden[suite] for suite in target.suites},
                pristine_findings=_static_findings(
                    pristine_rendering, Path(per_module[name]["file"])
                ),
                findings_path=per_module[name]["file"],
            )
            started = time.perf_counter()
            sanity = run_sandboxed(pipeline_entry, (spec,), timeout_s=600.0)
            elapsed = time.perf_counter() - started
            if sanity.status != "ok" or sanity.value.get("status") != "survived":
                raise MutationSetupError(
                    f"pristine pipeline for {name} did not survive its own kill "
                    f"pipeline ({sanity.status}: {sanity.value!r}) — the harness "
                    "is unstable, aborting"
                )
            specs[name] = spec
            timeouts[name] = max(30.0, 8.0 * elapsed)
            say(f"mutate: {name} pipeline sane ({elapsed:.2f}s pristine)")

        for position, (name, site) in enumerate(pool, start=1):
            spec = specs[name]
            mutant_tree = apply_site(trees[name], site)
            mutant_rendering = ast.unparse(mutant_tree)
            mutant_spec = PipelineSpec(
                module=name,
                source=mutant_rendering,
                tests=spec.tests,
                suites=spec.suites,
                golden=spec.golden,
                pristine_findings=spec.pristine_findings,
                findings_path=spec.findings_path,
            )
            outcome = run_sandboxed(
                pipeline_entry, (mutant_spec,), timeout_s=timeouts[name]
            )
            record: Dict[str, Any] = {
                "id": f"{name}::{site.operator}#{site.index}",
                "operator": site.operator,
                "index": site.index,
                "line": site.lineno,
                "col": site.col_offset,
                "description": site.description,
            }
            if outcome.status == "timeout":
                record.update(
                    status="killed", layer="timeout",
                    detail="mutant did not terminate within the sandbox deadline",
                )
            elif outcome.status == "crashed":
                record.update(
                    status="killed", layer="crash",
                    detail=f"sandbox child died: {outcome.value}",
                )
            else:
                verdict = outcome.value
                if verdict["status"] == "killed":
                    record.update(
                        status="killed",
                        layer=verdict["layer"],
                        detail=verdict["detail"],
                    )
                else:
                    record.update(
                        status="survived",
                        layer=None,
                        detail="every layer passed this mutant",
                        layers_passed=verdict["stages"],
                        diff=_source_diff(renderings[name], mutant_rendering),
                    )
            stats = per_module[name]
            stats["mutants"].append(record)
            if record["status"] == "killed":
                stats["killed"] += 1
                stats["kills_by_layer"][record["layer"]] += 1
            else:
                stats["survived"] += 1
            say(
                f"mutate: [{position}/{len(pool)}] {record['id']} "
                f"{record['status']}"
                + (f" ({record['layer']})" if record["status"] == "killed" else "")
            )
    finally:
        if saved_verify is not None:
            os.environ["REPRO_VERIFY"] = saved_verify

    report = _assemble_report(selected, per_module, seed, budget, test_layer)
    return report


def _source_diff(pristine: str, mutant: str, limit: int = 40) -> List[str]:
    diff = list(
        difflib.unified_diff(
            pristine.splitlines(),
            mutant.splitlines(),
            fromfile="pristine",
            tofile="mutant",
            lineterm="",
            n=2,
        )
    )
    if len(diff) > limit:
        diff = diff[:limit] + [f"... ({len(diff) - limit} more diff lines)"]
    return diff


def _package_of(module_name: str) -> str:
    parts = module_name.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else module_name


def _score(killed: int, survived: int) -> float:
    considered = killed + survived
    return round(killed / considered, 4) if considered else 1.0


def _assemble_report(
    selected: List[str],
    per_module: Dict[str, Dict[str, Any]],
    seed: int,
    budget: Optional[int],
    test_layer: bool,
) -> Dict[str, Any]:
    totals = {"sites": 0, "annotated": 0, "sampled": 0, "killed": 0, "survived": 0}
    matrix = {layer: 0 for layer in KILL_LAYERS}
    packages: Dict[str, Dict[str, Any]] = {}
    for name in selected:
        stats = per_module[name]
        stats["score"] = _score(stats["killed"], stats["survived"])
        for key in totals:
            totals[key] += stats[key]
        for layer in KILL_LAYERS:
            matrix[layer] += stats["kills_by_layer"][layer]
        package = _package_of(name)
        bucket = packages.setdefault(
            package,
            {"modules": [], "sampled": 0, "killed": 0, "survived": 0},
        )
        bucket["modules"].append(name)
        bucket["sampled"] += stats["sampled"]
        bucket["killed"] += stats["killed"]
        bucket["survived"] += stats["survived"]

    failures: List[str] = []
    for package, bucket in sorted(packages.items()):
        bucket["score"] = _score(bucket["killed"], bucket["survived"])
        threshold = PACKAGE_THRESHOLDS.get(package)
        bucket["threshold"] = threshold
        if threshold is not None and bucket["sampled"] > 0:
            bucket["passed"] = bucket["score"] >= threshold
            if not bucket["passed"]:
                failures.append(
                    f"package {package} mutation score {bucket['score']:.2f} "
                    f"below threshold {threshold:.2f}"
                )
        else:
            bucket["passed"] = True

    return {
        "version": SCHEMA_VERSION,
        "seed": seed,
        "budget": budget,
        "test_layer": test_layer,
        "modules": {name: per_module[name] for name in selected},
        "packages": packages,
        "totals": {**totals, "score": _score(totals["killed"], totals["survived"])},
        "kills_by_layer": matrix,
        "failures": failures,
        "passed": not failures,
    }


# ----------------------------------------------------------------------
# Baseline gate and rendering
# ----------------------------------------------------------------------


def compare_to_baseline(
    report: Dict[str, Any], baseline: Dict[str, Any]
) -> List[str]:
    """Regression check against a committed earlier report.

    Per-package scores (for packages present in both runs) must not
    drop, and neither may the overall score when every baseline package
    was re-measured.  Returns failure messages; the caller folds them
    into the report and the exit code.
    """
    failures: List[str] = []
    epsilon = 1e-9
    current = report.get("packages", {})
    compared_all = True
    for package, old in baseline.get("packages", {}).items():
        new = current.get(package)
        if new is None or new.get("sampled", 0) == 0:
            compared_all = False
            continue
        if new["score"] < old["score"] - epsilon:
            failures.append(
                f"package {package} mutation score regressed: "
                f"{new['score']:.4f} < baseline {old['score']:.4f}"
            )
    if compared_all:
        old_total = baseline.get("totals", {}).get("score")
        new_total = report.get("totals", {}).get("score")
        if old_total is not None and new_total is not None:
            if new_total < old_total - epsilon:
                failures.append(
                    f"overall mutation score regressed: "
                    f"{new_total:.4f} < baseline {old_total:.4f}"
                )
    return failures


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable report: summary, kill matrix, survivor triage."""
    lines: List[str] = []
    header = (
        f"{'module':<28} {'sites':>5} {'samp':>5} {'kill':>5} "
        f"{'surv':>5} {'annot':>5} {'score':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, stats in report["modules"].items():
        lines.append(
            f"{name:<28} {stats['sites']:>5} {stats['sampled']:>5} "
            f"{stats['killed']:>5} {stats['survived']:>5} "
            f"{stats['annotated']:>5} {stats['score']:>6.2f}"
        )
    totals = report["totals"]
    lines.append(
        f"{'TOTAL':<28} {totals['sites']:>5} {totals['sampled']:>5} "
        f"{totals['killed']:>5} {totals['survived']:>5} "
        f"{totals['annotated']:>5} {totals['score']:>6.2f}"
    )

    lines.append("")
    lines.append("kill matrix (kills attributed to the first catching layer):")
    matrix_header = "  " + "".join(f"{layer:>12}" for layer in KILL_LAYERS)
    lines.append(matrix_header)
    for name, stats in report["modules"].items():
        row = "".join(
            f"{stats['kills_by_layer'][layer]:>12}" for layer in KILL_LAYERS
        )
        lines.append(f"  {row}  {name}")

    lines.append("")
    for package, bucket in sorted(report["packages"].items()):
        threshold = bucket.get("threshold")
        gate = (
            f" (threshold {threshold:.2f}: "
            f"{'ok' if bucket['passed'] else 'FAIL'})"
            if threshold is not None
            else ""
        )
        lines.append(
            f"package {package}: score {bucket['score']:.2f} "
            f"({bucket['killed']} killed / {bucket['survived']} survived)"
            + gate
        )

    survivors = [
        (name, mutant)
        for name, stats in report["modules"].items()
        for mutant in stats["mutants"]
        if mutant["status"] == "survived"
    ]
    if survivors:
        lines.append("")
        lines.append(f"surviving mutants ({len(survivors)}) — triage:")
        for name, mutant in survivors:
            lines.append("")
            lines.append(
                f"  {mutant['id']} @ {report['modules'][name]['file']}:"
                f"{mutant['line']} — {mutant['description']}"
            )
            for stage in mutant.get("layers_passed", []):
                lines.append(f"    {stage['layer']:<12} {stage['note']}")
            for diff_line in mutant.get("diff", []):
                lines.append(f"    | {diff_line}")
    annotated_total = report["totals"]["annotated"]
    if annotated_total:
        lines.append("")
        lines.append(
            f"annotated-equivalent mutants excluded from scoring: {annotated_total}"
        )
    lines.append("")
    for failure in report["failures"]:
        lines.append(f"FAIL: {failure}")
    lines.append(
        "mutate: "
        + ("PASS" if report["passed"] else "FAIL")
        + f" (overall score {totals['score']:.2f} over {totals['sampled']} mutants)"
    )
    return "\n".join(lines)
