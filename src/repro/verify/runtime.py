"""Opt-in self-certification: the ``REPRO_VERIFY=1`` wiring.

With ``REPRO_VERIFY=1`` in the environment (or ``--verify`` on the
``repro run`` / ``repro batch`` CLI, which sets it), every solve that
flows through the engine re-checks its own output with the
:mod:`repro.verify.certificates` checkers before returning it, and the
engine cache additionally cross-checks the NumPy kernels against the
pure-Python reference on every cached/warm-started path.  A failed
check raises :class:`~repro.verify.certificates.VerificationError`
naming the violated paper invariant — in batch mode that lands in the
per-query ``error`` field instead of poisoning the batch.

The flag is read per call (one dict lookup) so tests can flip it with
``monkeypatch.setenv``; everything here is a no-op costing one branch
when the flag is unset.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence

from repro.verify.certificates import (
    CertificateReport,
    VerificationError,
    check_chain_partition,
    check_prime_cover,
    check_tree_cut,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.core.bandwidth import ChainCutResult
    from repro.core.bottleneck import TreeCutResult
    from repro.graphs.chain import Chain
    from repro.graphs.tree import Tree

#: Environment variable that switches on self-certification.
ENV_FLAG = "REPRO_VERIFY"

_TRUTHY = frozenset(("1", "true", "yes", "on"))


def verification_enabled() -> bool:
    """True when ``REPRO_VERIFY`` is set to a truthy value."""
    return os.environ.get(ENV_FLAG, "").strip().lower() in _TRUTHY


def enable_verification() -> None:
    """Turn on self-certification for this process and its children.

    Used by the CLI's ``--verify`` flag; process-pool workers inherit
    the environment, so batch workers self-certify too.
    """
    os.environ[ENV_FLAG] = "1"


def verify_chain_result(
    chain: "Chain",
    cut_indices: Sequence[int],
    bound: float,
    claimed_weight: Optional[float] = None,
    *,
    optimal_bandwidth: bool = False,
) -> CertificateReport:
    """Certify a chain cut; raise :class:`VerificationError` on failure.

    ``optimal_bandwidth`` additionally enforces the Algorithm 4.1 output
    shape: every cut edge must be covered by a prime subpath (the
    non-redundant edge reduction guarantees it).
    """
    report = check_chain_partition(chain, cut_indices, bound, claimed_weight)
    cover = check_prime_cover(
        chain, cut_indices, bound, require_covered=optimal_bandwidth
    )
    report.checks += cover.checks
    report.violations.extend(cover.violations)
    return report.raise_if_failed()


def verify_tree_result(
    tree: "Tree",
    result: "TreeCutResult",
    bound: float,
) -> CertificateReport:
    """Certify a tree cut result; raise on failure."""
    report = check_tree_cut(
        tree, result.cut_edges, bound, claimed_bottleneck=result.bottleneck
    )
    return report.raise_if_failed()


def cross_check_chain_backends(
    chain: "Chain",
    bound: float,
    result: "ChainCutResult",
    *,
    apply_reduction: bool = True,
) -> CertificateReport:
    """Cross-check a served result against a fresh pure-Python solve.

    The engine cache serves results computed by the NumPy kernels, and
    warm-started paths serve results memoized at a *different* bound
    inside the structure's stability interval.  Both must agree
    element-for-element with the reference implementation re-run from
    scratch at the queried bound; raises on any divergence.
    """
    from repro.core.bandwidth import bandwidth_min

    report = CertificateReport("backend_cross_check")
    report.checks += 1
    reference = bandwidth_min(
        chain, bound, apply_reduction=apply_reduction, backend="python"
    )
    if list(reference.cut_indices) != list(result.cut_indices):
        report.add(
            "engine.cut_divergence",
            "backend equivalence: NumPy kernels and cached/warm-started "
            "results must match the pure-Python reference exactly",
            f"served cut {list(result.cut_indices)!r} != reference cut "
            f"{list(reference.cut_indices)!r} at K={bound:g}",
            {"served": list(result.cut_indices),
             "reference": list(reference.cut_indices), "bound": bound},
        )
    if reference.weight != result.weight:
        report.add(
            "engine.weight_divergence",
            "backend equivalence: served bandwidth must equal the "
            "pure-Python reference bit-for-bit",
            f"served weight {result.weight!r} != reference weight "
            f"{reference.weight!r} at K={bound:g}",
            {"served": result.weight, "reference": reference.weight,
             "bound": bound},
        )
    return report.raise_if_failed()


def verify_cache_solve(
    chain: "Chain",
    bound: float,
    result: "ChainCutResult",
    *,
    apply_reduction: bool = True,
) -> None:
    """Full self-certification of one engine-cache solve.

    Runs the certificate checkers (load bound, bandwidth, prime cover,
    non-redundant support) plus the pure-Python backend cross-check.
    Called by :meth:`repro.engine.cache.PrimeStructureCache.solve` when
    ``REPRO_VERIFY=1``.
    """
    verify_chain_result(
        chain,
        result.cut_indices,
        bound,
        claimed_weight=result.weight,
        optimal_bandwidth=apply_reduction,
    )
    cross_check_chain_backends(
        chain, bound, result, apply_reduction=apply_reduction
    )


# ----------------------------------------------------------------------
# Flag-guarded entry points for solver call sites.
#
# Solvers cannot import this module at module scope (verify sits above
# core/engine in the layering), so they guard on the raw environment
# variable and import these lazily; the fine-grained truthiness check
# lives here so "REPRO_VERIFY=0" still means off everywhere.
# ----------------------------------------------------------------------


def maybe_verify_cache_solve(
    chain: "Chain",
    bound: float,
    result: "ChainCutResult",
    *,
    apply_reduction: bool = True,
) -> None:
    """:func:`verify_cache_solve` gated on :func:`verification_enabled`."""
    if verification_enabled():
        verify_cache_solve(
            chain, bound, result, apply_reduction=apply_reduction
        )


def maybe_verify_chain_result(
    chain: "Chain",
    cut_indices: Sequence[int],
    bound: float,
    claimed_weight: Optional[float] = None,
    *,
    optimal_bandwidth: bool = False,
) -> None:
    """:func:`verify_chain_result` gated on :func:`verification_enabled`."""
    if verification_enabled():
        verify_chain_result(
            chain,
            cut_indices,
            bound,
            claimed_weight,
            optimal_bandwidth=optimal_bandwidth,
        )


def maybe_verify_tree_result(
    tree: "Tree",
    result: "TreeCutResult",
    bound: float,
) -> None:
    """:func:`verify_tree_result` gated on :func:`verification_enabled`."""
    if verification_enabled():
        verify_tree_result(tree, result, bound)


def maybe_verify_tree_cut(
    tree: "Tree",
    cut_edges: "Sequence[tuple]",
    bound: float,
    claimed_bottleneck: Optional[float] = None,
) -> None:
    """Flag-gated :func:`check_tree_cut` for raw edge-set call sites."""
    if verification_enabled():
        check_tree_cut(
            tree, cut_edges, bound, claimed_bottleneck=claimed_bottleneck
        ).raise_if_failed()


def maybe_verify_pareto_frontier(
    rows: "Sequence[dict]", *, check_bandwidth: bool = True
) -> None:
    """Flag-gated frontier monotonicity check for the inverse solvers."""
    if verification_enabled():
        from repro.verify.certificates import check_pareto_frontier

        check_pareto_frontier(
            rows, check_bandwidth=check_bandwidth
        ).raise_if_failed()
