"""Static verification layer: certificates, contracts, flow and lint.

The paper's outputs are all *cuts*, and a claimed cut is cheap to audit
independently of how it was computed: the execution-time bound (every
component of ``G - S`` weighs at most ``K``), the bottleneck
(``max_{e in S} delta(e)``), the bandwidth (``sum_{e in S} beta(e)``)
and prime-subpath coverage (Section 2.3: a chain cut is feasible iff it
hits every prime subpath) are all ``O(n)`` checks.  This package turns
that observation into tooling:

- :mod:`repro.verify.certificates` — pure ``O(n)`` certificate checkers
  returning structured :class:`Violation` reports;
- :mod:`repro.verify.runtime` — the ``REPRO_VERIFY=1`` env flag (and
  ``--verify`` CLI flag) wiring that makes every engine/baseline solve
  self-certify, including a pure-Python cross-check of the NumPy
  kernels on cached/warm-started engine paths;
- :mod:`repro.verify.lint` — the repo-specific AST lint pass
  (``python -m repro.verify.lint src/ tests/ benchmarks/``);
- :mod:`repro.verify.contracts` — machine-readable ``@complexity``
  budgets on every solver plus the AST pass enforcing them
  (REPRO010/REPRO011);
- :mod:`repro.verify.flow` — the process-pool hygiene dataflow pass
  (REPRO006-REPRO008);
- :mod:`repro.verify.empirical` — the ``repro analyze --complexity``
  gate fitting OpCounter telemetry against declared budgets (REPRO009);
- :mod:`repro.verify.markers` / :mod:`repro.verify.concurrency` /
  :mod:`repro.verify.races` — the concurrency-safety layer:
  ``@shared_state``/``@concurrent_entry`` runtime declarations, the
  shared-state effect analyzer (REPRO013 lock discipline, REPRO014
  async blocking calls, REPRO015 fork-unsafe capture) behind
  ``repro analyze --concurrency``, and the seeded multi-thread
  race-hammer harness;
- :mod:`repro.verify.hotpath` / :mod:`repro.verify.allocs` — the
  hot-path allocation & dispatch analyzer (REPRO016-REPRO019) over
  ``@complexity``-decorated functions and their callees, certified by
  the allocation harness with ratcheted budgets;
- :mod:`repro.verify.faultflow` / :mod:`repro.verify.faults` — the
  fault-surface layer: resource-lifecycle, exception-flow, exit-code
  and determinism-taint rules (REPRO020-REPRO024) behind
  ``repro analyze --faults``, certified by a fault-injection harness
  that raises at each instrumented acquire/IO point and demands
  released locks, resumable sinks and bit-identical re-solves;
- :mod:`repro.verify.operators` / :mod:`repro.verify.sandbox` /
  :mod:`repro.verify.mutate` — the mutation-analysis engine behind
  ``repro mutate``: domain-aware AST fault seeding, fork-isolated kill
  pipelines and the CI-gated kill matrix.

Re-exports resolve lazily (PEP 562): solver modules apply
``@repro.verify.contracts.complexity`` decorators at import time, so
importing this package must not eagerly pull :mod:`certificates` (which
imports the solver core right back).  ``contracts``, ``flow`` and
``lint`` stay stdlib-only for the same reason.
"""

from typing import TYPE_CHECKING, Any, List

if TYPE_CHECKING:  # pragma: no cover - re-export types for checkers only
    from repro.verify.certificates import (
        CertificateReport,
        VerificationError,
        Violation,
        check_chain_partition,
        check_pareto_frontier,
        check_prime_cover,
        check_tree_cut,
    )
    from repro.verify.concurrency import (
        CONCURRENCY_RULES,
        check_concurrency,
        concurrency_check_source,
        shared_state_inventory,
    )
    from repro.verify.contracts import ComplexityContract, complexity
    from repro.verify.markers import (
        SHARED_REGISTRY,
        concurrent_entry,
        shared_state,
    )
    from repro.verify.races import ConcurrencyHarness, RaceConditionError
    from repro.verify.mutate import compare_to_baseline, run_mutation_analysis
    from repro.verify.operators import (
        MutationSite,
        enumerate_sites,
        apply_site,
    )
    from repro.verify.sandbox import run_sandboxed
    from repro.verify.runtime import (
        cross_check_chain_backends,
        verification_enabled,
        verify_chain_result,
        verify_tree_result,
    )

_EXPORTS = {
    "CertificateReport": "repro.verify.certificates",
    "VerificationError": "repro.verify.certificates",
    "Violation": "repro.verify.certificates",
    "check_chain_partition": "repro.verify.certificates",
    "check_pareto_frontier": "repro.verify.certificates",
    "check_prime_cover": "repro.verify.certificates",
    "check_tree_cut": "repro.verify.certificates",
    "ComplexityContract": "repro.verify.contracts",
    "complexity": "repro.verify.contracts",
    "CONCURRENCY_RULES": "repro.verify.concurrency",
    "check_concurrency": "repro.verify.concurrency",
    "concurrency_check_source": "repro.verify.concurrency",
    "shared_state_inventory": "repro.verify.concurrency",
    "SHARED_REGISTRY": "repro.verify.markers",
    "concurrent_entry": "repro.verify.markers",
    "shared_state": "repro.verify.markers",
    "ConcurrencyHarness": "repro.verify.races",
    "RaceConditionError": "repro.verify.races",
    "MutationSite": "repro.verify.operators",
    "enumerate_sites": "repro.verify.operators",
    "apply_site": "repro.verify.operators",
    "run_mutation_analysis": "repro.verify.mutate",
    "compare_to_baseline": "repro.verify.mutate",
    "run_sandboxed": "repro.verify.sandbox",
    "cross_check_chain_backends": "repro.verify.runtime",
    "verification_enabled": "repro.verify.runtime",
    "verify_chain_result": "repro.verify.runtime",
    "verify_tree_result": "repro.verify.runtime",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
