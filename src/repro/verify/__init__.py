"""Static verification layer: certificate checkers and repo lint rules.

The paper's outputs are all *cuts*, and a claimed cut is cheap to audit
independently of how it was computed: the execution-time bound (every
component of ``G - S`` weighs at most ``K``), the bottleneck
(``max_{e in S} delta(e)``), the bandwidth (``sum_{e in S} beta(e)``)
and prime-subpath coverage (Section 2.3: a chain cut is feasible iff it
hits every prime subpath) are all ``O(n)`` checks.  This package turns
that observation into tooling:

- :mod:`repro.verify.certificates` — pure ``O(n)`` certificate checkers
  returning structured :class:`Violation` reports;
- :mod:`repro.verify.runtime` — the ``REPRO_VERIFY=1`` env flag (and
  ``--verify`` CLI flag) wiring that makes every engine/baseline solve
  self-certify, including a pure-Python cross-check of the NumPy
  kernels on cached/warm-started engine paths;
- :mod:`repro.verify.lint` — the repo-specific AST lint pass
  (``python -m repro.verify.lint src/``).
"""

from repro.verify.certificates import (
    CertificateReport,
    VerificationError,
    Violation,
    check_chain_partition,
    check_pareto_frontier,
    check_prime_cover,
    check_tree_cut,
)
from repro.verify.runtime import (
    cross_check_chain_backends,
    verification_enabled,
    verify_chain_result,
    verify_tree_result,
)

__all__ = [
    "CertificateReport",
    "VerificationError",
    "Violation",
    "check_chain_partition",
    "check_pareto_frontier",
    "check_prime_cover",
    "check_tree_cut",
    "cross_check_chain_backends",
    "verification_enabled",
    "verify_chain_result",
    "verify_tree_result",
]
