"""Runtime concurrency markers: ``@concurrent_entry`` / ``@shared_state``.

These are the *declaration* half of the concurrency-safety contract:
:func:`shared_state` registers a class as shared mutable state and
names the lock attribute that guards it; :func:`concurrent_entry`
marks a function or method as callable from multiple threads at once.
The *enforcement* half lives in :mod:`repro.verify.concurrency`
(static rules REPRO013-REPRO015) and :mod:`repro.verify.races` (the
dynamic race-hammer harness over :data:`SHARED_REGISTRY`).

The markers live in this tiny stdlib-only leaf module — not in the
analyzer — because the engine and observability hot paths apply them at
class-creation time: importing them must not drag the AST machinery
(or anything else) into every process that solves a chain.  Both are
pure annotations; neither wraps the callable nor costs anything at call
time.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, TypeVar

#: Runtime inventory of shared-state classes: qualified class name ->
#: declared lock attribute.  Filled by :func:`shared_state` at class
#: decoration time; the race-hammer harness and the tests iterate it.
SHARED_REGISTRY: Dict[str, str] = {}

_F = TypeVar("_F", bound=Callable[..., Any])
_C = TypeVar("_C", bound=type)


def concurrent_entry(fn: _F) -> _F:
    """Mark ``fn`` as callable from multiple threads concurrently.

    A pure marker: the function is returned unchanged (no wrapper, no
    overhead) with ``__concurrent_entry__ = True`` set so runtime
    tooling can discover the annotated surface.  The static pass keys
    off the decorator *name*, so it needs no imports to see it.
    """
    fn.__concurrent_entry__ = True  # type: ignore[attr-defined]
    return fn


def shared_state(lock: str = "_lock") -> Callable[[_C], _C]:
    """Class decorator declaring shared mutable state guarded by ``lock``.

    Registers the class in :data:`SHARED_REGISTRY` and stamps
    ``__shared_lock__`` on it; the class itself is returned unchanged.
    """

    def register(cls: _C) -> _C:
        cls.__shared_lock__ = lock  # type: ignore[attr-defined]
        SHARED_REGISTRY[f"{cls.__module__}.{cls.__qualname__}"] = lock
        return cls

    return register
