"""Nested tracing spans — the wall-clock/op-count backbone of the repo.

The paper's evidence is a *cost model* (``O(n + p log q)`` search steps,
TEMP_S queue lengths), so credible measurement has to tie wall-clock
phases to the abstract quantities they spend.  A :class:`Tracer` hands
out nested :class:`Span` context managers::

    tracer = Tracer()
    with tracer.span("bandwidth_min", n=chain.num_tasks) as root:
        with tracer.span("prime_structure") as sp:
            structure = compute_prime_structure(chain, bound)
            sp.set("p", structure.p)
        root.add("queries")

Each span records its wall-clock duration, arbitrary attributes
(:meth:`Span.set`), and operation counts/value traces through an
embedded :class:`~repro.instrumentation.counters.OpCounter`
(:meth:`Span.add` / :meth:`Span.trace`) — the same counter object the
algorithms already accept, so a traced run reproduces
``AlgorithmStats`` bit-for-bit rather than approximating it.

Like ``NULL_COUNTER``, tracing has a zero-overhead disabled mode:
:data:`NULL_TRACER` (any ``Tracer(enabled=False)``) returns the shared
:data:`NULL_SPAN` from every :meth:`Tracer.span` call — no allocation,
no clock reads, every method a no-op — so instrumented code threads a
tracer unconditionally without taxing production calls.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.instrumentation.counters import NULL_COUNTER, OpCounter
from repro.observability.live import NULL_HUB, NullTelemetryHub, TelemetryHub

#: Anything a tracer can publish into: a real hub or the null hub.
HubLike = Union[TelemetryHub, NullTelemetryHub]


class NullSpan:
    """The shared do-nothing span returned by disabled tracers.

    Carries :data:`NULL_COUNTER` so code that forwards ``span.counter``
    into an algorithm keeps working (and stays free) when disabled.
    """

    __slots__ = ()

    enabled = False
    counter = NULL_COUNTER

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, name: str, value: Any) -> None:
        return None

    def add(self, name: str, amount: int = 1) -> None:
        return None

    def trace(self, name: str, value: float) -> None:
        return None

    def __repr__(self) -> str:
        return "NullSpan()"


#: Shared no-op span — the only span a disabled tracer ever yields.
NULL_SPAN = NullSpan()


class Span:
    """One timed, attributed phase of a run.

    Created by :meth:`Tracer.span` and used as a context manager; the
    parent/child structure follows the runtime nesting of ``with``
    blocks.  ``attrs`` hold scalar facts (``p``, ``q``, cache outcome),
    ``counter`` holds monotone op-counts and value traces.
    """

    __slots__ = (
        "name",
        "attrs",
        "counter",
        "start_s",
        "duration_s",
        "children",
        "path",
        "depth",
        "_tracer",
        "_t0",
    )

    enabled = True

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.counter = OpCounter()
        self.start_s = 0.0
        self.duration_s = 0.0
        self.children: List["Span"] = []
        self.path = name
        self.depth = 0
        self._tracer = tracer
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._t0 = time.perf_counter()
        self.start_s = self._t0 - self._tracer.epoch
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration_s = time.perf_counter() - self._t0
        self._tracer._pop(self)
        hub = self._tracer.hub
        if hub.enabled:
            hub.publish_span(self.to_record())

    def to_record(self) -> Dict[str, Any]:
        """This span as a JSON-ready record (the per-span shape of
        :meth:`Tracer.records`, minus the tree-global ``order``)."""
        return {
            "kind": "span",
            "path": self.path,
            "name": self.name,
            "depth": self.depth,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "attrs": dict(self.attrs),
            "counts": self.counter.as_dict(),
            "traces": {
                name: _trace_summary(series)
                for name, series in self.counter.traces.items()
            },
        }

    def set(self, name: str, value: Any) -> None:
        """Record a scalar attribute on this span."""
        self.attrs[name] = value

    def add(self, name: str, amount: int = 1) -> None:
        """Bump a named operation count."""
        self.counter.add(name, amount)

    def trace(self, name: str, value: float) -> None:
        """Append to a named value series (e.g. per-edge TEMP_S length)."""
        self.counter.trace(name, value)

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms)"


def _trace_summary(series: List[float]) -> Dict[str, float]:
    """Compress a value series to the summary the paper reports.

    ``mean`` uses the same ``sum / len`` expression as
    :meth:`OpCounter.trace_mean`, so exported summaries match
    ``AlgorithmStats`` exactly.
    """
    return {
        "count": len(series),
        "mean": sum(series) / len(series) if series else 0.0,
        "max": max(series) if series else 0.0,
    }


class Tracer:
    """Factory and collector for nested spans.

    ``Tracer(enabled=False)`` is the no-op mode: :meth:`span` returns
    the shared :data:`NULL_SPAN` and nothing is ever recorded.  Check
    ``tracer.enabled`` before doing work whose only purpose is to feed
    the tracer (e.g. forcing the counted sweep path).
    """

    __slots__ = ("enabled", "roots", "epoch", "hub", "_stack")

    def __init__(self, enabled: bool = True, hub: HubLike = NULL_HUB) -> None:
        self.enabled = enabled
        self.roots: List[Span] = []
        self.epoch = time.perf_counter()
        #: Live telemetry hub; every closed span is published into it
        #: (guarded on ``hub.enabled``, so the default costs nothing).
        self.hub = hub
        self._stack: List[Span] = []

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Any:
        """Open a span; use as ``with tracer.span("phase", n=n) as s:``."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def _push(self, span: Span) -> None:
        if self._stack:
            parent = self._stack[-1]
            parent.children.append(span)
            span.path = f"{parent.path}/{span.name}"
            span.depth = parent.depth + 1
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Pop back to (and including) the span: tolerates a span exited
        # out of order rather than silently corrupting the tree.
        while self._stack:
            if self._stack.pop() is span:
                return

    @property
    def current(self) -> Any:
        """The innermost open span, or :data:`NULL_SPAN`."""
        return self._stack[-1] if self._stack else NULL_SPAN

    # ------------------------------------------------------------------
    # Introspection and export
    # ------------------------------------------------------------------
    def iter_spans(self) -> Iterator[Span]:
        """All finished and open spans, depth-first in start order."""
        stack = list(reversed(self.roots))
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> Optional[Span]:
        """First span with the given name, depth-first (test/CLI use)."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def total_seconds(self) -> float:
        return sum(span.duration_s for span in self.roots)

    def records(self) -> List[Dict[str, Any]]:
        """Flatten the span tree to JSON-ready dicts.

        Each record carries ``path`` (slash-joined ancestor names),
        ``depth``, ``order`` (depth-first index — deterministic for a
        given run), timing, attributes, op-counts and trace summaries.
        """
        out: List[Dict[str, Any]] = []
        for span in self.iter_spans():
            record = span.to_record()
            record["order"] = len(out)
            out.append(record)
        return out

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, roots={len(self.roots)})"


#: Shared disabled tracer — safe to pass anywhere a ``Tracer`` is
#: accepted; every span it yields is the no-op :data:`NULL_SPAN`.
NULL_TRACER = Tracer(enabled=False)
