"""Unified tracing and metrics for the partitioning stack.

Three pieces, layered next to :mod:`repro.instrumentation` at the
foundation of the package (nothing here imports above it):

- :mod:`repro.observability.spans` — :class:`Tracer`/:class:`Span`
  nested phase timing with embedded op-counters and a zero-overhead
  disabled mode (:data:`NULL_TRACER`);
- :mod:`repro.observability.metrics` — :class:`MetricsRegistry` of
  counters, gauges and percentile histograms that merges
  deterministically across processes;
- :mod:`repro.observability.export` — the JSONL trace format written
  by ``repro run --trace``/``repro batch --trace`` and read by
  ``repro report --trace``, plus the per-phase aggregation behind the
  report table.
"""

from repro.observability.export import (
    TRACE_SCHEMA_VERSION,
    aggregate_spans,
    metric_records,
    read_trace,
    span_records,
    trace_records,
    write_trace,
)
from repro.observability.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.observability.spans import NULL_SPAN, NULL_TRACER, NullSpan, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "Span",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "aggregate_spans",
    "metric_records",
    "read_trace",
    "span_records",
    "trace_records",
    "write_trace",
]
