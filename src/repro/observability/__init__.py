"""Unified tracing, metrics and live telemetry for the partitioning stack.

Six pieces, layered next to :mod:`repro.instrumentation` at the
foundation of the package (nothing here imports above it):

- :mod:`repro.observability.spans` — :class:`Tracer`/:class:`Span`
  nested phase timing with embedded op-counters and a zero-overhead
  disabled mode (:data:`NULL_TRACER`);
- :mod:`repro.observability.metrics` — :class:`MetricsRegistry` of
  counters, gauges and hybrid exact/log-bucketed percentile
  :class:`Histogram` instruments that merge deterministically across
  processes;
- :mod:`repro.observability.live` — the push-based
  :class:`TelemetryHub` with pluggable subscribers: crash-safe
  streaming JSONL (:class:`StreamingJsonlSink`), bounded
  :class:`RingBufferSubscriber`, plus a zero-overhead
  :data:`NULL_HUB`;
- :mod:`repro.observability.slo` — :class:`SloSpec`/:class:`SloTracker`
  sliding-window p50/p95/p99 objectives with violation and burn-rate
  detection over live events;
- :mod:`repro.observability.profiler` — :class:`ProfileSampler`, a
  stdlib stack-sampling profiler emitting collapsed-stack flamegraph
  input (``repro run --profile``);
- :mod:`repro.observability.export` — the JSONL trace format (schema
  v2) written by ``repro run --trace``/``repro batch --trace``,
  streamed by ``repro batch --stream``, read by ``repro report
  --trace``/``repro top``, and the Prometheus text renderer behind
  ``repro metrics export``.
"""

from repro.observability.export import (
    TRACE_SCHEMA_VERSION,
    aggregate_spans,
    event_records,
    metric_records,
    read_trace,
    render_prometheus,
    render_prometheus_records,
    span_records,
    trace_records,
    write_trace,
)
from repro.observability.live import (
    NULL_HUB,
    CallbackSubscriber,
    NullTelemetryHub,
    RingBufferSubscriber,
    StreamingJsonlSink,
    TelemetryHub,
    TelemetrySubscriber,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    nearest_rank,
)
from repro.observability.profiler import ProfileSampler
from repro.observability.slo import SlidingWindow, SloSpec, SloTracker
from repro.observability.spans import NULL_SPAN, NULL_TRACER, NullSpan, Span, Tracer

__all__ = [
    "CallbackSubscriber",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_HUB",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullSpan",
    "NullTelemetryHub",
    "ProfileSampler",
    "RingBufferSubscriber",
    "SlidingWindow",
    "SloSpec",
    "SloTracker",
    "Span",
    "StreamingJsonlSink",
    "TRACE_SCHEMA_VERSION",
    "TelemetryHub",
    "TelemetrySubscriber",
    "Tracer",
    "aggregate_spans",
    "event_records",
    "metric_records",
    "nearest_rank",
    "read_trace",
    "render_prometheus",
    "render_prometheus_records",
    "span_records",
    "trace_records",
    "write_trace",
]
