"""A pure-stdlib stack-sampling profiler emitting flamegraph input.

:class:`ProfileSampler` runs a daemon thread that snapshots every other
thread's Python stack via :func:`sys._current_frames` at a fixed
interval, folding each snapshot into collapsed-stack counts
(``module:func;module:func;... count``) — the input format of
Brendan Gregg's ``flamegraph.pl`` and of speedscope's "collapsed"
importer.  No dependencies, no interpreter hooks, no per-call overhead
on the profiled code: cost scales with sampling rate, not with work.

Wall-clock sampling like this observes *where threads are*, including
time blocked on locks or I/O — for a solver workload that is exactly
the "why is this batch slow" signal.  Accuracy is statistical: a stack
must be live for roughly ``interval_s`` to be seen, so treat counts as
proportions, not call counts.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional

from repro.verify.markers import concurrent_entry, shared_state


@shared_state(lock="_lock")
class ProfileSampler:
    """Sample all live thread stacks into collapsed-stack counts.

    Use as a context manager around the region of interest::

        with ProfileSampler(interval_s=0.005) as sampler:
            engine.solve_many(queries)
        sampler.write_collapsed("profile.collapsed")

    ``samples`` counts snapshots taken; each snapshot contributes one
    count per observed thread stack.

    Lifecycle transitions and count updates serialize on one reentrant
    ``_lock`` (``@shared_state``): ``stop()`` is idempotent and safe to
    call from several threads at once — exactly one caller claims the
    sampler thread and joins it (outside the lock, so an in-flight
    ``sample_once`` can finish), the rest return immediately.
    """

    __slots__ = ("interval_s", "counts", "samples", "_thread", "_stop", "_lock")

    def __init__(self, interval_s: float = 0.005) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.interval_s = interval_s
        #: collapsed stack ("mod:func;mod:func") -> observation count
        self.counts: Dict[str, int] = {}
        self.samples = 0
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @staticmethod
    def _collapse(frame: object) -> str:
        """Render one frame chain root-first as ``mod:func;mod:func``."""
        parts: List[str] = []
        current = frame
        while current is not None:
            code = current.f_code  # type: ignore[attr-defined]
            module = code.co_filename.rsplit("/", 1)[-1]
            if module.endswith(".py"):
                module = module[:-3]
            parts.append(f"{module}:{code.co_name}")
            current = current.f_back  # type: ignore[attr-defined]
        parts.reverse()
        return ";".join(parts)

    @concurrent_entry
    def sample_once(self) -> None:
        """Take one snapshot of every other thread's stack."""
        own = threading.get_ident()
        frames = sys._current_frames()
        with self._lock:
            self.samples += 1
            for thread_id, frame in frames.items():
                if thread_id == own:
                    continue
                stack = self._collapse(frame)
                if stack:
                    self.counts[stack] = self.counts.get(stack, 0) + 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @concurrent_entry
    def start(self) -> None:
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("profiler already started")
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()

    @concurrent_entry
    def stop(self) -> None:
        """Stop sampling.  Idempotent and safe under concurrent callers.

        The thread handle is claimed atomically under the lock, but the
        join happens outside it: the sampler thread may be inside
        ``sample_once`` waiting for the same lock, and joining while
        holding it would deadlock.
        """
        with self._lock:
            thread = self._thread
            self._thread = None
            if thread is None:
                return
            self._stop.set()
        thread.join(timeout=max(1.0, 10 * self.interval_s))

    def __enter__(self) -> "ProfileSampler":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def collapsed_lines(self) -> List[str]:
        """``stack count`` lines, sorted by stack for stable output."""
        with self._lock:
            return [
                f"{stack} {count}"
                for stack, count in sorted(self.counts.items())
            ]

    def write_collapsed(self, path: str) -> int:
        """Write collapsed-stack lines to ``path``; returns line count."""
        lines = self.collapsed_lines()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)

    def top_stacks(self, limit: int = 10) -> List[str]:
        """The ``limit`` hottest stacks, hottest first."""
        with self._lock:
            ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [f"{count:6d}  {stack}" for stack, count in ranked[:limit]]


def profile_duration_estimate(sampler: ProfileSampler) -> float:
    """Rough wall seconds represented by the sampler's counts."""
    return sampler.samples * sampler.interval_s
