"""Counters, gauges and histograms for engine-level telemetry.

Spans (:mod:`repro.observability.spans`) answer "where did this one run
spend its time"; a :class:`MetricsRegistry` answers the fleet questions
— cache hit-rate, kernel dispatch counts, batch queue depth, per-query
latency percentiles — and survives process boundaries: a registry (or
any of its instruments) round-trips through plain dicts
(:meth:`MetricsRegistry.to_payload` / :meth:`MetricsRegistry.merge`),
which is how ``solve_many`` workers ship their numbers back to the
parent engine.

Merging is deterministic: counters and histogram observations add, a
gauge takes the merged-in value (callers merge results in query order,
so the outcome is reproducible run to run).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional


class Counter:
    """A named monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


class Gauge:
    """A named last-write-wins value (queue depth, pool width, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


class Histogram:
    """A named distribution with exact (nearest-rank) percentiles.

    Observations are kept verbatim — the workloads this repo measures
    record at most a few thousand per run, and exact retention is what
    makes cross-process merges deterministic and lossless.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: Optional[List[float]] = None) -> None:
        self.name = name
        self.values: List[float] = values if values is not None else []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.sum / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; 0 when empty."""
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:g})"


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Instrument names are dotted paths by convention
    (``engine.cache.hits``, ``engine.query_latency_s``); the registry
    itself imposes only uniqueness per kind.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    # ------------------------------------------------------------------
    # Serialization and merging
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        """Plain-dict form: pickles to workers, dumps to JSON, merges back."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {n: g.value for n, g in self.gauges.items()},
            "histograms": {n: list(h.values) for n, h in self.histograms.items()},
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(payload)
        return registry

    def merge(self, other: Any) -> None:
        """Fold another registry (or its payload dict) into this one.

        Counters and histogram observations add; gauges take the
        incoming value.  Merging in query order makes batch aggregation
        reproducible.
        """
        payload = other.to_payload() if isinstance(other, MetricsRegistry) else other
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in payload.get("histograms", {}).items():
            self.histogram(name).values.extend(values)

    def records(self) -> List[Dict[str, Any]]:
        """JSON-ready metric records (one per instrument), sorted by name."""
        out: List[Dict[str, Any]] = []
        for name in sorted(self.counters):
            out.append(
                {"kind": "metric", "type": "counter", "name": name,
                 "value": self.counters[name].value}
            )
        for name in sorted(self.gauges):
            out.append(
                {"kind": "metric", "type": "gauge", "name": name,
                 "value": self.gauges[name].value}
            )
        for name in sorted(self.histograms):
            out.append(
                {"kind": "metric", "type": "histogram", "name": name,
                 "summary": self.histograms[name].summary()}
            )
        return out

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )
