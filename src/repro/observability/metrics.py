"""Counters, gauges and histograms for engine-level telemetry.

Spans (:mod:`repro.observability.spans`) answer "where did this one run
spend its time"; a :class:`MetricsRegistry` answers the fleet questions
— cache hit-rate, kernel dispatch counts, batch queue depth, per-query
latency percentiles — and survives process boundaries: a registry (or
any of its instruments) round-trips through plain dicts
(:meth:`MetricsRegistry.to_payload` / :meth:`MetricsRegistry.merge`),
which is how ``solve_many`` workers ship their numbers back to the
parent engine.

Merging is deterministic: counters and histogram observations add, a
gauge takes the merged-in value.  Histograms are *mergeable without a
merge order*: their internal state is a pure function of the observed
multiset (see :class:`Histogram`), so any fold order over worker
payloads produces bit-identical :meth:`MetricsRegistry.records`.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.verify.markers import concurrent_entry, shared_state


def nearest_rank(ordered: List[float], pct: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list; 0 when empty.

    The single percentile definition shared by :class:`Histogram`, the
    SLO window tracker and the ``repro top`` dashboard, so live windowed
    numbers and post-hoc trace summaries agree exactly on the same data.
    """
    if not ordered:
        return 0.0
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@shared_state(lock="_lock")
class Counter:
    """A named monotone counter.

    ``inc`` locks: ``self.value += amount`` is read-modify-write, and
    the GIL does not make it atomic — two threads can interleave the
    load and the store and lose an update (the race-hammer test
    demonstrates exactly this on the unlocked form).
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value
        self._lock = threading.RLock()

    @concurrent_entry
    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value:g})"


@shared_state(lock="_lock")
class Gauge:
    """A named last-write-wins value (queue depth, pool width, ...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = value
        self._lock = threading.RLock()

    @concurrent_entry
    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value:g})"


#: Observations kept verbatim before a histogram spills to log buckets.
#: Every workload the repo's reports historically measured stays below
#: this, so their summaries remain exact and bit-stable.
EXACT_LIMIT = 512

#: Log-bucket growth factor: 8 buckets per power of two (~9% relative
#: bucket width, so bucketed percentiles carry <= ~4.5% relative error).
BUCKETS_PER_OCTAVE = 8
_GAMMA = 2.0 ** (1.0 / BUCKETS_PER_OCTAVE)
_LN_GAMMA = math.log(_GAMMA)


def _bucket_index(value: float) -> int:
    """Index ``i`` with ``gamma**i <= value < gamma**(i+1)`` (value > 0).

    Computed via ``log`` then corrected with exact power comparisons, so
    the mapping is deterministic and boundary-safe despite float logs.
    """
    i = int(math.floor(math.log(value) / _LN_GAMMA))
    while _GAMMA ** i > value:
        i -= 1
    while _GAMMA ** (i + 1) <= value:
        i += 1
    return i


def _bucket_mid(index: int) -> float:
    """The representative (midpoint) value of bucket ``index``."""
    lo = _GAMMA ** index
    return (lo + lo * _GAMMA) / 2.0


#: A histogram wire payload: the v1 verbatim-values list, or the v2
#: bucketed dict once a histogram has spilled.
HistogramPayload = Union[List[float], Dict[str, Any]]


@shared_state(lock="_lock")
class Histogram:
    """A named distribution: exact while small, log-bucketed at scale.

    Observations are kept verbatim up to :data:`EXACT_LIMIT` — exact
    (nearest-rank) percentiles, exact sums, bit-stable summaries, just
    like the original unbounded implementation.  Past the limit the
    histogram *spills*: values move into logarithmic buckets
    (:data:`BUCKETS_PER_OCTAVE` per power of two) and memory becomes
    O(buckets) no matter how many observations stream in — the property
    an always-on telemetry hub needs.

    **Determinism.**  The internal state is a pure function of the
    observed *multiset*: bucket counts add, min/max take extrema, exact
    sums use :func:`math.fsum` (order-independent correctly-rounded
    summation), and the exact→bucketed transition happens exactly when
    the total count crosses the limit.  Merging worker payloads in any
    order therefore yields bit-identical :meth:`summary` output, and a
    merged histogram matches a single-process histogram fed the same
    observations (property-tested).

    Percentile calls memoize the sorted view and invalidate it on
    :meth:`observe`/:meth:`merge`, so a p50+p99 report loop is sorted
    once, not once per percentile.

    **Thread safety.**  Observation, merge, summary and the memoized
    percentile/CDF paths all serialize on one reentrant ``_lock``
    (``@shared_state``): the count/min/max/values update in ``observe``
    and the exact→bucketed spill are multi-field transitions that must
    never be observed half-done.  ``merge`` snapshots the other
    histogram's payload *before* taking its own lock, so two histograms
    merging into each other cannot deadlock.
    """

    __slots__ = (
        "name",
        "_values",
        "_ordered",
        "_pos",
        "_neg",
        "_zero",
        "_count",
        "_min",
        "_max",
        "_cdf",
        "_lock",
    )

    def __init__(self, name: str, values: Optional[List[float]] = None) -> None:
        self.name = name
        #: Verbatim observations while exact; ``None`` once spilled.
        self._values: Optional[List[float]] = []
        #: Memoized ascending sort of ``_values`` (exact mode).
        self._ordered: Optional[List[float]] = None
        #: Spilled state: bucket-index -> count for positive/negative
        #: magnitudes, plus an exact-zero count.
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._min = math.inf
        self._max = -math.inf
        #: Memoized bucketed CDF: ascending (value, count) pairs.
        self._cdf: Optional[List[Tuple[float, int]]] = None
        self._lock = threading.RLock()
        if values:
            for value in values:
                self.observe(value)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    @concurrent_entry
    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if self._values is not None:
                self._values.append(value)
                self._ordered = None
                if self._count > EXACT_LIMIT:
                    self._spill()
            else:
                self._bucket_one(value)
                self._cdf = None

    def _bucket_one(self, value: float) -> None:
        # REPRO017-adjacent: one _bucket_index dispatch per observation,
        # not two — observe() runs this under the lock on the hot path.
        if value > 0.0:
            key = _bucket_index(value)
            self._pos[key] = self._pos.get(key, 0) + 1
        elif value < 0.0:
            key = _bucket_index(-value)
            self._neg[key] = self._neg.get(key, 0) + 1
        else:
            self._zero += 1

    def _spill(self) -> None:
        """Move verbatim values into buckets (count crossed the limit)."""
        values = self._values
        assert values is not None
        self._values = None
        self._ordered = None
        self._cdf = None
        for value in values:
            self._bucket_one(value)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def exact(self) -> bool:
        """True while every observation is retained verbatim."""
        return self._values is not None

    @property
    def values(self) -> List[float]:
        """Verbatim observations, insertion-ordered (exact mode only).

        Raises :class:`ValueError` once the histogram has spilled to
        buckets — at that point individual observations no longer exist.
        """
        if self._values is None:
            raise ValueError(
                f"histogram {self.name!r} spilled to buckets at "
                f"{EXACT_LIMIT} observations; raw values are gone"
            )
        return self._values

    @property
    def count(self) -> int:
        return self._count

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def sum(self) -> float:
        """Exact (fsum) while exact; bucket-midpoint estimate after.

        Both forms are independent of observation/merge order:
        :func:`math.fsum` is correctly rounded, and the bucketed form
        folds ``midpoint * count`` in bucket-index order.
        """
        with self._lock:
            if self._values is not None:
                return math.fsum(self._values)
            return math.fsum(
                value * count for value, count in self._bucket_cdf()
            )

    @property
    def mean(self) -> float:
        return self.sum / self._count if self._count else 0.0

    # ------------------------------------------------------------------
    # Percentiles
    # ------------------------------------------------------------------
    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; 0 when empty.

        Exact in exact mode.  In bucketed mode the returned value is the
        selected bucket's midpoint clamped into ``[min, max]`` — within
        half a bucket width (~4.5%) of the true order statistic.
        """
        with self._lock:
            if not self._count:
                return 0.0
            if self._values is not None:
                if self._ordered is None:
                    self._ordered = sorted(self._values)
                return nearest_rank(self._ordered, pct)
            cdf = self._bucket_cdf()
            rank = max(1, math.ceil(pct / 100.0 * self._count))
            seen = 0
            for value, count in cdf:
                seen += count
                if seen >= rank:
                    return value
            return self._max  # pragma: no cover - rank <= count always hits

    def _bucket_cdf(self) -> List[Tuple[float, int]]:
        """Ascending (representative value, count) pairs, memoized.

        Representatives are bucket midpoints clamped into the observed
        ``[min, max]`` so extremes never exceed real observations.
        """
        with self._lock:
            if self._cdf is None:
                pairs: List[Tuple[float, int]] = []
                for index in sorted(self._neg, reverse=True):
                    pairs.append((-_bucket_mid(index), self._neg[index]))
                if self._zero:
                    pairs.append((0.0, self._zero))
                for index in sorted(self._pos):
                    pairs.append((_bucket_mid(index), self._pos[index]))
                lo, hi = self._min, self._max
                self._cdf = [
                    (min(max(value, lo), hi), count) for value, count in pairs
                ]
            return self._cdf

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # ------------------------------------------------------------------
    # Serialization and merging
    # ------------------------------------------------------------------
    @concurrent_entry
    def to_payload(self) -> HistogramPayload:
        """Wire form: the verbatim list while exact (the v1 format),
        or a bucketed dict once spilled."""
        with self._lock:
            if self._values is not None:
                return list(self._values)
            return {
                "count": self._count,
                "zero": self._zero,
                "pos": {str(i): count for i, count in self._pos.items()},
                "neg": {str(i): count for i, count in self._neg.items()},
                "min": self._min,
                "max": self._max,
            }

    @concurrent_entry
    def merge(self, other: Union["Histogram", HistogramPayload]) -> None:
        """Fold another histogram (or its payload) into this one.

        Exact + exact stays exact while the combined count fits the
        limit; any bucketed participant forces the merged histogram to
        buckets.  The result depends only on the combined multiset,
        never on merge order.
        """
        # Snapshot the other side under *its* lock only, before taking
        # ours — holding both at once could deadlock two histograms
        # merging into each other from different threads.
        if isinstance(other, Histogram):
            payload = other.to_payload()
        else:
            payload = other
        with self._lock:
            if isinstance(payload, list):
                for value in payload:
                    self.observe(float(value))
                return
            # Bucketed payload: spill ourselves, then add counts.
            if self._values is not None:
                self._spill()
            self._cdf = None
            incoming = int(payload.get("count", 0))
            if not incoming:
                return
            self._count += incoming
            self._zero += int(payload.get("zero", 0))
            for key, count in payload.get("pos", {}).items():
                index = int(key)
                self._pos[index] = self._pos.get(index, 0) + int(count)
            for key, count in payload.get("neg", {}).items():
                index = int(key)
                self._neg[index] = self._neg.get(index, 0) + int(count)
            other_min = float(payload.get("min", math.inf))
            other_max = float(payload.get("max", -math.inf))
            if other_min < self._min:
                self._min = other_min
            if other_max > self._max:
                self._max = other_max

    def __repr__(self) -> str:
        mode = "exact" if self.exact else "bucketed"
        return f"Histogram({self.name}, n={self.count}, {mode}, mean={self.mean:g})"


@shared_state(lock="_lock")
class MetricsRegistry:
    """Get-or-create home for named instruments.

    Instrument names are dotted paths by convention
    (``engine.cache.hits``, ``engine.query_latency_s``); the registry
    itself imposes only uniqueness per kind.

    Get-or-create and snapshot paths lock (``@shared_state``), so two
    threads asking for the same name always receive the *same*
    instrument, and ``to_payload``/``records`` never iterate a dict
    mid-insert.  The instruments themselves carry their own locks, and
    the registry lock is always acquired first — the lock order is
    acyclic, so the pair cannot deadlock.
    """

    __slots__ = ("counters", "gauges", "histograms", "_lock")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._lock = threading.RLock()

    @concurrent_entry
    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self.counters.get(name)
            if inst is None:
                inst = self.counters[name] = Counter(name)
            return inst

    @concurrent_entry
    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self.gauges.get(name)
            if inst is None:
                inst = self.gauges[name] = Gauge(name)
            return inst

    @concurrent_entry
    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self.histograms.get(name)
            if inst is None:
                inst = self.histograms[name] = Histogram(name)
            return inst

    # ------------------------------------------------------------------
    # Serialization and merging
    # ------------------------------------------------------------------
    @concurrent_entry
    def to_payload(self) -> Dict[str, Any]:
        """Plain-dict form: pickles to workers, dumps to JSON, merges back."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in self.counters.items()},
                "gauges": {n: g.value for n, g in self.gauges.items()},
                "histograms": {
                    n: h.to_payload() for n, h in self.histograms.items()
                },
            }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge(payload)
        return registry

    @concurrent_entry
    def merge(self, other: Any) -> None:
        """Fold another registry (or its payload dict) into this one.

        Counters and histogram observations add; gauges take the
        incoming value.  Counter/histogram aggregation is independent of
        merge order; only gauges are last-write-wins (callers merge
        results in query order, so even those are reproducible).
        """
        payload = other.to_payload() if isinstance(other, MetricsRegistry) else other
        for name, value in payload.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, histogram in payload.get("histograms", {}).items():
            self.histogram(name).merge(histogram)

    @concurrent_entry
    def records(self) -> List[Dict[str, Any]]:
        """JSON-ready metric records (one per instrument), sorted by name."""
        out: List[Dict[str, Any]] = []
        with self._lock:
            for name in sorted(self.counters):
                out.append(
                    {"kind": "metric", "type": "counter", "name": name,
                     "value": self.counters[name].value}
                )
            for name in sorted(self.gauges):
                out.append(
                    {"kind": "metric", "type": "gauge", "name": name,
                     "value": self.gauges[name].value}
                )
            for name in sorted(self.histograms):
                out.append(
                    {"kind": "metric", "type": "histogram", "name": name,
                     "summary": self.histograms[name].summary()}
                )
        return out

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self.counters)}, "
            f"gauges={len(self.gauges)}, histograms={len(self.histograms)})"
        )
