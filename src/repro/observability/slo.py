"""Sliding-window SLO tracking over live telemetry events.

An :class:`SloSpec` declares an objective ("p99 of
``engine.batch.query_latency_s`` stays under 5 ms over a 60 s
window, with a 1% error budget"); an :class:`SloTracker` subscribes to
a :class:`~repro.observability.live.TelemetryHub`, folds matching
metric events into per-spec sliding windows, and reports windowed
percentiles, violation state and budget burn rate on demand.

Percentiles use the same nearest-rank definition as
:class:`~repro.observability.metrics.Histogram`
(via :func:`~repro.observability.metrics.nearest_rank`), so a window
that covers a whole run reports exactly the numbers the post-hoc trace
report does.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Tuple

from .live import Event, TelemetrySubscriber
from .metrics import nearest_rank


@dataclass(frozen=True)
class SloSpec:
    """A service-level objective over one streamed metric.

    ``objective`` is the threshold the windowed ``percentile`` must stay
    *at or under*; ``budget`` is the tolerated fraction of individual
    observations allowed to exceed the objective before the error
    budget is burning faster than allotted (burn rate > 1).
    """

    name: str
    metric: str
    objective: float
    percentile: float = 99.0
    window_s: float = 60.0
    budget: float = 0.01

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(f"SLO {self.name!r}: window_s must be positive")
        if not 0 < self.percentile <= 100:
            raise ValueError(f"SLO {self.name!r}: percentile must be in (0, 100]")
        if not 0 < self.budget <= 1:
            raise ValueError(f"SLO {self.name!r}: budget must be in (0, 1]")


class SlidingWindow:
    """Timestamped observations over a half-open window ``(now - w, now]``.

    A value stamped exactly ``window_s`` ago is evicted: the window is
    half-open on the old side, closed on the new side, so an
    observation contributes for exactly ``window_s`` seconds.
    """

    __slots__ = ("window_s", "_points")

    def __init__(self, window_s: float) -> None:
        self.window_s = window_s
        self._points: Deque[Tuple[float, float]] = deque()

    def add(self, t: float, value: float) -> None:
        self._points.append((t, value))

    def evict(self, now: float) -> None:
        cutoff = now - self.window_s
        points = self._points
        while points and points[0][0] <= cutoff:
            points.popleft()

    def values(self, now: float) -> List[float]:
        self.evict(now)
        return [value for _, value in self._points]

    def __len__(self) -> int:
        return len(self._points)


class SloTracker(TelemetrySubscriber):
    """Hub subscriber that tracks sliding-window SLO status.

    Feed it metric events (``emit``) or raw samples (``observe``), then
    ask :meth:`status` / :meth:`statuses` for windowed p50/p95/p99, the
    violating flag, the breached-observation fraction and the budget
    burn rate.  The clock is injectable for deterministic tests; event
    timestamps (``"t"``) take precedence over the clock when present so
    replayed traces evaluate in trace time.
    """

    __slots__ = ("specs", "_windows", "_clock", "_last_t")

    def __init__(
        self,
        specs: List[SloSpec],
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.specs = list(specs)
        self._windows: Dict[str, SlidingWindow] = {
            spec.name: SlidingWindow(spec.window_s) for spec in self.specs
        }
        self._clock = clock
        self._last_t = -float("inf")

    def emit(self, event: Event) -> None:
        if event.get("event") != "metric":
            return
        name = event.get("name")
        t = float(event.get("t", self._clock()))
        value = float(event.get("value", 0.0))
        for spec in self.specs:
            if spec.metric == name:
                self._windows[spec.name].add(t, value)
        if t > self._last_t:
            self._last_t = t

    def observe(self, metric: str, value: float, *, t: float) -> None:
        """Feed one raw sample directly (no hub event required)."""
        self.emit(
            {"kind": "event", "event": "metric", "metric": "observe",
             "name": metric, "value": value, "t": t}
        )

    def status(self, spec: SloSpec, *, now: float) -> Dict[str, Any]:
        """Windowed SLO status for one spec at time ``now``."""
        window = self._windows[spec.name]
        values = sorted(window.values(now))
        count = len(values)
        achieved = nearest_rank(values, spec.percentile)
        breaches = sum(1 for value in values if value > spec.objective)
        breach_fraction = breaches / count if count else 0.0
        return {
            "name": spec.name,
            "metric": spec.metric,
            "count": count,
            "p50": nearest_rank(values, 50),
            "p95": nearest_rank(values, 95),
            "p99": nearest_rank(values, 99),
            "objective": spec.objective,
            "percentile": spec.percentile,
            "achieved": achieved,
            "violating": bool(count) and achieved > spec.objective,
            "breach_fraction": breach_fraction,
            "burn_rate": breach_fraction / spec.budget,
        }

    def statuses(self, *, now: float = -float("inf")) -> List[Dict[str, Any]]:
        """Status for every spec, defaulting ``now`` to the newest event."""
        if now == -float("inf"):
            now = self._last_t if self._last_t > -float("inf") else self._clock()
        return [self.status(spec, now=now) for spec in self.specs]
