"""Trace serialization: JSONL writing, reading and span aggregation.

A *trace file* is newline-delimited JSON with three record kinds,
distinguishable by their ``kind`` field:

- ``{"kind": "meta", ...}`` — one optional header describing the run
  (workload, arguments, schema version);
- ``{"kind": "span", "path": "bandwidth_min/temp_s_sweep", ...}`` —
  one per span, depth-first (see :meth:`Tracer.records`);
- ``{"kind": "metric", "type": "counter" | "gauge" | "histogram", ...}``
  — one per registry instrument (see :meth:`MetricsRegistry.records`).

``repro run --trace``/``repro batch --trace`` write this format and
``repro report --trace`` ingests it, so traces captured in production
can be inspected offline with no repo state beyond the file.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Tracer

#: Bump when the record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1


def trace_records(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    extra_spans: Optional[Iterable[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Assemble the full record list for one trace file.

    ``extra_spans`` accepts already-serialized span records (e.g. the
    per-worker spans a batch shipped back) and is appended after the
    tracer's own spans, preserving caller order.
    """
    records: List[Dict[str, Any]] = []
    header: Dict[str, Any] = {"kind": "meta", "schema": TRACE_SCHEMA_VERSION}
    if meta:
        header.update(meta)
    records.append(header)
    if tracer is not None:
        records.extend(tracer.records())
    if extra_spans is not None:
        records.extend(extra_spans)
    if metrics is not None:
        records.extend(metrics.records())
    return records


def write_trace(
    path: str,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    extra_spans: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write a trace JSONL file; returns the number of records written."""
    records = trace_records(tracer, metrics, meta, extra_spans)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return len(records)


def read_trace(source: Union[str, Iterable[str]]) -> List[Dict[str, Any]]:
    """Read trace records from a path or an iterable of JSONL lines.

    Raises :class:`ValueError` naming the offending line number on a
    malformed record (mirroring ``repro batch`` input handling).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ValueError(
                f"invalid trace record on line {lineno}: {exc!s}"
            ) from exc
        if not isinstance(record, dict) or "kind" not in record:
            raise ValueError(
                f"invalid trace record on line {lineno}: not a kind-tagged object"
            )
        records.append(record)
    return records


def span_records(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [r for r in records if r.get("kind") == "span"]


def metric_records(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [r for r in records if r.get("kind") == "metric"]


def aggregate_spans(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-phase rollup of span records, in first-seen path order.

    Each row aggregates every span sharing a ``path``: call count,
    total/mean wall-clock, summed op-counts and pooled trace extrema.
    This is the table ``repro report`` prints.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for record in span_records(records):
        path = record["path"]
        row = rows.get(path)
        if row is None:
            row = rows[path] = {
                "path": path,
                "depth": record.get("depth", path.count("/")),
                "calls": 0,
                "total_s": 0.0,
                "counts": {},
                "traces": {},
            }
        row["calls"] += 1
        row["total_s"] += record.get("duration_s", 0.0)
        for name, value in record.get("counts", {}).items():
            row["counts"][name] = row["counts"].get(name, 0) + value
        for name, summary in record.get("traces", {}).items():
            pooled = row["traces"].get(name)
            if pooled is None:
                row["traces"][name] = dict(summary)
            else:
                total = pooled["mean"] * pooled["count"] + (
                    summary["mean"] * summary["count"]
                )
                pooled["count"] += summary["count"]
                pooled["mean"] = total / pooled["count"] if pooled["count"] else 0.0
                pooled["max"] = max(pooled["max"], summary["max"])
    out = list(rows.values())
    for row in out:
        row["mean_s"] = row["total_s"] / row["calls"] if row["calls"] else 0.0
    return out
