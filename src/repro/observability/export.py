"""Trace serialization: JSONL writing, reading, aggregation, Prometheus.

A *trace file* is newline-delimited JSON with four record kinds,
distinguishable by their ``kind`` field (schema v2):

- ``{"kind": "meta", ...}`` — one optional header describing the run
  (workload, arguments, schema version);
- ``{"kind": "span", "path": "bandwidth_min/temp_s_sweep", ...}`` —
  one per span, depth-first (see :meth:`Tracer.records`);
- ``{"kind": "metric", "type": "counter" | "gauge" | "histogram", ...}``
  — one per registry instrument (see :meth:`MetricsRegistry.records`);
- ``{"kind": "event", "event": "span" | "metric" | "solve" | "batch" |
  ..., "t": <monotonic seconds>, ...}`` — live-streamed records pushed
  through a :class:`~repro.observability.live.TelemetryHub` *while* a
  run executes (new in v2).

**v1 → v2 migration.**  v2 is a superset: every v1 file is a valid v2
file (v1 simply contains no ``event`` records, and all its histogram
payloads are verbatim value lists rather than bucketed dicts).  Readers
should dispatch on ``kind`` and ignore kinds they don't know; that is
what :func:`read_trace` consumers here do, so v1 traces remain fully
inspectable with ``repro report --trace``.

``repro run --trace``/``repro batch --trace`` write this format,
``repro batch --stream`` streams the ``event`` form live, and
``repro report --trace``/``repro top --trace`` ingest it, so traces
captured in production can be inspected offline with no repo state
beyond the file.
"""

from __future__ import annotations

import json
import warnings
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

from repro.observability.live import TRACE_SCHEMA_VERSION
from repro.observability.metrics import MetricsRegistry
from repro.observability.spans import Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "trace_records",
    "write_trace",
    "read_trace",
    "span_records",
    "metric_records",
    "event_records",
    "aggregate_spans",
    "render_prometheus",
    "render_prometheus_records",
]


def trace_records(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    extra_spans: Optional[Iterable[Dict[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Assemble the full record list for one trace file.

    ``extra_spans`` accepts already-serialized span records (e.g. the
    per-worker spans a batch shipped back) and is appended after the
    tracer's own spans, preserving caller order.
    """
    records: List[Dict[str, Any]] = []
    header: Dict[str, Any] = {"kind": "meta", "schema": TRACE_SCHEMA_VERSION}
    if meta:
        header.update(meta)
    records.append(header)
    if tracer is not None:
        records.extend(tracer.records())
    if extra_spans is not None:
        records.extend(extra_spans)
    if metrics is not None:
        records.extend(metrics.records())
    return records


def write_trace(
    path: str,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict[str, Any]] = None,
    extra_spans: Optional[Iterable[Dict[str, Any]]] = None,
) -> int:
    """Write a trace JSONL file; returns the number of records written."""
    records = trace_records(tracer, metrics, meta, extra_spans)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return len(records)


def read_trace(source: Union[str, Iterable[str]]) -> List[Dict[str, Any]]:
    """Read trace records from a path or an iterable of JSONL lines.

    Raises :class:`ValueError` naming the offending line number on a
    malformed record (mirroring ``repro batch`` input handling) — with
    one deliberate exception: a malformed *final* line is treated as a
    torn tail (a live stream interrupted mid-write, e.g. by a crash or
    by reading while the producer is running), skipped with a
    :class:`UserWarning` instead of failing, so streamed traces are
    always inspectable.  A producer that reopens the file with
    ``StreamingJsonlSink(path, resume=True)`` truncates that torn tail
    before appending (the newline is the commit marker), so resumed
    traces parse clean end to end — certified by the fault-injection
    harness (:mod:`repro.verify.faults`).
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    last_content = 0
    for lineno, line in enumerate(lines, 1):
        if line.strip():
            last_content = lineno
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict) or "kind" not in record:
                raise ValueError("not a kind-tagged object")
        except ValueError as exc:
            if lineno == last_content:
                warnings.warn(
                    f"trace has a torn tail record on line {lineno} "
                    f"(interrupted stream?); skipping it: {exc!s}",
                    UserWarning,
                    stacklevel=2,
                )
                break
            raise ValueError(
                f"invalid trace record on line {lineno}: {exc!s}"
            ) from exc
        records.append(record)
    return records


def span_records(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [r for r in records if r.get("kind") == "span"]


def metric_records(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [r for r in records if r.get("kind") == "metric"]


def event_records(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Live-streamed ``event`` records (schema v2)."""
    return [r for r in records if r.get("kind") == "event"]


def aggregate_spans(records: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-phase rollup of span records, in first-seen path order.

    Each row aggregates every span sharing a ``path``: call count,
    total/mean wall-clock, summed op-counts and pooled trace extrema.
    This is the table ``repro report`` prints.
    """
    rows: Dict[str, Dict[str, Any]] = {}
    for record in span_records(records):
        path = record["path"]
        row = rows.get(path)
        if row is None:
            row = rows[path] = {
                "path": path,
                "depth": record.get("depth", path.count("/")),
                "calls": 0,
                "total_s": 0.0,
                "counts": {},
                "traces": {},
            }
        row["calls"] += 1
        row["total_s"] += record.get("duration_s", 0.0)
        for name, value in record.get("counts", {}).items():
            row["counts"][name] = row["counts"].get(name, 0) + value
        for name, summary in record.get("traces", {}).items():
            pooled = row["traces"].get(name)
            if pooled is None:
                row["traces"][name] = dict(summary)
            else:
                total = pooled["mean"] * pooled["count"] + (
                    summary["mean"] * summary["count"]
                )
                pooled["count"] += summary["count"]
                pooled["mean"] = total / pooled["count"] if pooled["count"] else 0.0
                pooled["max"] = max(pooled["max"], summary["max"])
    out = list(rows.values())
    for row in out:
        row["mean_s"] = row["total_s"] / row["calls"] if row["calls"] else 0.0
    return out


# ----------------------------------------------------------------------
# Prometheus text-format exposition
# ----------------------------------------------------------------------

#: Histogram summary quantiles exposed to Prometheus, as
#: (quantile label, summary key) pairs.
_PROM_QUANTILES = (("0.5", "p50"), ("0.9", "p90"), ("0.95", "p95"), ("0.99", "p99"))


def _prom_name(name: str) -> str:
    """Sanitize a dotted instrument name into a Prometheus metric name."""
    safe = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if not safe or safe[0].isdigit():
        safe = "_" + safe
    return "repro_" + safe


def _prom_number(value: float) -> str:
    """Format a sample value; integral floats print without exponent."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def render_prometheus_records(records: Iterable[Mapping[str, Any]]) -> str:
    """Render metric records to Prometheus text exposition format.

    Counters become ``<name>_total`` counters, gauges stay gauges, and
    histograms are exposed as Prometheus *summary* families (quantile
    series from the nearest-rank percentiles, plus ``_sum``/``_count``).
    Input is the :func:`metric_records` shape, so a registry snapshot
    and a trace file read back render identically.
    """
    lines: List[str] = []
    for record in records:
        if record.get("kind") != "metric":
            continue
        kind = record.get("type")
        name = _prom_name(str(record.get("name", "")))
        if kind == "counter":
            lines.append(f"# TYPE {name}_total counter")
            lines.append(f"{name}_total {_prom_number(record.get('value', 0.0))}")
        elif kind == "gauge":
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_prom_number(record.get('value', 0.0))}")
        elif kind == "histogram":
            summary = record.get("summary", {})
            lines.append(f"# TYPE {name} summary")
            for quantile, key in _PROM_QUANTILES:
                lines.append(
                    f'{name}{{quantile="{quantile}"}} '
                    f"{_prom_number(summary.get(key, 0.0))}"
                )
            lines.append(f"{name}_sum {_prom_number(summary.get('sum', 0.0))}")
            lines.append(f"{name}_count {_prom_number(summary.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_prometheus(metrics: MetricsRegistry) -> str:
    """Render a live registry to Prometheus text exposition format."""
    return render_prometheus_records(metrics.records())
