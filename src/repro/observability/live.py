"""Push-based live telemetry: the hub, sinks and ring buffers.

The PR 2 observability layer is post-hoc — spans and metrics buffer in
memory and dump one JSONL file at exit.  A long-lived service (ROADMAP
item 1) needs the opposite shape: components *push* events as they
happen, and pluggable subscribers decide what to do with them —
stream them to disk (:class:`StreamingJsonlSink`), keep a bounded
recent window in memory (:class:`RingBufferSubscriber`), or fold them
into sliding-window SLOs (:class:`repro.observability.slo.SloTracker`).

Like the tracer, the hub has a zero-overhead null twin: hot paths guard
every publish with ``if hub.enabled:`` so disabled telemetry costs one
attribute load and a branch (lint rule REPRO012 enforces the guard in
``core/``/``engine/``).

Events are plain dicts with a ``"kind": "event"`` discriminator — the
trace schema v2 record type (see :mod:`repro.observability.export`).
A monotonic timestamp ``"t"`` is stamped at publish time.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, TextIO

from repro.verify.markers import concurrent_entry, shared_state

#: Trace schema version, bumped when the record layout changes
#: incompatibly.  v1 (PR 2): ``meta``/``span``/``metric`` records.
#: v2 (this module): adds the ``event`` record kind for live streams
#: and bucketed histogram payloads.  Defined here (the leaf module of
#: the package) so both spans and export can import it cycle-free;
#: :mod:`repro.observability.export` re-exports it.
TRACE_SCHEMA_VERSION = 2

Event = Dict[str, Any]


class TelemetrySubscriber:
    """Interface for hub subscribers.  Subclass or duck-type."""

    __slots__ = ()

    def emit(self, event: Event) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush/release resources.  Default: nothing to do."""


class NullTelemetryHub:
    """The disabled hub: every operation is a no-op.

    ``enabled`` is False so guarded call sites
    (``if hub.enabled: hub.publish(...)``) skip even building the event
    dict.  A single shared instance, :data:`NULL_HUB`, is the default
    everywhere a hub is accepted.
    """

    __slots__ = ()

    enabled = False

    def publish(self, event: Event) -> None:
        """Discard the event."""

    def publish_span(self, record: Event) -> None:
        """Discard the span record."""

    def publish_metric(self, name: str, kind: str, value: float) -> None:
        """Discard the metric delta."""

    def subscribe(self, subscriber: TelemetrySubscriber) -> None:
        raise RuntimeError("cannot subscribe to the null telemetry hub")

    def close(self) -> None:
        """Nothing to close."""


#: Shared do-nothing hub (the default wherever a hub is accepted).
NULL_HUB = NullTelemetryHub()


@shared_state(lock="_lock")
class TelemetryHub:
    """Fan events out to subscribers as they happen.

    The hub itself is dumb on purpose: it stamps a monotonic timestamp
    and calls each subscriber's ``emit`` synchronously, in subscription
    order, on the publishing thread.  Subscribers own their buffering
    and durability policies.  A subscriber that raises is dropped from
    the fan-out (telemetry must never take down a solve) and the error
    is remembered on :attr:`errors`.

    **Thread safety.**  One reentrant ``_lock`` (declared via
    ``@shared_state``) serializes publish/subscribe/close, so events
    from concurrent solver threads fan out whole — subscribers see one
    complete event at a time, never an interleaving.  The lock is held
    *during* the fan-out: emit handlers therefore run serialized, and a
    handler may publish back into the hub (the lock is reentrant)
    without deadlocking.  Keep handlers short — they sit on the hot
    publish path by design.
    """

    __slots__ = ("enabled", "errors", "_subscribers", "_clock", "_lock")

    def __init__(
        self,
        subscribers: Sequence[TelemetrySubscriber] = (),
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.enabled = True
        self.errors: List[str] = []
        self._subscribers: List[TelemetrySubscriber] = list(subscribers)
        self._clock = clock
        self._lock = threading.RLock()

    @concurrent_entry
    def subscribe(self, subscriber: TelemetrySubscriber) -> None:
        with self._lock:
            self._subscribers.append(subscriber)

    @property
    def subscribers(self) -> Sequence[TelemetrySubscriber]:
        with self._lock:
            return tuple(self._subscribers)

    @concurrent_entry
    def publish(self, event: Event) -> None:
        """Stamp ``t`` (monotonic seconds) and fan out to subscribers."""
        if "t" not in event:
            event["t"] = self._clock()
        with self._lock:
            dead: List[TelemetrySubscriber] = []
            for subscriber in self._subscribers:
                try:
                    subscriber.emit(event)
                except Exception as exc:  # repro-lint: disable=REPRO021 subscriber isolation: any exception is recorded in hub.errors and the subscriber dropped
                    dead.append(subscriber)
                    self.errors.append(f"{type(subscriber).__name__}: {exc}")
            for subscriber in dead:  # pragma: no cover - defensive
                self._subscribers.remove(subscriber)

    @concurrent_entry
    def publish_span(self, record: Event) -> None:
        """Publish a span-close event (record from ``Span.to_record``)."""
        event = dict(record)
        event["kind"] = "event"
        event["event"] = "span"
        self.publish(event)

    @concurrent_entry
    def publish_metric(self, name: str, kind: str, value: float) -> None:
        """Publish a metric-delta event (counter inc, gauge set, observe)."""
        self.publish(
            {"kind": "event", "event": "metric", "metric": kind,
             "name": name, "value": value}
        )

    @concurrent_entry
    def close(self) -> None:
        with self._lock:
            for subscriber in self._subscribers:
                subscriber.close()


def _truncate_torn_tail(path: str) -> int:
    """Drop a trailing partial line (no final newline) from ``path``.

    The streaming sink's commit marker is the line terminator: a crash
    mid-write leaves at most one unterminated tail record, which a
    resuming producer must not append fresh data onto.  Returns the
    number of bytes dropped (0 when the file is empty or ends cleanly).
    """
    with open(path, "rb+") as fh:
        fh.seek(0, os.SEEK_END)
        size = fh.tell()
        if size == 0:
            return 0
        fh.seek(size - 1)
        if fh.read(1) == b"\n":
            return 0
        # Scan backwards for the last committed line end.
        keep = 0
        pos = size
        chunk = 4096
        while pos > 0:
            start = max(0, pos - chunk)
            fh.seek(start)
            data = fh.read(pos - start)
            newline = data.rfind(b"\n")
            if newline != -1:
                keep = start + newline + 1
                break
            pos = start
        fh.truncate(keep)
        return size - keep


@shared_state(lock="_lock")
class StreamingJsonlSink(TelemetrySubscriber):
    """Crash-safe streaming JSONL sink: one complete line per event.

    Writes are line-buffered — each event is serialized to a single
    ``\\n``-terminated line and flushed immediately, so a crash can tear
    at most the final line (which schema-v2 ``read_trace`` tolerates).
    A fresh (or empty) file gets a schema-v2 meta header first; with
    ``resume=True`` an existing non-empty file is appended to without a
    second header, so a restarted producer continues the same trace.
    The line terminator is the commit marker: on resume, a trailing
    *unterminated* record (the torn tail a crash mid-write leaves) is
    truncated away first — it was never committed — so a resumed trace
    is fully well-formed JSONL, not a torn record with fresh data glued
    onto it.

    Writes serialize on the sink's own ``_lock``: even when the sink is
    shared by several hubs (or written directly from several threads),
    records land whole — serialization, write, flush and the
    ``lines_written`` count are one atomic step per event.
    """

    __slots__ = ("path", "lines_written", "_fh", "_lock")

    def __init__(
        self,
        path: str,
        *,
        meta: Optional[Dict[str, Any]] = None,
        resume: bool = False,
    ) -> None:
        self.path = path
        self.lines_written = 0
        self._lock = threading.RLock()
        if resume and os.path.exists(path):
            _truncate_torn_tail(path)
        fresh = not resume or not (
            os.path.exists(path) and os.path.getsize(path) > 0
        )
        mode = "w" if fresh else "a"
        self._fh: Optional[TextIO] = io.open(
            path, mode, encoding="utf-8", buffering=1
        )
        try:
            if fresh:
                header: Dict[str, Any] = {
                    "kind": "meta",
                    "schema": TRACE_SCHEMA_VERSION,
                    "stream": True,
                }
                if meta:
                    header.update(meta)
                self._write_line(header)
        except BaseException:
            # A failed header write (disk full, unserializable meta)
            # must not leak the just-opened handle.
            self.close()
            raise

    def _write_line(self, record: Dict[str, Any]) -> None:
        with self._lock:
            fh = self._fh
            if fh is None:
                raise ValueError(f"streaming sink {self.path!r} is closed")
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            self.lines_written += 1

    @concurrent_entry
    def emit(self, event: Event) -> None:
        self._write_line(event)

    @concurrent_entry
    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "StreamingJsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RingBufferSubscriber(TelemetrySubscriber):
    """Bounded in-memory event buffer: keeps the most recent events.

    Backs the sliding-window SLO tracker and ``repro top`` — O(capacity)
    memory no matter how long the producer runs.
    """

    __slots__ = ("_events",)

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"ring buffer capacity must be positive, got {capacity}")
        self._events: Deque[Event] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        maxlen = self._events.maxlen
        assert maxlen is not None
        return maxlen

    def emit(self, event: Event) -> None:
        self._events.append(event)

    def events(self) -> List[Event]:
        """Snapshot of buffered events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class CallbackSubscriber(TelemetrySubscriber):
    """Adapter: wrap a plain callable as a subscriber (handy in tests)."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[Event], None]) -> None:
        self._fn = fn

    def emit(self, event: Event) -> None:
        self._fn(event)
