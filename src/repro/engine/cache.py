"""Prime-structure and result caching across related queries.

Production traffic rarely asks one isolated question about a chain: the
inverse solvers probe many bounds during a search, the Figure-2 sweeps
walk a whole grid of ``K`` values, and batch workloads repeat popular
``(chain, K)`` pairs.  The seed implementation re-derives prefix sums,
prime subpaths and the edge reduction from scratch on every call.  This
module adds the shared-preprocessing layer:

- chains are identified by content fingerprint
  (:meth:`repro.graphs.chain.Chain.fingerprint`), so equal chains —
  even deserialized copies in different worker processes — share cache
  entries;
- per chain, the float64 prefix/beta arrays are converted once and
  reused by every NumPy-kernel call;
- computed prime structures are kept in an LRU keyed by
  ``(fingerprint, K)``, together with the Algorithm-4.1 result computed
  from them (the optimal cut is a pure function of the structure);
- **monotone warm-start:** a structure computed at bound ``K`` remains
  valid for every ``K'`` in ``[K, min_prime_weight)`` — raising the
  bound only changes a minimal critical window once it stops exceeding
  the bound, and the smallest window weight is exactly
  ``min_prime_weight``.  Sorted-``K`` sweeps therefore hit the cache on
  every probe that lands inside the previous structure's stability
  interval, turning a 100-point sweep into a handful of real solves.

The cache is *exact*: a served result is always element-for-element
identical to a fresh pure-Python computation (property-tested).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.core.bandwidth import ChainCutResult, bandwidth_min
from repro.core.prime_subpaths import compute_prime_structure
from repro.engine.kernels import validate_bound_array
from repro.engine.plan import CompiledChainPlan, compile_chain
from repro.graphs.chain import Chain
from repro.observability.live import NULL_HUB
from repro.verify.markers import concurrent_entry, shared_state

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.observability import MetricsRegistry, Tracer
    from repro.observability.spans import HubLike


class CacheStats:
    """Hit/miss accounting, exposed for tests and capacity planning."""

    __slots__ = ("hits", "interval_hits", "misses", "evictions")

    def __init__(
        self,
        hits: int = 0,
        interval_hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
    ) -> None:
        self.hits = hits
        self.interval_hits = interval_hits
        self.misses = misses
        self.evictions = evictions

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, interval_hits={self.interval_hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheStats):
            return NotImplemented
        return (
            self.hits == other.hits
            and self.interval_hits == other.interval_hits
            and self.misses == other.misses
            and self.evictions == other.evictions
        )

    @property
    def lookups(self) -> int:
        return self.hits + self.interval_hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return (self.hits + self.interval_hits) / total if total else 0.0


class _CachedSolve:
    """One cached prime structure plus the solves derived from it.

    ``valid_from``/``valid_until`` delimit the half-open bound interval
    over which the structure (and therefore every derived result) is
    unchanged.  ``results`` memoizes Algorithm 4.1's answer per search
    strategy — the sweep is a pure function of the structure.
    """

    __slots__ = ("structure", "valid_from", "valid_until", "results")

    def __init__(self, structure: Any, valid_from: float) -> None:
        self.structure = structure
        self.valid_from = valid_from
        self.valid_until: float = structure.min_prime_weight()
        self.results: Dict[str, ChainCutResult] = {}

    def covers(self, bound: float) -> bool:
        return self.valid_from <= bound < self.valid_until


class _ChainEntry:
    """Per-fingerprint state: converted arrays plus the structure LRU."""

    __slots__ = ("chain", "prefix", "beta", "alpha_max", "structures")

    def __init__(self, chain: Chain, use_numpy: bool) -> None:
        self.chain = chain
        self.alpha_max = chain.max_vertex_weight()
        self.prefix: Optional[Any] = None
        self.beta: Optional[Any] = None
        if use_numpy:
            from repro.engine import kernels

            self.prefix = kernels.prefix_array(chain)
            self.beta = kernels.beta_array(chain)
        # (bound, apply_reduction) -> _CachedSolve, in LRU order.
        self.structures: "OrderedDict[Tuple[float, bool], _CachedSolve]" = (
            OrderedDict()
        )


@shared_state(lock="_lock")
class PrimeStructureCache:
    """LRU of prime structures and solves, keyed by chain fingerprint.

    Parameters
    ----------
    max_chains:
        Number of distinct chains kept (least recently used evicted).
    max_structures_per_chain:
        Structures kept per chain; also bounds the linear scan the
        interval warm-start performs.
    backend:
        ``"numpy"`` (default when available) or ``"python"`` — which
        kernels build structures on a miss.
    hub:
        A live :class:`~repro.observability.TelemetryHub`, or ``None``
        for the no-op default.  With a live hub, structure builds
        (misses) and evictions publish ``cache`` events — the feed the
        ``repro top`` cache panel and capacity planning watch.

    **Thread safety.**  The cache is shared across request threads in
    the upcoming ``repro serve`` arc, so every mutating entry point
    (``structure``/``solve``/``clear``) serializes on one reentrant
    ``_lock`` declared via ``@shared_state`` — the concurrency analyzer
    (REPRO013) and the race-hammer harness both key off that
    declaration.  Misses compute the structure while holding the lock:
    exactness beats miss parallelism here, because a duplicated build
    would double-count ``misses`` and tear the LRU order.
    """

    __slots__ = (
        "backend",
        "max_chains",
        "max_structures_per_chain",
        "stats",
        "hub",
        "_entries",
        "_lock",
    )

    def __init__(
        self,
        max_chains: int = 64,
        max_structures_per_chain: int = 32,
        backend: Optional[str] = None,
        hub: Optional["HubLike"] = None,
    ) -> None:
        if backend is None:
            from repro.engine.kernels import HAVE_NUMPY

            backend = "numpy" if HAVE_NUMPY else "python"
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.max_chains = max_chains
        self.max_structures_per_chain = max_structures_per_chain
        self.stats = CacheStats()
        self.hub = hub if hub is not None else NULL_HUB
        self._entries: "OrderedDict[str, _ChainEntry]" = OrderedDict()
        self._lock = threading.RLock()

    def _publish_cache_event(self, action: str, bound: float) -> None:
        """Publish one ``cache`` event (callers guard on ``hub.enabled``)."""
        if self.hub.enabled:
            self.hub.publish(
                {
                    "kind": "event",
                    "event": "cache",
                    "action": action,
                    "bound": bound,
                    "hits": self.stats.hits,
                    "interval_hits": self.stats.interval_hits,
                    "misses": self.stats.misses,
                    "evictions": self.stats.evictions,
                    "hit_rate": self.stats.hit_rate,
                }
            )

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _entry(self, chain: Chain) -> _ChainEntry:
        key = chain.fingerprint()
        entry = self._entries.get(key)
        if entry is None:
            entry = _ChainEntry(chain, use_numpy=self.backend == "numpy")
            self._entries[key] = entry
            if len(self._entries) > self.max_chains:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
                if self.hub.enabled:
                    self._publish_cache_event("evict_chain", 0.0)
        else:
            self._entries.move_to_end(key)
        return entry

    def _lookup(
        self, entry: _ChainEntry, bound: float, apply_reduction: bool
    ) -> Optional[_CachedSolve]:
        exact = entry.structures.get((bound, apply_reduction))
        if exact is not None:
            entry.structures.move_to_end((bound, apply_reduction))
            self.stats.hits += 1
            return exact
        # Monotone warm-start: any cached structure whose stability
        # interval contains the bound serves it exactly.
        for (_, reduced), cached in entry.structures.items():
            if reduced == apply_reduction and cached.covers(bound):
                self.stats.interval_hits += 1
                return cached
        return None

    def _compute(
        self,
        entry: _ChainEntry,
        bound: float,
        apply_reduction: bool,
        tracer: Optional["Tracer"] = None,
    ) -> _CachedSolve:
        if self.backend == "numpy":
            from repro.engine.kernels import compute_prime_structure_numpy

            structure = compute_prime_structure_numpy(
                entry.chain,
                bound,
                apply_reduction=apply_reduction,
                prefix=entry.prefix,
                beta=entry.beta,
                tracer=tracer,
            )
        else:
            structure = compute_prime_structure(
                entry.chain, bound, apply_reduction=apply_reduction,
                tracer=tracer,
            )
        cached = _CachedSolve(structure, bound)
        entry.structures[(bound, apply_reduction)] = cached
        evicted = False
        if len(entry.structures) > self.max_structures_per_chain:
            entry.structures.popitem(last=False)
            self.stats.evictions += 1
            evicted = True
        self.stats.misses += 1
        if self.hub.enabled:
            self._publish_cache_event("miss", bound)
            if evicted:
                self._publish_cache_event("evict", bound)
        return cached

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @concurrent_entry
    def structure(
        self,
        chain: Chain,
        bound: float,
        apply_reduction: bool = True,
        tracer: Optional["Tracer"] = None,
    ) -> Any:
        """The prime structure for ``(chain, bound)`` — cached, warm-started,
        or freshly computed with the configured backend."""
        with self._lock:
            entry = self._entry(chain)
            validate_bound_array(entry.alpha_max, bound)
            cached = self._lookup(entry, bound, apply_reduction)
            if cached is None:
                cached = self._compute(
                    entry, bound, apply_reduction, tracer=tracer
                )
            return cached.structure

    @concurrent_entry
    def solve(
        self,
        chain: Chain,
        bound: float,
        *,
        apply_reduction: bool = True,
        search: str = "binary",
        tracer: Optional["Tracer"] = None,
    ) -> ChainCutResult:
        """Algorithm 4.1 through the cache.

        The optimal cut depends only on the prime structure, so a cached
        structure's memoized result is returned directly; otherwise the
        TEMP_S sweep runs once over the (cached or fresh) structure and
        its result is memoized for the structure's whole stability
        interval.

        An enabled ``tracer`` records a ``cache_solve`` span whose
        ``outcome`` attribute distinguishes exact hits, interval
        (warm-start) hits and misses, and whether a sweep actually ran;
        ``None``/disabled tracing costs one branch.
        """
        if tracer is None or not tracer.enabled:
            return self._solve_impl(chain, bound, apply_reduction, search)
        with tracer.span(
            "cache_solve", n=chain.num_tasks, bound=bound, search=search
        ) as span:
            before = (
                self.stats.hits, self.stats.interval_hits, self.stats.misses,
            )
            result = self._solve_impl(
                chain, bound, apply_reduction, search, tracer=tracer, span=span
            )
            hits, interval_hits, misses = (
                self.stats.hits - before[0],
                self.stats.interval_hits - before[1],
                self.stats.misses - before[2],
            )
            span.set(
                "outcome",
                "miss" if misses else ("interval_hit" if interval_hits else "hit"),
            )
            span.add("cache_hits", hits)
            span.add("cache_interval_hits", interval_hits)
            span.add("cache_misses", misses)
        return result

    def _solve_impl(
        self,
        chain: Chain,
        bound: float,
        apply_reduction: bool,
        search: str,
        tracer: Optional[Any] = None,
        span: Optional[Any] = None,
    ) -> ChainCutResult:
        with self._lock:
            entry = self._entry(chain)
            validate_bound_array(entry.alpha_max, bound)
            cached = self._lookup(entry, bound, apply_reduction)
            if cached is None:
                cached = self._compute(
                    entry, bound, apply_reduction, tracer=tracer
                )
            result = cached.results.get(search)
            if result is None:
                if span is not None:
                    span.set("sweep_ran", True)
                if search == "binary":
                    from repro.engine.kernels import bandwidth_sweep

                    cut, weight = bandwidth_sweep(cached.structure)
                    result = ChainCutResult(chain, cut, weight)
                else:
                    result = bandwidth_min(
                        chain,
                        cached.valid_from,
                        apply_reduction=apply_reduction,
                        search=search,
                        structure=cached.structure,
                    )
                cached.results[search] = result
            elif span is not None:
                span.set("sweep_ran", False)
        if "REPRO_VERIFY" in os.environ:
            # Self-certification (REPRO_VERIFY=1): certificate-check the
            # served result and cross-check it against a fresh pure-Python
            # solve at the *queried* bound — exactly the paths (kernel,
            # cached, warm-started) where a stale or divergent answer
            # could otherwise slip through.  Imported lazily: verify sits
            # above the engine in the layering.
            from repro.verify.runtime import maybe_verify_cache_solve

            maybe_verify_cache_solve(
                chain, bound, result, apply_reduction=apply_reduction
            )
        return result

    @concurrent_entry
    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return sum(len(e.structures) for e in self._entries.values())


@shared_state(lock="_lock")
class PlanCache:
    """LRU of :class:`~repro.engine.plan.CompiledChainPlan` by fingerprint.

    The compiled-plan twin of :class:`PrimeStructureCache`: repeated
    sweeps over the same chain — successive ``solve_sweep`` calls,
    fingerprint-grouped ``solve_many`` batches, the Pareto-frontier
    probe loop — reuse one plan, so its frozen arrays *and* its memo of
    built structures amortize across calls.  Sharing is exact for the
    same reason the structure cache is: equal fingerprints mean equal
    chain content, and a plan's answers are pure functions of that
    content.

    ``interval_hits`` on :attr:`stats` stays zero — stability-interval
    reuse happens inside each plan's own memo, not at this layer.

    Thread-safe under one reentrant ``_lock`` (``@shared_state``), the
    same discipline as :class:`PrimeStructureCache`.  Note the *plans*
    it hands out are not themselves locked: concurrent callers must not
    drive one plan's lazy memo from two threads (the serve arc shards
    sweeps per thread instead).
    """

    __slots__ = ("max_plans", "stats", "_plans", "_lock")

    def __init__(self, max_plans: int = 16) -> None:
        self.max_plans = max(1, int(max_plans))
        self.stats = CacheStats()
        self._plans: "OrderedDict[str, CompiledChainPlan]" = OrderedDict()
        self._lock = threading.RLock()

    @concurrent_entry
    def get(
        self,
        chain: Chain,
        *,
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        hub: Optional["HubLike"] = None,
    ) -> CompiledChainPlan:
        """The cached plan for ``chain``, compiling one on first sight.

        A cache hit rebinds the plan's ``tracer``/``metrics``/``hub`` to
        the caller's so telemetry always lands in the live registry
        (plans outlive the engines that created them when caches are
        shared).
        """
        key = chain.fingerprint()
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                plan = compile_chain(
                    chain, tracer=tracer, metrics=metrics, hub=hub
                )
                self._plans[key] = plan
                self.stats.misses += 1
                if len(self._plans) > self.max_plans:
                    self._plans.popitem(last=False)
                    self.stats.evictions += 1
            else:
                self._plans.move_to_end(key)
                plan.tracer = tracer
                plan.metrics = metrics
                plan.hub = hub or NULL_HUB
                self.stats.hits += 1
            return plan

    @concurrent_entry
    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._plans)

    @property
    def occupancy(self) -> float:
        """Fill fraction ``len / max_plans`` in ``[0, 1]`` — the
        plan-cache gauge ``repro top`` renders."""
        return len(self._plans) / self.max_plans
