"""Compiled chain plans: answer many queries on one chain in one pass.

Algorithm 4.1 splits a query into an ``O(n)`` structural phase (prime
subpaths, membership intervals, the non-redundant edge reduction) and an
``O(p log q)`` TEMP_S sweep.  The engine cache (PR 1) amortizes the
structural phase *per bound*; this module amortizes the whole pipeline
*per chain*: :func:`compile_chain` freezes the chain into contiguous
arrays once (prefix weights, β table), and the resulting
:class:`CompiledChainPlan` answers whole vectors of queries —

- :meth:`CompiledChainPlan.solve_bounds` takes an array of bounds ``ks``
  and returns the optimal bandwidth for every one.  Bounds are sorted
  and grouped by *stability interval* (a structure built at ``K`` stays
  valid for every ``K' ∈ [K, min prime weight)`` — the PR 1 warm-start
  invariant), each distinct structure is built once with the batched
  kernels of :mod:`repro.engine.kernels`, and the TEMP_S transitions run
  through :func:`~repro.engine.kernels.sweep_min_weight`, the
  arena-free form of the sweep.  No per-query Python dispatch survives:
  one argsort, one group walk, one sweep per *distinct structure*.
- :meth:`CompiledChainPlan.solve_beta_sweep` answers β-perturbation
  studies: ``Q`` alternative edge-weight rows against one bound.  The
  prime windows and edge-membership classes depend only on ``alpha``,
  so the plan freezes them once and evaluates the interval-cover
  recurrence for all rows simultaneously with ``np.minimum.reduceat``
  over the query axis — the one place the TEMP_S recurrence is a
  literal batched array program.

Exactness is non-negotiable: both sweeps evaluate the same float
expressions in the same order as the scalar reference, so results are
bit-identical to per-call :func:`repro.core.bandwidth.bandwidth_min`
(the property suite and the ``REPRO_VERIFY=1`` cross-check below hold
this).  With ``REPRO_VERIFY=1`` every sweep answer — every element of
the output, not one per structure — is certified with
:func:`repro.verify.runtime.verify_cache_solve` against the pure-Python
solver.

Plans are cached per chain fingerprint by
:class:`repro.engine.cache.PlanCache` and reached through
:meth:`repro.engine.batch.PartitionEngine.solve_sweep`.
"""

from __future__ import annotations

import os
from bisect import bisect_right, insort
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, List, Optional, Sequence, Tuple, Union

from repro.engine.kernels import (
    beta_array,
    membership_intervals,
    prefix_array,
    prime_windows,
    reduced_class_arrays,
    reduced_edge_arrays,
    require_numpy,
    sweep_min_cut,
    sweep_min_weight,
    validate_bound_array,
)
from repro.graphs.chain import Chain
from repro.observability.live import NULL_HUB
from repro.verify.contracts import complexity

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np
except ImportError:  # pragma: no cover - exercised on minimal installs
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.observability import MetricsRegistry, Tracer

__all__ = ["CompiledChainPlan", "compile_chain"]

#: Queries whose bounds land in an already-built stability interval are
#: served from this per-plan memo; beyond this many distinct intervals
#: the oldest-built entries are dropped (the memo is an accelerator, not
#: a correctness structure).
DEFAULT_MAX_STRUCTURES = 128


class _FrozenStructure:
    """One built prime structure, frozen to what queries consume.

    ``valid_from`` is the bound the structure was built at and
    ``valid_until`` its minimum prime weight: any bound in
    ``[valid_from, valid_until)`` yields the identical structure, hence
    the identical optimal cut (the PR 1 stability-interval invariant).
    The optimal *weight* is computed eagerly (it is what sweeps serve);
    the cut is reconstructed on first demand and memoized.
    """

    __slots__ = ("valid_from", "valid_until", "weight", "cut", "p", "r")

    def __init__(
        self, valid_from: float, valid_until: float, weight: float, p: int, r: int
    ) -> None:
        self.valid_from = valid_from
        self.valid_until = valid_until
        self.weight = weight
        self.cut: Optional[List[int]] = None
        self.p = p
        self.r = r

    def covers(self, bound: float) -> bool:
        return self.valid_from <= bound < self.valid_until

    def __repr__(self) -> str:
        return (
            f"_FrozenStructure([{self.valid_from:g}, {self.valid_until:g}), "
            f"weight={self.weight:g}, p={self.p}, r={self.r})"
        )


class CompiledChainPlan:
    """A chain compiled for multi-query solving; see the module docstring.

    Build one with :func:`compile_chain` (or, preferably, through
    :meth:`repro.engine.batch.PartitionEngine.solve_sweep`, which caches
    plans by chain fingerprint).  A plan owns the chain's contiguous
    arrays plus a memo of frozen structures keyed by stability interval,
    so repeated sweeps over overlapping bound ranges pay the structural
    phase once per *interval*, not once per call.
    """

    __slots__ = (
        "chain",
        "backend",
        "tracer",
        "metrics",
        "hub",
        "max_structures",
        "_prefix",
        "_beta",
        "_alpha_max",
        "_memo",
        "_starts",
    )

    def __init__(
        self,
        chain: Chain,
        *,
        backend: str = "numpy",
        tracer: Optional["Tracer"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        hub: Any = None,
        max_structures: int = DEFAULT_MAX_STRUCTURES,
    ) -> None:
        require_numpy()
        if backend not in ("numpy",):
            raise ValueError(
                f"compiled plans require the array backend, got {backend!r}"
            )
        self.chain = chain
        self.backend = backend
        self.tracer = tracer
        self.metrics = metrics
        self.hub = hub or NULL_HUB
        self.max_structures = max(1, int(max_structures))
        self._prefix = prefix_array(chain)
        self._beta = beta_array(chain)
        self._alpha_max = chain.max_vertex_weight()
        # Frozen structures by stability interval.  Intervals are built
        # only on lookup misses, so they are pairwise disjoint and the
        # sorted-start bisect below has a unique candidate per bound.
        self._memo: "OrderedDict[float, _FrozenStructure]" = OrderedDict()
        self._starts: List[float] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The compiled chain's content hash (the plan-cache key)."""
        return self.chain.fingerprint()

    def __len__(self) -> int:
        """Number of memoized frozen structures."""
        return len(self._memo)

    def __repr__(self) -> str:
        return (
            f"CompiledChainPlan(n={self.chain.num_tasks}, "
            f"structures={len(self._memo)})"
        )

    # ------------------------------------------------------------------
    # Structure builds
    # ------------------------------------------------------------------
    def _count(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _windows(self, bound: float) -> Tuple["np.ndarray", "np.ndarray", float]:
        """Prime windows for ``bound`` plus the stability-interval end."""
        prefix = self._prefix
        first_tasks, last_tasks = prime_windows(prefix, bound)
        if first_tasks.shape[0] == 0:
            return first_tasks, last_tasks, float("inf")
        prime_weights = prefix[last_tasks + 1] - prefix[first_tasks]
        return first_tasks, last_tasks, float(prime_weights.min())

    def _build_arrays(
        self, bound: float
    ) -> Tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray", int, float]:
        """The reduced-edge columns for ``bound``, plus ``p`` and the
        stability-interval end — the cut-capable form.

        Exactly the pipeline of
        :func:`~repro.engine.kernels.compute_prime_structure_numpy`,
        inlined against the plan's frozen ``prefix``/``beta`` arrays so
        a 100-bound sweep never re-validates or re-converts anything.
        Only cut reconstruction needs the representative edge indices;
        the weight path in :meth:`_build` uses the cheaper
        :func:`~repro.engine.kernels.reduced_class_arrays`.
        """
        first_tasks, last_tasks, valid_until = self._windows(bound)
        p = int(first_tasks.shape[0])
        if p == 0:
            empty = np.empty(0, dtype=np.int64)
            return (
                empty, np.empty(0, dtype=np.float64), empty, empty, 0, valid_until
            )
        lo, hi = membership_intervals(
            first_tasks, last_tasks - 1, self.chain.num_edges
        )
        edge_index, edge_weight, edge_first, edge_last = reduced_edge_arrays(
            self._beta, lo, hi, apply_reduction=True
        )
        return edge_index, edge_weight, edge_first, edge_last, p, valid_until

    def _build(self, bound: float) -> _FrozenStructure:
        """Build, memoize and return the frozen structure at ``bound``."""
        first_tasks, last_tasks, valid_until = self._windows(bound)
        p = int(first_tasks.shape[0])
        if p == 0:
            r = 0
            weight = 0.0
        else:
            edge_weight, edge_first, edge_last = reduced_class_arrays(
                self._beta, first_tasks, last_tasks, self.chain.num_edges
            )
            r = int(edge_weight.shape[0])
            head = int(np.searchsorted(edge_first, 1))
            weight = sweep_min_weight(
                edge_weight.tolist(),
                edge_first.tolist(),
                edge_last.tolist(),
                head,
            )
        frozen = _FrozenStructure(bound, valid_until, weight, p, r)
        if p == 0:
            frozen.cut = []
        self._remember(frozen)
        self._count("engine.plan.structures.built")
        if self.hub.enabled:
            self.hub.publish(
                {
                    "kind": "event",
                    "event": "plan",
                    "action": "structure_built",
                    "bound": bound,
                    "n": self.chain.num_tasks,
                    "structures": len(self._memo),
                }
            )
        return frozen

    def _remember(self, frozen: _FrozenStructure) -> None:
        # REPRO016/017: maintain the sorted start index incrementally
        # (insort is O(k)) instead of re-sorting the whole memo — and
        # rebuilding the list — on every insert.
        memo = self._memo
        starts = self._starts
        while len(memo) >= self.max_structures:
            evicted, _ = memo.popitem(last=False)
            starts.remove(evicted)
        if frozen.valid_from not in memo:
            insort(starts, frozen.valid_from)
        memo[frozen.valid_from] = frozen

    def _lookup(self, bound: float) -> Optional[_FrozenStructure]:
        """The memoized structure whose stability interval covers ``bound``.

        Intervals are disjoint (see ``__init__``), so the rightmost
        start at or below ``bound`` is the only possible cover.
        """
        starts = self._starts
        if not starts:
            return None
        pos = bisect_right(starts, bound) - 1
        if pos < 0:
            return None
        frozen = self._memo[starts[pos]]
        return frozen if frozen.covers(bound) else None

    def _cut_for(self, frozen: _FrozenStructure) -> List[int]:
        """The optimal cut for a frozen structure, reconstructed lazily.

        The weight-only sweep drops the solution arena; when a caller
        (or the verifier) wants the cut itself, the structure is rebuilt
        at ``valid_from`` — deterministic, so the rebuild is exact — and
        the full :func:`~repro.engine.kernels.sweep_min_cut` runs once.
        Its weight must equal the frozen one bit-for-bit; anything else
        is a kernel bug worth crashing on.
        """
        if frozen.cut is None:
            edge_index, edge_weight, edge_first, edge_last, _, _ = (
                self._build_arrays(frozen.valid_from)
            )
            cut, weight = sweep_min_cut(
                edge_index.tolist(),
                edge_weight.tolist(),
                edge_first.tolist(),
                edge_last.tolist(),
            )
            if weight != frozen.weight:
                raise AssertionError(
                    f"cut sweep weight {weight!r} diverged from the "
                    f"weight-only sweep {frozen.weight!r} at "
                    f"K={frozen.valid_from:g}"
                )
            frozen.cut = cut
        return frozen.cut

    # ------------------------------------------------------------------
    # Bound sweeps
    # ------------------------------------------------------------------
    @complexity("k log k + g n log q")
    def solve_bounds(
        self,
        ks: Union[Sequence[float], "np.ndarray"],
        *,
        return_cuts: bool = False,
    ) -> Any:
        """Optimal bandwidth for every bound in ``ks`` — one batched pass.

        ``O(k log k + g n log q)`` for ``k`` queries hitting ``g``
        distinct stability intervals: one stable argsort, then per
        *group* (not per query) one structural build and one TEMP_S
        sweep.  Returns a float64 array aligned with ``ks``; with
        ``return_cuts=True`` also a list of sorted edge-index lists
        (queries sharing a structure share the identical optimal cut —
        each entry is a fresh list, safe to mutate).

        Every element is bit-identical to
        ``bandwidth_min(chain, k).weight`` at the same ``k``; under
        ``REPRO_VERIFY=1`` each one is certified against the pure-Python
        solver before the sweep returns.

        Raises :class:`~repro.core.feasibility.InfeasibleBoundError` if
        any bound is below the maximum task weight, and ``ValueError``
        on empty, non-1-D or non-finite input.
        """
        arr = np.asarray(ks, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError(f"ks must be one-dimensional, got shape {arr.shape}")
        if arr.shape[0] == 0:
            raise ValueError("ks must contain at least one bound")
        if not np.isfinite(arr).all():
            raise ValueError("ks must be finite")
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "plan_solve_bounds", n=self.chain.num_tasks, queries=arr.shape[0]
            ) as span:
                out = self._solve_bounds_impl(arr, return_cuts, span)
            return out
        return self._solve_bounds_impl(arr, return_cuts, None)

    def _solve_bounds_impl(
        self, arr: "np.ndarray", return_cuts: bool, span: Any
    ) -> Any:
        order = np.argsort(arr, kind="stable")
        # One feasibility check clears the whole batch: bounds are
        # validated smallest-first, and feasibility is monotone in K.
        validate_bound_array(self._alpha_max, float(arr[order[0]]))
        verify = "REPRO_VERIFY" in os.environ  # repro-lint: disable=REPRO023 opt-in verification gate; raises on failure, never alters outputs
        need_cuts = return_cuts or verify
        total = arr.shape[0]
        weights = np.empty(total, dtype=np.float64)
        cuts: List[List[int]] = [[] for _ in range(total)] if return_cuts else []
        built = 0
        reused = 0
        i = 0
        while i < total:
            bound = float(arr[order[i]])
            frozen = self._lookup(bound)
            if frozen is None:
                frozen = self._build(bound)
                built += 1
            else:
                reused += 1
            weight = frozen.weight
            cut = self._cut_for(frozen) if need_cuts else []
            end = frozen.valid_until
            while i < total and arr[order[i]] < end:
                idx = int(order[i])
                weights[idx] = weight
                if return_cuts:
                    cuts[idx] = list(cut)
                if verify:
                    self._verify_answer(float(arr[idx]), cut, weight)
                i += 1
        self._count("engine.plan.sweeps")
        self._count("engine.plan.queries", total)
        self._count("engine.plan.structures.reused", reused)
        if self.metrics is not None:
            self.metrics.histogram("engine.plan.sweep_batch_size").observe(total)
        if self.hub.enabled:
            self.hub.publish(
                {
                    "kind": "event",
                    "event": "plan",
                    "action": "sweep",
                    "n": self.chain.num_tasks,
                    "queries": total,
                    "structures_built": built,
                    "structures_reused": reused,
                }
            )
        if span is not None:
            span.set("structures_built", built)
            span.set("structures_reused", reused)
        if return_cuts:
            return weights, cuts
        return weights

    def _verify_answer(self, bound: float, cut: List[int], weight: float) -> None:
        from repro.core.bandwidth import ChainCutResult
        from repro.verify.runtime import maybe_verify_cache_solve

        maybe_verify_cache_solve(
            self.chain, bound, ChainCutResult(self.chain, list(cut), weight)
        )

    # ------------------------------------------------------------------
    # β-perturbation sweeps
    # ------------------------------------------------------------------
    @complexity("n + b s")
    def solve_beta_sweep(
        self,
        betas: Union[Sequence[Sequence[float]], "np.ndarray"],
        bound: float,
    ) -> "np.ndarray":
        """Optimal bandwidth for ``b`` alternative β rows at one bound.

        ``betas`` is a ``(b, n - 1)`` matrix of edge-weight rows; the
        result is the length-``b`` vector of optimal bandwidths, each
        bit-identical to ``bandwidth_min(Chain(alpha, betas[i]), bound)``
        on the corresponding perturbed chain.  ``O(n + b s)`` where
        ``s`` is the total prime-cover multiplicity (the sum of the
        per-prime ``q`` values): the prime windows and membership
        classes depend only on ``alpha``, so they are built once and the
        interval-cover recurrence runs vectorized over the query axis —
        per prime, one batched activation and one batched window
        minimum, no per-query dispatch.

        Under ``REPRO_VERIFY=1`` every row's answer is certified against
        a pure-Python solve of the perturbed chain.
        """
        mat = np.asarray(betas, dtype=np.float64)
        if mat.ndim != 2 or mat.shape[1] != self.chain.num_edges:
            raise ValueError(
                f"betas must have shape (b, {self.chain.num_edges}), "
                f"got {mat.shape}"
            )
        if mat.shape[0] == 0:
            raise ValueError("betas must contain at least one row")
        if not np.isfinite(mat).all() or (mat < 0).any():
            raise ValueError("beta rows must be finite and non-negative")
        validate_bound_array(self._alpha_max, float(bound))
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "plan_beta_sweep", n=self.chain.num_tasks, queries=mat.shape[0]
            ):
                out = self._solve_beta_sweep_impl(mat, bound)
        else:
            out = self._solve_beta_sweep_impl(mat, bound)
        self._count("engine.plan.sweeps")
        self._count("engine.plan.queries", mat.shape[0])
        if self.metrics is not None:
            self.metrics.histogram("engine.plan.sweep_batch_size").observe(
                mat.shape[0]
            )
        if "REPRO_VERIFY" in os.environ:  # repro-lint: disable=REPRO023 opt-in verification gate; raises on failure, never alters outputs
            self._verify_beta_sweep(mat, bound, out)
        return out

    def _solve_beta_sweep_impl(
        self, mat: "np.ndarray", bound: float
    ) -> "np.ndarray":
        rows = mat.shape[0]
        first_tasks, last_tasks = prime_windows(self._prefix, bound)
        p = first_tasks.shape[0]
        if p == 0:
            return np.zeros(rows, dtype=np.float64)
        lo, hi = membership_intervals(
            first_tasks, last_tasks - 1, self.chain.num_edges
        )
        covered = np.flatnonzero(lo <= hi)
        lo_c = lo[covered]
        hi_c = hi[covered]
        # Membership classes: maximal runs of covered edges sharing the
        # same (first, last) prime interval.  Monotone lo/hi mean equal
        # intervals are always adjacent, so runs are exactly the classes
        # — and because the per-class β minimum equals the reduced
        # edge's β bit-for-bit, the recurrence below reproduces the
        # reference's candidate sets float for float.
        boundary = np.empty(lo_c.shape[0], dtype=bool)
        boundary[0] = True
        np.logical_or(
            lo_c[1:] != lo_c[:-1], hi_c[1:] != hi_c[:-1], out=boundary[1:]
        )
        starts = np.flatnonzero(boundary)
        class_first = lo_c[starts]
        class_last = hi_c[starts]
        # Per-query class minima: (b, classes), one reduceat.
        class_w = np.minimum.reduceat(mat[:, covered], starts, axis=1)
        # The interval-cover recurrence, batched over the query axis:
        #   V_i = min over classes c covering prime i of
        #         class_w[c] + V_{class_first[c] - 1}
        # Classes activate in class_first order (nondecreasing), and a
        # class's predecessor term is always the previous prime's V, so
        # activation is a contiguous slice-add and the per-prime minimum
        # a contiguous slice-reduce over the candidate matrix.
        cand = np.empty((class_first.shape[0], rows), dtype=np.float64)
        class_w_t = np.ascontiguousarray(class_w.T)
        primes = np.arange(p, dtype=np.int64)
        win_lo = np.searchsorted(class_last, primes, side="left")
        win_hi = np.searchsorted(class_first, primes, side="right")
        v_prev = np.zeros(rows, dtype=np.float64)
        ptr = 0
        for i in range(p):
            act = int(win_hi[i])
            if act > ptr:  # repro-mutate: equivalent=flip-compare -- act == ptr makes every slice below empty, so the activation block is a no-op either way
                if i == 0:  # repro-mutate: equivalent=flip-compare -- classes starting at prime 0 have no predecessor term; adding the zero vector v_prev is the same arithmetic
                    cand[ptr:act] = class_w_t[ptr:act]
                else:
                    np.add(class_w_t[ptr:act], v_prev, out=cand[ptr:act])
                ptr = act
            v_prev = cand[int(win_lo[i]) : act].min(axis=0)
        return v_prev

    def _verify_beta_sweep(
        self, mat: "np.ndarray", bound: float, out: "np.ndarray"
    ) -> None:
        from repro.core.bandwidth import ChainCutResult
        from repro.verify.runtime import maybe_verify_cache_solve

        from repro.core.bandwidth import bandwidth_min

        for row, claimed in zip(mat, out):
            # The batched recurrence yields weights only; certify the
            # claimed weight on the reference cut (the cross-check
            # inside re-solves the perturbed chain and must agree).
            perturbed = Chain(self.chain.alpha, row.tolist())
            reference = bandwidth_min(perturbed, bound, backend="python")
            maybe_verify_cache_solve(
                perturbed,
                bound,
                ChainCutResult(perturbed, list(reference.cut_indices), float(claimed)),
            )


@complexity("n")
def compile_chain(
    chain: Chain,
    *,
    backend: str = "numpy",
    tracer: Optional["Tracer"] = None,
    metrics: Optional["MetricsRegistry"] = None,
    hub: Any = None,
    max_structures: int = DEFAULT_MAX_STRUCTURES,
) -> CompiledChainPlan:
    """Compile ``chain`` into a :class:`CompiledChainPlan` — ``O(n)``.

    Runs the chain-level half of Algorithm 4.1's preprocessing (prefix
    weights, β table, feasibility floor) once and freezes it; the
    returned plan then answers bound sweeps and β sweeps with no
    per-query Python dispatch.  ``backend`` must be ``"numpy"`` (plans
    *are* the array fast path); an enabled ``tracer`` records a
    ``plan_compile`` span and ``metrics`` receives
    ``engine.plan.compiled``.
    """
    if tracer is not None and tracer.enabled:
        with tracer.span("plan_compile", n=chain.num_tasks):
            plan = CompiledChainPlan(
                chain,
                backend=backend,
                tracer=tracer,
                metrics=metrics,
                hub=hub,
                max_structures=max_structures,
            )
    else:
        plan = CompiledChainPlan(
            chain,
            backend=backend,
            tracer=tracer,
            metrics=metrics,
            hub=hub,
            max_structures=max_structures,
        )
    if metrics is not None:
        metrics.counter("engine.plan.compiled").inc()
    if plan.hub.enabled:
        plan.hub.publish(
            {
                "kind": "event",
                "event": "plan",
                "action": "compiled",
                "n": chain.num_tasks,
            }
        )
    return plan
