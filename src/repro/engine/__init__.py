"""The batched partitioning engine — the production front door.

Layers on top of :mod:`repro.core`:

- :mod:`repro.engine.kernels` — NumPy fast-path kernels for the chain
  pipeline (prefix weights, prime subpaths via ``searchsorted``,
  membership intervals, the non-redundant-edge reduction), bit-identical
  to the pure-Python reference;
- :mod:`repro.engine.cache` — content-fingerprinted prime-structure and
  result caching with monotone warm-start for sorted-``K`` sweeps, plus
  the compiled-plan LRU (:class:`PlanCache`);
- :mod:`repro.engine.plan` — :class:`CompiledChainPlan`: freeze one
  chain's preprocessing, answer whole vectors of bound/β queries in
  batched sweeps (``compile_chain``/``solve_bounds``/``solve_beta_sweep``);
- :mod:`repro.engine.batch` — :class:`PartitionEngine` with
  ``solve``/``solve_many``/``solve_sweep`` (process-pool fan-out,
  fingerprint-grouped dispatch, deterministic result ordering) backing
  the ``repro batch`` CLI subcommand.
"""

from repro.engine.batch import (
    OBJECTIVES,
    BatchStats,
    PartitionEngine,
    PartitionQuery,
    QueryResult,
)
from repro.engine.cache import CacheStats, PlanCache, PrimeStructureCache
from repro.engine.kernels import HAVE_NUMPY
from repro.engine.plan import CompiledChainPlan, compile_chain

__all__ = [
    "BatchStats",
    "CacheStats",
    "CompiledChainPlan",
    "HAVE_NUMPY",
    "OBJECTIVES",
    "PartitionEngine",
    "PartitionQuery",
    "PlanCache",
    "PrimeStructureCache",
    "QueryResult",
    "compile_chain",
]
