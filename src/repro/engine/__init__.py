"""The batched partitioning engine — the production front door.

Layers on top of :mod:`repro.core`:

- :mod:`repro.engine.kernels` — NumPy fast-path kernels for the chain
  pipeline (prefix weights, prime subpaths via ``searchsorted``,
  membership intervals, the non-redundant-edge reduction), bit-identical
  to the pure-Python reference;
- :mod:`repro.engine.cache` — content-fingerprinted prime-structure and
  result caching with monotone warm-start for sorted-``K`` sweeps;
- :mod:`repro.engine.batch` — :class:`PartitionEngine` with
  ``solve``/``solve_many`` (process-pool fan-out, deterministic result
  ordering) backing the ``repro batch`` CLI subcommand.
"""

from repro.engine.batch import (
    OBJECTIVES,
    BatchStats,
    PartitionEngine,
    PartitionQuery,
    QueryResult,
)
from repro.engine.cache import CacheStats, PrimeStructureCache
from repro.engine.kernels import HAVE_NUMPY

__all__ = [
    "BatchStats",
    "CacheStats",
    "HAVE_NUMPY",
    "OBJECTIVES",
    "PartitionEngine",
    "PartitionQuery",
    "PrimeStructureCache",
    "QueryResult",
]
