"""The batched, cache-aware, optionally parallel partitioning front door.

:class:`PartitionEngine` is the API production callers are expected to
use: single queries go through :meth:`PartitionEngine.solve` (NumPy
kernels + the prime-structure cache), and independent query streams go
through :meth:`PartitionEngine.solve_many`, which fans them across a
``concurrent.futures`` process pool in chunks while guaranteeing results
come back **in input order** regardless of pool scheduling.

Queries are plain data (:class:`PartitionQuery`) so they pickle cheaply
to workers and serialize losslessly to JSONL — the wire format of the
``repro batch`` CLI subcommand.  Failures are *per query*: an infeasible
bound yields a :class:`QueryResult` with ``error`` set instead of
poisoning the whole batch.

Telemetry is *not* dropped at the process boundary: every result comes
back with a small ``telemetry`` dict (wall-clock, cache-stats delta,
and — when the engine's tracer is enabled — the worker's serialized
span records), and :meth:`PartitionEngine.solve_many` folds them, in
query order, into a :class:`BatchStats` left on
``engine.last_batch_stats`` plus the engine's
:class:`~repro.observability.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.feasibility import PartitioningError
from repro.core.pipeline import partition_chain
from repro.engine.cache import CacheStats, PlanCache, PrimeStructureCache
from repro.engine.kernels import HAVE_NUMPY
from repro.graphs.chain import Chain
from repro.graphs.metrics import chain_bandwidth_lower_bound, optimality_gap
from repro.instrumentation.counters import OpCounter
from repro.observability.live import NULL_HUB
from repro.observability.metrics import Histogram, MetricsRegistry
from repro.observability.spans import NULL_TRACER, HubLike, Tracer

#: Objectives accepted by the engine — the same vocabulary as
#: :func:`repro.core.pipeline.partition_chain`.
OBJECTIVES = (
    "bandwidth",
    "bottleneck",
    "processors",
    "bottleneck+processors",
    "bottleneck+bandwidth",
)


@dataclass(frozen=True)
class PartitionQuery:  # repro-lint: disable=REPRO002 (field defaults block slots on py39)
    """One independent partitioning question: a chain, a bound, an objective.

    ``tag`` is an opaque caller label carried through to the result
    (request ids, sweep coordinates, ...).
    """

    alpha: Tuple[float, ...]
    beta: Tuple[float, ...]
    bound: float
    objective: str = "bandwidth"
    tag: Optional[str] = None

    @classmethod
    def from_chain(
        cls,
        chain: Chain,
        bound: float,
        objective: str = "bandwidth",
        tag: Optional[str] = None,
    ) -> "PartitionQuery":
        return cls(tuple(chain.alpha), tuple(chain.beta), bound, objective, tag)

    def chain(self) -> Chain:
        return Chain(list(self.alpha), list(self.beta))

    @classmethod
    def from_json(cls, line: str) -> "PartitionQuery":
        record = json.loads(line)
        return cls(
            tuple(float(a) for a in record["alpha"]),
            tuple(float(b) for b in record.get("beta", [])),
            float(record["bound"]),
            record.get("objective", "bandwidth"),
            record.get("tag"),
        )


@dataclass
class QueryResult:  # repro-lint: disable=REPRO002 (field defaults block slots on py39)
    """The answer to one query, positionally matched to its input.

    ``index`` is the query's position in the submitted batch —
    ``solve_many`` guarantees ``results[i].index == i``.
    """

    index: int
    tag: Optional[str]
    objective: str
    bound: float
    cut_indices: List[int] = field(default_factory=list)
    weight: float = 0.0
    num_components: int = 1
    error: Optional[str] = None
    #: Per-query measurement shipped back from the solving process:
    #: ``duration_s``, a ``cache`` hit/miss delta, and (traced runs
    #: only) ``spans``.  Excluded from :meth:`to_json` — the JSONL wire
    #: format carries answers; telemetry is aggregated by the engine
    #: and exported through trace files instead.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> str:
        record: Dict = {
            "index": self.index,
            "tag": self.tag,
            "objective": self.objective,
            "bound": self.bound,
        }
        if self.ok:
            record.update(
                cut=self.cut_indices,
                weight=self.weight,
                components=self.num_components,
            )
        else:
            record["error"] = self.error
        return json.dumps(record)


class BatchStats:
    """Deterministically merged telemetry from one ``solve_many`` call.

    Workers serialize their measurements with each result; the engine
    folds them back in query order, so two runs of the same batch yield
    identical aggregates (latency histograms aside, which depend on
    wall-clock but merge in the same order).
    """

    __slots__ = (
        "queries",
        "failures",
        "cache",
        "counter",
        "latency",
        "gap",
        "trace_records",
        "wall_s",
        "workers",
    )

    def __init__(self, workers: int = 0) -> None:
        self.queries = 0
        self.failures = 0
        #: Summed per-query cache deltas (worker-side caches included).
        self.cache = CacheStats()
        #: Op-counts summed out of every worker span (search steps, ...).
        self.counter = OpCounter()
        #: Per-query wall-clock, measured in the solving process.
        self.latency = Histogram("batch.query_latency_s")
        #: Per-query optimality gap vs the combinatorial lower bound —
        #: populated only under ``REPRO_VERIFY`` (see
        #: :func:`repro.graphs.metrics.chain_bandwidth_lower_bound`).
        self.gap = Histogram("solve.optimality_gap")
        #: Worker span records in query order, each tagged ``query_index``.
        self.trace_records: List[Dict[str, Any]] = []
        self.wall_s = 0.0
        self.workers = workers

    def absorb(self, result: "QueryResult") -> None:
        """Fold one result's telemetry in (call in index order)."""
        self.queries += 1
        if not result.ok:
            self.failures += 1
        telemetry = result.telemetry
        if not telemetry:
            return
        self.latency.observe(telemetry.get("duration_s", 0.0))
        if "optimality_gap" in telemetry:
            self.gap.observe(telemetry["optimality_gap"])
        delta = telemetry.get("cache")
        if delta:
            self.cache.hits += delta.get("hits", 0)
            self.cache.interval_hits += delta.get("interval_hits", 0)
            self.cache.misses += delta.get("misses", 0)
            self.cache.evictions += delta.get("evictions", 0)
        for record in telemetry.get("spans", ()):
            tagged = dict(record)
            tagged["query_index"] = result.index
            self.trace_records.append(tagged)
            for name, value in record.get("counts", {}).items():
                self.counter.add(name, value)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "failures": self.failures,
            "workers": self.workers,
            "wall_s": self.wall_s,
            "cache": {
                "hits": self.cache.hits,
                "interval_hits": self.cache.interval_hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "hit_rate": self.cache.hit_rate,
            },
            "counts": self.counter.as_dict(),
            "latency": self.latency.summary(),
            "optimality_gap": (
                self.gap.summary() if self.gap.count else None
            ),
        }

    def __repr__(self) -> str:
        return (
            f"BatchStats(queries={self.queries}, failures={self.failures}, "
            f"cache_hit_rate={self.cache.hit_rate:.2f})"
        )


class PartitionEngine:
    """Cache-aware partitioning engine with a batched front door.

    Parameters
    ----------
    backend:
        ``"numpy"`` (default when NumPy is importable) or ``"python"``.
    cache:
        A :class:`PrimeStructureCache` to share with other engines, or
        ``None`` to own a private one.
    max_workers:
        Default process-pool width for :meth:`solve_many`; ``0``/``1``
        solves serially in-process (still cached).  ``None`` lets the
        pool pick ``os.cpu_count()``.
    tracer:
        A :class:`repro.observability.Tracer`.  Disabled by default —
        single-query solves then take exactly the untraced fast path.
        When enabled, ``solve`` records nested spans and per-query
        latency metrics, and ``solve_many`` workers trace each query
        and ship the span records back.
    metrics:
        A :class:`repro.observability.MetricsRegistry` to share, or
        ``None`` to own a private one.  Batch aggregates always land
        here (they cost nothing on the single-query path).
    hub:
        A :class:`repro.observability.TelemetryHub` for live telemetry,
        or ``None`` for the zero-overhead :data:`NULL_HUB`.  With a
        live hub, every solve publishes a ``solve`` event *as it
        completes* (batch paths stream results incrementally, not at
        batch end) and every batch publishes a closing ``batch`` event
        — the feed behind ``repro batch --stream`` and ``repro top``.
    """

    __slots__ = (
        "backend",
        "cache",
        "plans",
        "max_workers",
        "tracer",
        "metrics",
        "hub",
        "last_batch_stats",
    )

    def __init__(
        self,
        backend: Optional[str] = None,
        cache: Optional[PrimeStructureCache] = None,
        plans: Optional[PlanCache] = None,
        max_workers: Optional[int] = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        hub: Optional[HubLike] = None,
    ) -> None:
        if backend is None:
            backend = "numpy" if HAVE_NUMPY else "python"
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.hub = hub if hub is not None else NULL_HUB
        self.cache = cache or PrimeStructureCache(backend=backend, hub=self.hub)
        self.plans = plans or PlanCache()
        self.max_workers = max_workers
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.last_batch_stats: Optional[BatchStats] = None

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------
    def solve(
        self,
        chain: Chain,
        bound: float,
        objective: str = "bandwidth",
        *,
        search: str = "binary",
    ) -> ChainCutResult:
        """Solve one query through the fast path.

        ``"bandwidth"`` (Algorithm 4.1) runs through the prime-structure
        cache with the configured kernels and ``collect_stats`` off; the
        other objectives delegate to
        :func:`repro.core.pipeline.partition_chain` (tree algorithms,
        uncached).
        """
        if not self.tracer.enabled and not self.hub.enabled:
            if objective == "bandwidth":
                return self.cache.solve(chain, bound, search=search)
            if objective not in OBJECTIVES:
                raise ValueError(
                    f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
                )
            return partition_chain(chain, bound, objective)
        t0 = time.perf_counter()
        with self.tracer.span(
            "engine_solve", objective=objective, n=chain.num_tasks, bound=bound
        ):
            if objective == "bandwidth":
                result = self.cache.solve(
                    chain, bound, search=search, tracer=self.tracer
                )
            elif objective not in OBJECTIVES:
                raise ValueError(
                    f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
                )
            else:
                result = partition_chain(chain, bound, objective)
        duration = time.perf_counter() - t0
        self.metrics.counter("engine.queries").inc()
        self.metrics.histogram("engine.query_latency_s").observe(duration)
        gap: Optional[float] = None
        if "REPRO_VERIFY" in os.environ and objective == "bandwidth":
            # Verification runs already pay for a pure-Python re-solve;
            # the combinatorial lower bound is noise next to that, and
            # turns every verified solve into a quality sample.
            gap = optimality_gap(
                result.weight, chain_bandwidth_lower_bound(chain, bound)
            )
            self.metrics.histogram("solve.optimality_gap").observe(gap)
        if self.hub.enabled:
            self.hub.publish(
                {
                    "kind": "event",
                    "event": "solve",
                    "objective": objective,
                    "n": chain.num_tasks,
                    "bound": bound,
                    "weight": result.weight,
                    "ok": True,
                    "duration_s": duration,
                }
            )
            self.hub.publish_metric("engine.query_latency_s", "observe", duration)
            if gap is not None:
                self.hub.publish_metric("solve.optimality_gap", "observe", gap)
        return result

    # ------------------------------------------------------------------
    # Multi-query sweeps (compiled plans)
    # ------------------------------------------------------------------
    def solve_sweep(
        self,
        chain: Chain,
        bounds: Sequence[float],
        *,
        return_cuts: bool = False,
    ) -> Any:
        """Optimal bandwidth for every bound in ``bounds``, one batched pass.

        Routes through a :class:`~repro.engine.plan.CompiledChainPlan`
        cached by chain fingerprint in :attr:`plans`, so repeated sweeps
        over the same chain share frozen arrays and built structures.
        Returns the per-bound weights (a float64 array on the NumPy
        backend, a list on the Python fallback), or ``(weights, cuts)``
        with ``return_cuts=True``.  Answers are bit-identical to
        per-call :meth:`solve`; under ``REPRO_VERIFY=1`` every element
        is certified against the pure-Python solver.

        On ``backend="python"`` (or when NumPy is missing) the sweep
        degrades to per-call solves through the structure cache — same
        answers, no compiled fast path.
        """
        if self.backend != "numpy" or not HAVE_NUMPY:
            results = [self.solve(chain, float(b)) for b in bounds]
            weights = [r.weight for r in results]
            if return_cuts:
                return weights, [list(r.cut_indices) for r in results]
            return weights
        tracer = self.tracer if self.tracer.enabled else None
        plan = self.plans.get(
            chain, tracer=tracer, metrics=self.metrics, hub=self.hub
        )
        return plan.solve_bounds(bounds, return_cuts=return_cuts)

    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    def snapshot_metrics(self) -> MetricsRegistry:
        """The engine's registry with current cache gauges folded in.

        Cache hit/miss counts accumulate on :class:`CacheStats` (no
        per-lookup metric cost); this snapshot mirrors them into the
        registry so one export carries everything.
        """
        stats = self.cache.stats
        self.metrics.gauge("engine.cache.hits").set(stats.hits)
        self.metrics.gauge("engine.cache.interval_hits").set(stats.interval_hits)
        self.metrics.gauge("engine.cache.misses").set(stats.misses)
        self.metrics.gauge("engine.cache.evictions").set(stats.evictions)
        self.metrics.gauge("engine.cache.hit_rate").set(stats.hit_rate)
        self.metrics.gauge("engine.cache.entries").set(len(self.cache))
        plan_stats = self.plans.stats
        self.metrics.gauge("engine.plan.cache.hits").set(plan_stats.hits)
        self.metrics.gauge("engine.plan.cache.misses").set(plan_stats.misses)
        self.metrics.gauge("engine.plan.cache.evictions").set(
            plan_stats.evictions
        )
        self.metrics.gauge("engine.plan.cache.plans").set(len(self.plans))
        self.metrics.gauge("engine.plan.cache.occupancy").set(
            self.plans.occupancy
        )
        return self.metrics

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def solve_many(
        self,
        queries: Sequence[PartitionQuery],
        *,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        use_plans: bool = True,
    ) -> List[QueryResult]:
        """Solve independent queries, returning results in input order.

        Queries are grouped by chain content (the fingerprint
        equivalence) before dispatch.  Serially, bandwidth groups with
        two or more feasible bounds route through the compiled-plan
        cache (:meth:`solve_sweep`) — one structural pass per stability
        interval instead of one per query; ``use_plans=False`` restores
        strictly per-call solves.  With a process pool, grouping keeps
        same-chain queries in the same ``executor.map`` chunk so workers
        stop re-deriving structures their neighbors already built;
        results are re-sorted to input order afterwards.
        """
        if max_workers is None:
            max_workers = self.max_workers
        queries = list(queries)
        trace = self.tracer.enabled
        payloads = [
            (i, q.alpha, q.beta, q.bound, q.objective, q.tag, self.backend,
             trace)
            for i, q in enumerate(queries)
        ]
        t0 = time.perf_counter()
        if max_workers in (0, 1) or len(queries) <= 1:
            workers = 0
            results = self._solve_serial(payloads, use_plans)
        else:
            if max_workers is not None and max_workers < 0:
                raise ValueError("max_workers must be >= 0")
            workers = max_workers or os.cpu_count() or 1
            # Fingerprint grouping: same-chain (and near-same-bound)
            # queries land in the same chunk, hence the same worker's
            # structure cache.
            grouped = sorted(payloads, key=lambda p: (p[1], p[2], p[3]))
            if chunksize is None:
                chunksize = max(1, len(payloads) // (4 * workers))
            # Consume the pool lazily: each result streams to the live
            # hub the moment its chunk lands, not at batch end.  The
            # deterministic aggregate still folds in query-index order
            # below — live events are telemetry, not a contract.
            results = []
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                for result in pool.map(
                    _solve_payload, grouped, chunksize=chunksize
                ):
                    if self.hub.enabled:
                        self._publish_result(result)
                    results.append(result)
            results.sort(key=lambda r: r.index)
        self._aggregate_batch(results, workers, time.perf_counter() - t0)
        return results

    def _solve_serial(
        self, payloads: List[tuple], use_plans: bool
    ) -> List[QueryResult]:
        """The serial batch path: plan-route bandwidth groups, per-call
        everything else.

        Bandwidth queries are grouped by chain content; groups with at
        least two feasible finite bounds go through :meth:`solve_sweep`
        (identical answers, shared structural work).  Infeasible or
        non-finite bounds keep per-call error semantics, and any
        group-level failure falls back to per-call solves so errors stay
        per query.  Tracing disables plan routing — per-query spans are
        the contract there.
        """
        if (
            not use_plans
            or self.backend != "numpy"
            or not HAVE_NUMPY
            or self.tracer.enabled
        ):
            answers = []
            for p in payloads:
                answer = _solve_payload(p, self)
                if self.hub.enabled:
                    self._publish_result(answer)
                answers.append(answer)
            return answers
        groups: Dict[Tuple[tuple, tuple], List[tuple]] = {}
        for p in payloads:
            if p[4] == "bandwidth":
                groups.setdefault((p[1], p[2]), []).append(p)
        results: List[Optional[QueryResult]] = [None] * len(payloads)
        for (alpha, beta), members in groups.items():
            alpha_max = max(alpha) if alpha else 0.0
            eligible = [
                p
                for p in members
                if math.isfinite(p[3]) and 0.0 < p[3] and alpha_max <= p[3]
            ]
            if len(eligible) < 2:
                continue
            chain = Chain(list(alpha), list(beta))
            t0 = time.perf_counter()
            try:
                weights, cuts = self.solve_sweep(
                    chain, [p[3] for p in eligible], return_cuts=True
                )
            except (PartitioningError, ValueError):
                # e.g. a verification failure: re-run per call so the
                # error lands on the offending query only.
                for p in eligible:
                    results[p[0]] = _solve_payload(p, self)
                    if self.hub.enabled:
                        self._publish_result(results[p[0]])
                continue
            share = (time.perf_counter() - t0) / len(eligible)
            verify = "REPRO_VERIFY" in os.environ
            for p, weight, cut in zip(eligible, weights, cuts):
                answer = QueryResult(
                    p[0], p[5], p[4], p[3], list(cut), float(weight),
                    len(cut) + 1,
                )
                answer.telemetry = {
                    "duration_s": share,
                    "plan_group": len(eligible),
                }
                if verify:
                    answer.telemetry["optimality_gap"] = optimality_gap(
                        float(weight),
                        chain_bandwidth_lower_bound(chain, p[3]),
                    )
                results[p[0]] = answer
                if self.hub.enabled:
                    self._publish_result(answer)
        out: List[QueryResult] = []
        for p, result in zip(payloads, results):
            if result is None:
                result = _solve_payload(p, self)
                if self.hub.enabled:
                    self._publish_result(result)
            out.append(result)
        return out

    def _publish_result(self, result: QueryResult) -> None:
        """Stream one finished query to the live hub (call sites guard
        on ``hub.enabled`` — REPRO012 — so the disabled path never gets
        here)."""
        hub = self.hub
        if hub.enabled:
            telemetry = result.telemetry or {}
            duration = telemetry.get("duration_s", 0.0)
            hub.publish(
                {
                    "kind": "event",
                    "event": "solve",
                    "index": result.index,
                    "tag": result.tag,
                    "objective": result.objective,
                    "bound": result.bound,
                    "ok": result.ok,
                    "weight": result.weight,
                    "error": result.error,
                    "duration_s": duration,
                }
            )
            hub.publish_metric(
                "engine.batch.query_latency_s", "observe", duration
            )
            if "optimality_gap" in telemetry:
                hub.publish_metric(
                    "solve.optimality_gap", "observe",
                    telemetry["optimality_gap"],
                )

    def _aggregate_batch(
        self, results: List[QueryResult], workers: int, wall_s: float
    ) -> None:
        """Merge per-result telemetry into ``last_batch_stats`` and the
        engine registry — the fix for workers silently discarding their
        ``OpCounter``/``CacheStats``.  Results arrive (and are folded)
        in query order, so the aggregate is deterministic."""
        batch = BatchStats(workers=workers)
        batch.wall_s = wall_s
        for result in results:
            batch.absorb(result)
        self.last_batch_stats = batch
        metrics = self.metrics
        metrics.counter("engine.batch.batches").inc()
        metrics.counter("engine.batch.queries").inc(batch.queries)
        metrics.counter("engine.batch.failures").inc(batch.failures)
        metrics.counter("engine.batch.cache_hits").inc(
            batch.cache.hits + batch.cache.interval_hits
        )
        metrics.counter("engine.batch.cache_misses").inc(batch.cache.misses)
        metrics.gauge("engine.batch.workers").set(workers)
        metrics.gauge("engine.batch.queue_depth").set(batch.queries)
        metrics.histogram("engine.batch.wall_s").observe(wall_s)
        metrics.histogram("engine.batch.query_latency_s").merge(batch.latency)
        if batch.gap.count:
            metrics.histogram("solve.optimality_gap").merge(batch.gap)
        if self.hub.enabled:
            self.hub.publish(
                {
                    "kind": "event",
                    "event": "batch",
                    "queries": batch.queries,
                    "failures": batch.failures,
                    "workers": workers,
                    "wall_s": wall_s,
                    "cache_hit_rate": batch.cache.hit_rate,
                    "plan_occupancy": self.plans.occupancy,
                    "latency": batch.latency.summary(),
                }
            )

    def solve_jsonl(
        self,
        lines: Iterable[str],
        *,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        use_plans: bool = True,
    ) -> List[QueryResult]:
        """Parse JSONL query records and solve them as one batch.

        Raises :class:`ValueError` naming the offending line on a
        malformed record; solver-level failures (e.g. infeasible
        bounds) are still captured per-result, not raised.
        """
        queries = []
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                queries.append(PartitionQuery.from_json(line))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"invalid query record on line {lineno}: {exc!s}"
                ) from exc
        return self.solve_many(
            queries, max_workers=max_workers, chunksize=chunksize,
            use_plans=use_plans,
        )


# Per-process engine for pool workers: built on first use so the cache
# persists across the chunks a worker processes.
_WORKER_ENGINE: Optional[PartitionEngine] = None


def _worker_engine(backend: str) -> PartitionEngine:
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None or _WORKER_ENGINE.backend != backend:
        # Intentional per-process cache: each worker owns its engine so
        # prime structures persist across the chunks it processes, and
        # nothing here must ever flow back to the parent.
        _WORKER_ENGINE = PartitionEngine(backend=backend, max_workers=0)  # repro-lint: disable=REPRO006 (per-process cache)
    return _WORKER_ENGINE


def _solve_one(
    engine: PartitionEngine,
    chain: Chain,
    bound: float,
    objective: str,
    tracer: Optional[Tracer],
) -> ChainCutResult:
    """One query against an engine's cache, optionally under a tracer."""
    if objective == "bandwidth":
        return engine.cache.solve(chain, bound, tracer=tracer)
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
        )
    return partition_chain(chain, bound, objective)


def _solve_payload(
    payload: tuple, engine: Optional[PartitionEngine] = None
) -> QueryResult:
    """Solve one pickled query; never raises (errors land in the result).

    Always measures wall-clock and the cache-stats delta (a handful of
    int reads — noise next to pickling); when the batch was submitted
    with tracing on, also runs the query under a fresh per-query tracer
    and serializes its spans into ``telemetry["spans"]``, which is how
    worker-process spans cross back to the parent engine.
    """
    index, alpha, beta, bound, objective, tag, backend, trace = payload
    if engine is None:
        engine = _worker_engine(backend)
    stats = engine.cache.stats
    before = (stats.hits, stats.interval_hits, stats.misses, stats.evictions)
    tracer = Tracer() if trace else None
    t0 = time.perf_counter()
    gap: Optional[float] = None
    try:
        chain = Chain(list(alpha), list(beta))
        result = _solve_one(engine, chain, bound, objective, tracer)
        answer = QueryResult(
            index,
            tag,
            objective,
            bound,
            list(result.cut_indices),
            result.weight,
            result.num_components,
        )
        if "REPRO_VERIFY" in os.environ and objective == "bandwidth":
            gap = optimality_gap(
                result.weight, chain_bandwidth_lower_bound(chain, bound)
            )
    except (PartitioningError, ValueError) as exc:  # repro-lint: disable=REPRO024 error is captured into the QueryResult payload and published downstream
        answer = QueryResult(index, tag, objective, bound, error=str(exc))
    duration = time.perf_counter() - t0
    stats = engine.cache.stats  # clear() swaps the object; re-read
    telemetry: Dict[str, Any] = {
        "duration_s": duration,
        "cache": {
            "hits": stats.hits - before[0],
            "interval_hits": stats.interval_hits - before[1],
            "misses": stats.misses - before[2],
            "evictions": stats.evictions - before[3],
        },
    }
    if gap is not None:
        telemetry["optimality_gap"] = gap
    if tracer is not None:
        telemetry["spans"] = tracer.records()
    answer.telemetry = telemetry
    return answer
