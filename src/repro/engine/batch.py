"""The batched, cache-aware, optionally parallel partitioning front door.

:class:`PartitionEngine` is the API production callers are expected to
use: single queries go through :meth:`PartitionEngine.solve` (NumPy
kernels + the prime-structure cache), and independent query streams go
through :meth:`PartitionEngine.solve_many`, which fans them across a
``concurrent.futures`` process pool in chunks while guaranteeing results
come back **in input order** regardless of pool scheduling.

Queries are plain data (:class:`PartitionQuery`) so they pickle cheaply
to workers and serialize losslessly to JSONL — the wire format of the
``repro batch`` CLI subcommand.  Failures are *per query*: an infeasible
bound yields a :class:`QueryResult` with ``error`` set instead of
poisoning the whole batch.
"""

from __future__ import annotations

import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.feasibility import PartitioningError
from repro.core.pipeline import partition_chain
from repro.engine.cache import CacheStats, PrimeStructureCache
from repro.engine.kernels import HAVE_NUMPY
from repro.graphs.chain import Chain

#: Objectives accepted by the engine — the same vocabulary as
#: :func:`repro.core.pipeline.partition_chain`.
OBJECTIVES = (
    "bandwidth",
    "bottleneck",
    "processors",
    "bottleneck+processors",
    "bottleneck+bandwidth",
)


@dataclass(frozen=True)
class PartitionQuery:
    """One independent partitioning question: a chain, a bound, an objective.

    ``tag`` is an opaque caller label carried through to the result
    (request ids, sweep coordinates, ...).
    """

    alpha: Tuple[float, ...]
    beta: Tuple[float, ...]
    bound: float
    objective: str = "bandwidth"
    tag: Optional[str] = None

    @classmethod
    def from_chain(
        cls,
        chain: Chain,
        bound: float,
        objective: str = "bandwidth",
        tag: Optional[str] = None,
    ) -> "PartitionQuery":
        return cls(tuple(chain.alpha), tuple(chain.beta), bound, objective, tag)

    def chain(self) -> Chain:
        return Chain(list(self.alpha), list(self.beta))

    @classmethod
    def from_json(cls, line: str) -> "PartitionQuery":
        record = json.loads(line)
        return cls(
            tuple(float(a) for a in record["alpha"]),
            tuple(float(b) for b in record.get("beta", [])),
            float(record["bound"]),
            record.get("objective", "bandwidth"),
            record.get("tag"),
        )


@dataclass
class QueryResult:
    """The answer to one query, positionally matched to its input.

    ``index`` is the query's position in the submitted batch —
    ``solve_many`` guarantees ``results[i].index == i``.
    """

    index: int
    tag: Optional[str]
    objective: str
    bound: float
    cut_indices: List[int] = field(default_factory=list)
    weight: float = 0.0
    num_components: int = 1
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_json(self) -> str:
        record: Dict = {
            "index": self.index,
            "tag": self.tag,
            "objective": self.objective,
            "bound": self.bound,
        }
        if self.ok:
            record.update(
                cut=self.cut_indices,
                weight=self.weight,
                components=self.num_components,
            )
        else:
            record["error"] = self.error
        return json.dumps(record)


class PartitionEngine:
    """Cache-aware partitioning engine with a batched front door.

    Parameters
    ----------
    backend:
        ``"numpy"`` (default when NumPy is importable) or ``"python"``.
    cache:
        A :class:`PrimeStructureCache` to share with other engines, or
        ``None`` to own a private one.
    max_workers:
        Default process-pool width for :meth:`solve_many`; ``0``/``1``
        solves serially in-process (still cached).  ``None`` lets the
        pool pick ``os.cpu_count()``.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        cache: Optional[PrimeStructureCache] = None,
        max_workers: Optional[int] = 0,
    ) -> None:
        if backend is None:
            backend = "numpy" if HAVE_NUMPY else "python"
        if backend not in ("python", "numpy"):
            raise ValueError(f"unknown backend {backend!r}")
        self.backend = backend
        self.cache = cache or PrimeStructureCache(backend=backend)
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    # Single queries
    # ------------------------------------------------------------------
    def solve(
        self,
        chain: Chain,
        bound: float,
        objective: str = "bandwidth",
        *,
        search: str = "binary",
    ):
        """Solve one query through the fast path.

        ``"bandwidth"`` (Algorithm 4.1) runs through the prime-structure
        cache with the configured kernels and ``collect_stats`` off; the
        other objectives delegate to
        :func:`repro.core.pipeline.partition_chain` (tree algorithms,
        uncached).
        """
        if objective == "bandwidth":
            return self.cache.solve(chain, bound, search=search)
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; expected one of {OBJECTIVES}"
            )
        return partition_chain(chain, bound, objective)

    def cache_stats(self) -> CacheStats:
        return self.cache.stats

    # ------------------------------------------------------------------
    # Batched queries
    # ------------------------------------------------------------------
    def solve_many(
        self,
        queries: Sequence[PartitionQuery],
        *,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
    ) -> List[QueryResult]:
        """Solve independent queries, returning results in input order.

        With ``max_workers`` in ``(0, 1)`` (or at most one query) the
        batch runs serially through this engine's shared cache — the
        right mode when many queries hit the same chains.  Otherwise the
        batch fans out over a process pool: workers are seeded lazily
        with a per-process engine, ``executor.map`` preserves submission
        order, and ``chunksize`` (default: balanced across workers)
        amortizes pickling.
        """
        if max_workers is None:
            max_workers = self.max_workers
        queries = list(queries)
        payloads = [
            (i, q.alpha, q.beta, q.bound, q.objective, q.tag, self.backend)
            for i, q in enumerate(queries)
        ]
        if max_workers in (0, 1) or len(queries) <= 1:
            return [_solve_payload(p, self) for p in payloads]
        if max_workers is not None and max_workers < 0:
            raise ValueError("max_workers must be >= 0")
        if chunksize is None:
            width = max_workers or os.cpu_count() or 1
            chunksize = max(1, len(payloads) // (4 * width))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            return list(
                pool.map(_solve_payload, payloads, chunksize=chunksize)
            )

    def solve_jsonl(
        self,
        lines: Iterable[str],
        *,
        max_workers: Optional[int] = None,
        chunksize: Optional[int] = None,
    ) -> List[QueryResult]:
        """Parse JSONL query records and solve them as one batch.

        Raises :class:`ValueError` naming the offending line on a
        malformed record; solver-level failures (e.g. infeasible
        bounds) are still captured per-result, not raised.
        """
        queries = []
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            try:
                queries.append(PartitionQuery.from_json(line))
            except (ValueError, KeyError, TypeError) as exc:
                raise ValueError(
                    f"invalid query record on line {lineno}: {exc!s}"
                ) from exc
        return self.solve_many(
            queries, max_workers=max_workers, chunksize=chunksize
        )


# Per-process engine for pool workers: built on first use so the cache
# persists across the chunks a worker processes.
_WORKER_ENGINE: Optional[PartitionEngine] = None


def _worker_engine(backend: str) -> PartitionEngine:
    global _WORKER_ENGINE
    if _WORKER_ENGINE is None or _WORKER_ENGINE.backend != backend:
        _WORKER_ENGINE = PartitionEngine(backend=backend, max_workers=0)
    return _WORKER_ENGINE


def _solve_payload(
    payload: tuple, engine: Optional[PartitionEngine] = None
) -> QueryResult:
    """Solve one pickled query; never raises (errors land in the result)."""
    index, alpha, beta, bound, objective, tag, backend = payload
    if engine is None:
        engine = _worker_engine(backend)
    try:
        chain = Chain(list(alpha), list(beta))
        result = engine.solve(chain, bound, objective)
        return QueryResult(
            index,
            tag,
            objective,
            bound,
            list(result.cut_indices),
            result.weight,
            result.num_components,
        )
    except (PartitioningError, ValueError) as exc:
        return QueryResult(index, tag, objective, bound, error=str(exc))
